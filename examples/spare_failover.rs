//! Failover-time extension (paper §3.6, Fig. 9).
//!
//! Run with `cargo run --release --example spare_failover`.
//!
//! The paper demonstrates Arcade's extensibility with an SMU whose
//! activation takes an exponentially distributed detection/failover time
//! instead of being instantaneous. This example sweeps the failover rate
//! and shows how the system unreliability degrades as failover slows — an
//! analysis the instantaneous SMU of Fig. 8 cannot express.

use arcade::prelude::*;

fn build(failover: Option<Dist>) -> SystemDef {
    let mut sys = SystemDef::new("failover-sweep");
    sys.add_component(BcDef::new("pp", Dist::exp(0.01), Dist::exp(1.0)));
    // cold spare: cannot fail while inactive
    sys.add_component(
        BcDef::new("ps", Dist::exp(0.01), Dist::exp(1.0))
            .with_om_group(OmGroup::ActiveInactive)
            .with_ttf([Dist::Never, Dist::exp(0.01)]),
    );
    sys.add_repair_unit(RuDef::new("rep", ["pp", "ps"], RepairStrategy::Fcfs));
    let mut smu = SmuDef::new("smu", "pp", ["ps"]);
    if let Some(f) = failover {
        smu = smu.with_failover(f);
    }
    sys.add_smu(smu);
    // The service is down while neither the primary nor an activated,
    // working spare runs; with a cold spare the interesting criterion is
    // "both processors down".
    sys.set_system_down(Expr::and([Expr::down("pp"), Expr::down("ps")]));
    sys
}

fn main() -> Result<(), ArcadeError> {
    let t = 1000.0;
    println!("=== SMU failover-time extension (Fig. 9) ===");
    println!("cold-spare pair, λ = 0.01/h, µ = 1/h, mission {t} h");
    println!();
    println!(
        "{:<22} {:>14} {:>14}",
        "failover", "unreliability", "MTTF (h)"
    );

    let instant = Analysis::new(&build(None))?.run()?;
    println!(
        "{:<22} {:>14.6e} {:>14.1}",
        "instantaneous (Fig. 8)",
        instant.unreliability_with_repair(t),
        instant.mttf()
    );
    for &delta in &[100.0, 10.0, 1.0, 0.1] {
        let report = Analysis::new(&build(Some(Dist::exp(delta))))?.run()?;
        println!(
            "{:<22} {:>14.6e} {:>14.1}",
            format!("exp({delta}) (Fig. 9)"),
            report.unreliability_with_repair(t),
            report.mttf()
        );
    }
    println!();
    println!("as delta grows the failover becomes instantaneous and the measures");
    println!("converge to the Fig. 8 SMU. Note the cold-spare subtlety: under the");
    println!("\"both processors down\" criterion a *slow* failover shelters the");
    println!("cold spare (it cannot fail while inactive), so unreliability falls —");
    println!("the price is a service gap during the failover window, which this");
    println!("fault-tree criterion deliberately does not count as system failure.");

    // Convergence check: a very fast failover must match the instantaneous
    // SMU closely.
    let fast = Analysis::new(&build(Some(Dist::exp(1e5))))?.run()?;
    let gap = (fast.unreliability_with_repair(t) - instant.unreliability_with_repair(t)).abs();
    assert!(
        gap < 1e-5,
        "fast failover should converge to instantaneous, gap {gap}"
    );
    println!();
    println!("convergence check passed (exp(1e5) ≈ instantaneous).");
    Ok(())
}
