//! The distributed database system case study (paper §5.1, Table 1).
//!
//! Run with `cargo run --release --example dds`.
//!
//! Reproduces Table 1: steady-state availability and 5-week reliability of
//! the DDS, computed three ways — the Arcade I/O-IMC pipeline (modular),
//! the analytic static fault tree (the Galileo column's role), and the
//! Monte-Carlo simulator (the SAN column's role).

use arcade::analytic;
use arcade::cases::dds::{dds, FIVE_WEEKS_H};
use arcade::engine::EngineOptions;
use arcade::modular::modular_analysis;
use arcade::sim;
use arcade::ArcadeError;

fn main() -> Result<(), ArcadeError> {
    let def = dds();
    let t = FIVE_WEEKS_H;

    println!("=== DDS (paper §5.1) — Table 1 ===");
    println!("mission time: {t} h (5 weeks)");
    println!();

    // Arcade pipeline, modularized over the 9 independent subsystems.
    let modular = modular_analysis(&def, &EngineOptions::new())?;
    let a = modular.steady_state_availability();
    let r = modular.reliability(t);
    println!("Arcade (this work):   A = {a:.6}    R(5 weeks) = {r:.6}");

    // Analytic static fault tree (Galileo's role for the reliability).
    let r_static = analytic::static_reliability(&def.without_repair(), t)?;
    let a_indep = analytic::independent_availability(&def)?;
    println!("analytic (Galileo'):  A ≈ {a_indep:.6}    R(5 weeks) = {r_static:.6}");

    // Monte-Carlo simulation (the SAN column's role).
    let mc = sim::simulate_unreliability(&def, t, 40_000, 2008, false)?;
    println!(
        "simulation (SAN'):    R(5 weeks) = {:.4} ± {:.4}",
        1.0 - mc.mean,
        mc.half_width
    );

    println!();
    println!("paper Table 1:        A = 0.999997  R(5 weeks) = 0.402018 (Arcade, Galileo)");
    println!("                      R(5 weeks) = 0.425082 (SAN [19]; the paper flags the gap)");
    println!();
    for m in &modular.modules {
        println!(
            "  {}: {} components, CTMC {}",
            m.name,
            m.components.len(),
            m.report.ctmc_stats()
        );
    }
    Ok(())
}
