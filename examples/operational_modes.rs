//! All four operational-mode groups of §3.1.1 in one model.
//!
//! Run with `cargo run --release --example operational_modes`.
//!
//! A small server room: a power supply, a bus, and a database server.
//!
//! * the **power supply** failing switches the server **off** (on/off
//!   group) — while off, the server cannot fail (rate 0, §3.1.1 item 2),
//! * the **bus** failing makes the server **inaccessible** (non-destructive
//!   functional dependency, §3.1.1 item 3) with `INACCESSIBLE MEANS DOWN:
//!   YES` — the environment counts it as an outage, but no repair is
//!   initiated on the server itself,
//! * the server room's **fan** is a *destructive* dependency of the power
//!   supply (§3.1.2): if the fan dies, the PSU overheats and fails for
//!   real, needing repair.
//!
//! The example prints the outage decomposition and cross-checks the engine
//! against the Monte-Carlo simulator.

use arcade::prelude::*;
use arcade::sim;

fn build() -> SystemDef {
    let mut sys = SystemDef::new("server-room");
    sys.add_component(BcDef::new("fan", Dist::exp(0.002), Dist::exp(0.5)));
    sys.add_component(
        BcDef::new("psu", Dist::exp(0.001), Dist::exp(0.5))
            .with_df(Expr::down("fan"), Dist::exp(0.5)),
    );
    sys.add_component(BcDef::new("bus", Dist::exp(0.003), Dist::exp(1.0)));
    sys.add_component(
        BcDef::new("db", Dist::exp(0.004), Dist::exp(0.25))
            .with_om_group(OmGroup::OnOff(Expr::down("psu")))
            .with_om_group(OmGroup::AccessibleInaccessible(Expr::down("bus")))
            // op states: (on,acc), (on,inacc), (off,acc), (off,inacc) —
            // the db cannot fail while powered off
            .with_ttf([Dist::exp(0.004), Dist::exp(0.004), Dist::Never, Dist::Never])
            .with_inaccessible_means_down(true),
    );
    for c in ["fan", "psu", "bus", "db"] {
        sys.add_repair_unit(RuDef::new(
            format!("{c}.rep"),
            [c],
            RepairStrategy::Dedicated,
        ));
    }
    // The service is down when the db is down — inherently, by
    // inaccessibility, or because its PSU is out (modeled explicitly so
    // the power outage counts as service outage too).
    sys.set_system_down(Expr::or([Expr::down("db"), Expr::down("psu")]));
    sys
}

fn main() -> Result<(), ArcadeError> {
    let sys = build();
    let report = Analysis::new(&sys)?.run()?;

    println!("=== operational-mode groups (§3.1.1) ===");
    println!("final CTMC: {}", report.ctmc_stats());
    println!();
    let u = report.steady_state_unavailability();
    println!("service unavailability: {u:.6e}");
    println!("MTTF:                   {:.1} h", report.mttf());
    println!("R(100 h):               {:.6}", report.reliability(100.0));

    // Decompose the outage sources by re-analyzing restricted criteria.
    let mut only_db = sys.clone();
    only_db.set_system_down(Expr::down("db"));
    let u_db = Analysis::new(&only_db)?
        .run()?
        .steady_state_unavailability();
    let mut only_psu = sys.clone();
    only_psu.set_system_down(Expr::down("psu"));
    let u_psu = Analysis::new(&only_psu)?
        .run()?
        .steady_state_unavailability();
    println!();
    println!("outage decomposition (overlapping):");
    println!("  db down (inherent, inaccessible): {u_db:.6e}");
    println!("  psu down (inherent or fan-DF):    {u_psu:.6e}");

    // Cross-check the full criterion against the simulator.
    let mc = sim::simulate_unavailability(&sys, 50_000.0, 48, 7)?;
    println!();
    println!(
        "Monte-Carlo cross-check: {:.4e} ± {:.1e} (engine {u:.4e})",
        mc.mean, mc.half_width
    );
    assert!(mc.contains(u), "engine outside MC interval");
    println!("engine value inside the MC 95% interval.");
    Ok(())
}
