//! Quickstart: two redundant processors with a shared FCFS repair unit,
//! queried through the lazy, batch-oriented `Session`.
//!
//! Run with `cargo run --example quickstart`.
//!
//! This is the "simple example" of the paper's §3.4: a system of two
//! redundant processors that fails iff both processors are down. The
//! `Session` owns the definition and builds each model configuration only
//! when a measure first needs it — the availability configuration
//! (repairs active) for steady-state/point availability and MTTF, the
//! no-repair configuration (§5.1.2) for the reliability curve — and a
//! whole batch of measures is answered in one pass: every reliability
//! point below shares a single uniformization sweep.

use arcade::prelude::*;

fn main() -> Result<(), ArcadeError> {
    let lambda = 1.0 / 2000.0; // failures per hour
    let mu = 1.0; // repairs per hour

    let mut sys = SystemDef::new("redundant-pair");
    for name in ["p1", "p2"] {
        sys.add_component(BcDef::new(name, Dist::exp(lambda), Dist::exp(mu)));
    }
    sys.add_repair_unit(RuDef::new("rep", ["p1", "p2"], RepairStrategy::Fcfs));
    sys.set_system_down(Expr::and([Expr::down("p1"), Expr::down("p2")]));

    // Validates eagerly; aggregates nothing until the first query.
    let session = Session::new(&sys)?;

    let curve_times = [100.0, 1000.0, 10_000.0];
    let mut batch = vec![
        Measure::SteadyStateAvailability,
        Measure::SteadyStateUnavailability,
        Measure::Mttf,
    ];
    batch.extend(curve_times.iter().map(|&t| Measure::Reliability(t)));
    let values = session.evaluate(&batch)?;

    println!("=== redundant processor pair ===");
    let agg = session.availability_model()?;
    println!("final CTMC: {}", agg.ctmc_stats);
    println!("largest intermediate I/O-IMC: {}", agg.largest_intermediate);
    println!();
    println!("steady-state availability  A      = {:.12}", values[0]);
    println!("steady-state unavailability 1-A   = {:.6e}", values[1]);
    for (i, &t) in curve_times.iter().enumerate() {
        println!("reliability (no repair)  R({t:>6}) = {:.6}", values[3 + i]);
    }
    println!("mean time to failure      MTTF    = {:.1} h", values[2]);
    println!(
        "(one batched query; {} aggregation(s) built lazily)",
        session.stats().aggregations_built
    );

    // Cross-check against closed forms.
    let r_expected = |t: f64| {
        // two independent exp(λ) units, system fails when both are down:
        // R(t) = 1 - (1 - e^{-λt})²
        let p = 1.0 - (-lambda * t).exp();
        1.0 - p * p
    };
    assert!((values[4] - r_expected(1000.0)).abs() < 1e-9);
    // MTTF with a single shared repairman: (3λ + µ) / (2λ²)
    let mttf_expected = (3.0 * lambda + mu) / (2.0 * lambda * lambda);
    assert!((values[2] - mttf_expected).abs() / mttf_expected < 1e-6);
    println!();
    println!("closed-form cross-checks passed.");
    Ok(())
}
