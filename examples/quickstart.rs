//! Quickstart: two redundant processors with a shared FCFS repair unit.
//!
//! Run with `cargo run --example quickstart`.
//!
//! This is the "simple example" of the paper's §3.4: a system of two
//! redundant processors that fails iff both processors are down, evaluated
//! for steady-state availability, reliability and MTTF — and cross-checked
//! against the closed-form answers.

use arcade::prelude::*;

fn main() -> Result<(), ArcadeError> {
    let lambda = 1.0 / 2000.0; // failures per hour
    let mu = 1.0; // repairs per hour

    let mut sys = SystemDef::new("redundant-pair");
    for name in ["p1", "p2"] {
        sys.add_component(BcDef::new(name, Dist::exp(lambda), Dist::exp(mu)));
    }
    sys.add_repair_unit(RuDef::new("rep", ["p1", "p2"], RepairStrategy::Fcfs));
    sys.set_system_down(Expr::and([Expr::down("p1"), Expr::down("p2")]));

    let report = Analysis::new(&sys)?.run()?;

    println!("=== redundant processor pair ===");
    println!("final CTMC: {}", report.ctmc_stats());
    println!(
        "largest intermediate I/O-IMC: {}",
        report.largest_intermediate()
    );
    println!();
    println!(
        "steady-state availability  A      = {:.12}",
        report.steady_state_availability()
    );
    println!(
        "steady-state unavailability 1-A   = {:.6e}",
        report.steady_state_unavailability()
    );
    for &t in &[100.0, 1000.0, 10_000.0] {
        println!(
            "reliability (no repair)  R({t:>6}) = {:.6}",
            report.reliability(t)
        );
    }
    println!("mean time to failure      MTTF    = {:.1} h", report.mttf());

    // Cross-check against closed forms.
    let r_expected = |t: f64| {
        // two independent exp(λ) units, system fails when both are down:
        // R(t) = 1 - (1 - e^{-λt})²
        let p = 1.0 - (-lambda * t).exp();
        1.0 - p * p
    };
    let t = 1000.0;
    assert!((report.reliability(t) - r_expected(t)).abs() < 1e-9);
    // MTTF with a single shared repairman: (3λ + µ) / (2λ²)
    let mttf_expected = (3.0 * lambda + mu) / (2.0 * lambda * lambda);
    assert!((report.mttf() - mttf_expected).abs() / mttf_expected < 1e-6);
    println!();
    println!("closed-form cross-checks passed.");
    Ok(())
}
