//! Using the paper's textual syntax (§3.5) end to end.
//!
//! Run with `cargo run --release --example textual_model`.
//!
//! Parses an Arcade description written exactly in the style of the
//! paper's listings — including `exp(1/2000)` fraction rates, operational
//! mode groups, multiple failure modes, a destructive FDEP and the `2of4`
//! shorthand — then analyzes it.

use arcade::parser::parse_system;
use arcade::prelude::*;

const MODEL: &str = r"
# A small storage array in the paper's textual syntax.

COMPONENT: psu
TIME-TO-FAILURE: exp(1/8000)
TIME-TO-REPAIR: exp(0.5)

COMPONENT: ctrl
TIME-TO-FAILURE: exp(1/4000)
TIME-TO-REPAIR: exp(0.5)
DESTRUCTIVE FDEP: psu.down
TIME-TO-REPAIRS: exp(0.5), exp(0.5)

COMPONENT: d_1
TIME-TO-FAILURE: exp(1/6000)
TIME-TO-REPAIR: exp(1)

COMPONENT: d_2
TIME-TO-FAILURE: exp(1/6000)
TIME-TO-REPAIR: exp(1)

COMPONENT: d_3
TIME-TO-FAILURE: exp(1/6000)
TIME-TO-REPAIR: exp(1)

COMPONENT: d_4
TIME-TO-FAILURE: exp(1/6000)
TIME-TO-REPAIR: exp(1)

REPAIR UNIT: psu.rep
COMPONENTS: psu
REPAIR STRATEGY: DEDICATED

REPAIR UNIT: ctrl.rep
COMPONENTS: ctrl
REPAIR STRATEGY: DEDICATED

REPAIR UNIT: disks.rep
COMPONENTS: d_1, d_2, d_3, d_4
REPAIR STRATEGY: FCFS

SYSTEM DOWN: ctrl.down OR 2of4(d_1.down, d_2.down, d_3.down, d_4.down)
";

fn main() -> Result<(), ArcadeError> {
    let def = parse_system(MODEL)?;
    println!("parsed `{}`:", def.name);
    println!("  components: {}", def.components.len());
    println!("  repair units: {}", def.repair_units.len());
    println!(
        "  SYSTEM DOWN: {}",
        def.system_down.as_ref().expect("criterion parsed")
    );
    println!();

    let report = Analysis::new(&def)?.run()?;
    println!("final CTMC: {}", report.ctmc_stats());
    println!(
        "steady-state unavailability: {:.6e}",
        report.steady_state_unavailability()
    );
    println!(
        "R(1000 h) without repair:    {:.6}",
        report.reliability(1000.0)
    );
    println!("MTTF:                        {:.0} h", report.mttf());

    // The controller dies with the PSU (destructive FDEP), so the system
    // MTTF must be noticeably below the controller-only MTTF of 4000 h.
    assert!(report.mttf() < 4000.0);
    Ok(())
}
