//! The reactor cooling system case study (paper §5.2).
//!
//! Run with `cargo run --release --example rcs`.
//!
//! Reproduces the §5.2.2 analysis: the system splits into two independent
//! modules — the pump subsystem (two load-sharing pump lines) and the
//! heat-exchanger subsystem (exchanger + bypass) — whose CTMCs are solved
//! separately and combined ("modularization"). Reported: module state
//! space sizes, and system unavailability and unreliability at 50 hours.

use arcade::cases::rcs::rcs;
use arcade::engine::EngineOptions;
use arcade::modular::modular_analysis;
use arcade::ArcadeError;

fn main() -> Result<(), ArcadeError> {
    let def = rcs();
    let t = 50.0;

    println!("=== RCS (paper §5.2) ===");
    let modular = modular_analysis(&def, &EngineOptions::new())?;
    for m in &modular.modules {
        println!(
            "{} ({} components: {}):",
            m.name,
            m.components.len(),
            m.components.join(", ")
        );
        println!("  CTMC: {}", m.report.ctmc_stats());
        println!(
            "  largest intermediate I/O-IMC: {}",
            m.report.largest_intermediate()
        );
    }
    println!();
    let unavail = modular.point_unavailability(t);
    let unrel = modular.unreliability_with_repair(t);
    println!("system unavailability at {t} h:  {unavail:.5e}");
    println!("system unreliability  at {t} h:  {unrel:.5e}");
    println!();
    println!("paper §5.2.2: unavailability 6.52100e-10, unreliability 5.29242e-9");
    println!("(component inventory partially reconstructed — see DESIGN.md; the");
    println!(" paper's pump subsystem CTMC had 10,404 states, HX subsystem 240)");
    Ok(())
}
