//! Comparing the four repair strategies of §3.2.
//!
//! Run with `cargo run --release --example repair_strategies`.
//!
//! Three components with very different failure rates and one repair
//! shop. The strategy decides who gets served when several components are
//! down at once; the example reports availability, MTTF and the size of
//! the repair unit's I/O-IMC (dedicated is small; FCFS/PP/PNP must track
//! arrival orders, the state growth the paper warns about).

use arcade::model::SystemModel;
use arcade::prelude::*;

fn build(strategy: Option<RepairStrategy>) -> SystemDef {
    let mut sys = SystemDef::new("strategies");
    // c1 fails often, c3 rarely; c3 is the most critical (highest priority).
    sys.add_component(BcDef::new("c1", Dist::exp(0.05), Dist::exp(0.5)));
    sys.add_component(BcDef::new("c2", Dist::exp(0.02), Dist::exp(0.5)));
    sys.add_component(BcDef::new("c3", Dist::exp(0.01), Dist::exp(0.5)));
    match strategy {
        None => {
            // dedicated: one RU per component
            for c in ["c1", "c2", "c3"] {
                sys.add_repair_unit(RuDef::new(
                    format!("{c}.rep"),
                    [c],
                    RepairStrategy::Dedicated,
                ));
            }
        }
        Some(s) => {
            let mut ru = RuDef::new("shop", ["c1", "c2", "c3"], s);
            if matches!(
                s,
                RepairStrategy::PreemptivePriority | RepairStrategy::NonPreemptivePriority
            ) {
                ru = ru.with_priorities([1, 2, 3]); // c3 most important
            }
            sys.add_repair_unit(ru);
        }
    }
    // the system needs c3 and at least one of c1/c2
    sys.set_system_down(Expr::or([
        Expr::down("c3"),
        Expr::and([Expr::down("c1"), Expr::down("c2")]),
    ]));
    sys
}

fn main() -> Result<(), ArcadeError> {
    println!("=== repair strategies (§3.2) ===");
    println!(
        "{:<12} {:>14} {:>12} {:>10} {:>12}",
        "strategy", "unavailability", "MTTF (h)", "RU states", "CTMC states"
    );
    let cases: [(&str, Option<RepairStrategy>); 4] = [
        ("dedicated", None),
        ("FCFS", Some(RepairStrategy::Fcfs)),
        ("PNP", Some(RepairStrategy::NonPreemptivePriority)),
        ("PP", Some(RepairStrategy::PreemptivePriority)),
    ];
    for (name, strategy) in cases {
        let def = build(strategy);
        let model = SystemModel::build(&def)?;
        let ru_states: usize = model
            .blocks
            .iter()
            .filter(|b| b.name.contains("rep") || b.name == "shop")
            .map(|b| b.imc.num_states())
            .sum();
        let report = Analysis::new(&def)?.run()?;
        println!(
            "{:<12} {:>14.6e} {:>12.1} {:>10} {:>12}",
            name,
            report.steady_state_unavailability(),
            report.mttf(),
            ru_states,
            report.ctmc_stats().states,
        );
    }
    println!();
    println!("dedicated repair gives the best availability (three repairmen);");
    println!("among the single-shop strategies, prioritizing the critical c3");
    println!("shortens system downtime — preemption (PP) beats PNP beats FCFS.");
    println!("MTTF is strategy-independent here: the *first* system failure");
    println!("happens the moment the failure condition is met, before repair");
    println!("order can make a difference.");
    Ok(())
}
