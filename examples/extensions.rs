//! The paper's §3.6/§6 extensions, working together: the Priority-AND gate
//! (footnote 8) and CSL-style queries (future work §6).
//!
//! Run with `cargo run --release --example extensions`.
//!
//! Scenario: a cooling fan and a CPU. The *order* of failures matters: if
//! the fan dies first and the CPU dies while unventilated, the damage is
//! permanent (the PAND fires); if the CPU happens to die first, the fan
//! failure afterwards is harmless downtime. A plain AND cannot tell these
//! apart.

use arcade::prelude::*;
use ctmc::csl::StateFormula;

fn build(pand: bool) -> SystemDef {
    let mut sys = SystemDef::new("pand-demo");
    sys.add_component(BcDef::new("fan", Dist::exp(0.002), Dist::exp(0.2)));
    sys.add_component(BcDef::new("cpu", Dist::exp(0.001), Dist::exp(0.2)));
    for c in ["fan", "cpu"] {
        sys.add_repair_unit(RuDef::new(
            format!("{c}.rep"),
            [c],
            RepairStrategy::Dedicated,
        ));
    }
    let children = [Expr::down("fan"), Expr::down("cpu")];
    sys.set_system_down(if pand {
        Expr::pand(children)
    } else {
        Expr::and(children)
    });
    sys
}

fn main() -> Result<(), ArcadeError> {
    let t = 1000.0;
    println!("=== Priority-AND vs AND (paper footnote 8) ===");
    let and_report = Analysis::new(&build(false))?.run()?;
    let pand_report = Analysis::new(&build(true))?.run()?;

    println!(
        "{:<6} {:>16} {:>16} {:>14}",
        "gate", "unrel w/ repair", "unavailability", "MTTF (h)"
    );
    for (name, r) in [("AND", &and_report), ("PAND", &pand_report)] {
        println!(
            "{:<6} {:>16.6e} {:>16.6e} {:>14.0}",
            name,
            r.unreliability_with_repair(t),
            r.steady_state_unavailability(),
            r.mttf()
        );
    }
    // Both components down happens either order; fan-then-cpu is one of the
    // two orders, so the PAND events are a strict subset of the AND events.
    assert!(
        pand_report.unreliability_with_repair(t) < and_report.unreliability_with_repair(t),
        "PAND must be rarer than AND"
    );
    assert!(pand_report.mttf() > and_report.mttf());

    println!();
    println!("=== CSL-style queries (paper §6 future work) ===");
    let up = StateFormula::up();
    let down = StateFormula::down();
    for &h in &[100.0, 1000.0] {
        println!(
            "P[ up U<={h} down ]      = {:.6e}   (first dangerous-order failure)",
            pand_report.until_bounded(&up, &down, h)
        );
        println!(
            "interval availability({h}) = {:.10}",
            pand_report.interval_availability(h)
        );
    }
    // consistency: P[up U<=t down] from the initial (up) state equals the
    // first-passage unreliability
    let q = pand_report.until_bounded(&up, &down, t);
    let fp = pand_report.unreliability_with_repair(t);
    assert!(
        (q - fp).abs() < 1e-12,
        "CSL until vs first passage: {q} vs {fp}"
    );
    println!();
    println!("CSL 'until' equals the first-passage unreliability — consistent.");
    Ok(())
}
