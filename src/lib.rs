//! Umbrella crate for the Arcade reproduction workspace.
//!
//! Re-exports the four library crates so that examples and integration tests
//! can use a single dependency:
//!
//! * [`ioimc`] — the Input/Output Interactive Markov Chain formalism,
//! * [`bisim`] — bisimulation minimization,
//! * [`ctmc`]  — continuous-time Markov chain solvers,
//! * [`arcade`] — the Arcade modeling language and analysis engine.
pub use arcade;
pub use bisim;
pub use ctmc;
pub use ioimc;
