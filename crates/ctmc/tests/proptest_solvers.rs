//! Property-based tests of the CTMC solvers against closed forms and
//! internal consistency conditions.

use proptest::prelude::*;

use ctmc::{absorbing, measures, steady, transient, Ctmc};

/// Random birth-death chain with positive rates.
fn arb_birth_death() -> impl Strategy<Value = (Ctmc, Vec<f64>, Vec<f64>)> {
    (
        2usize..8,
        proptest::collection::vec((1u32..50, 1u32..50), 7),
    )
        .prop_map(|(n, rates)| {
            let births: Vec<f64> = (0..n - 1).map(|i| f64::from(rates[i].0) * 0.1).collect();
            let deaths: Vec<f64> = (0..n - 1).map(|i| f64::from(rates[i].1) * 0.1).collect();
            let rows: Vec<Vec<(f64, u32)>> = (0..n)
                .map(|i| {
                    let mut row = Vec::new();
                    if i + 1 < n {
                        row.push((births[i], (i + 1) as u32));
                    }
                    if i > 0 {
                        row.push((deaths[i - 1], (i - 1) as u32));
                    }
                    row
                })
                .collect();
            let labels = (0..n).map(|i| u64::from(i == n - 1)).collect();
            (
                Ctmc::new(rows, labels, 0).expect("valid chain"),
                births,
                deaths,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Steady state of a birth-death chain matches the product formula
    /// π_i ∝ Π b_j/d_j (detailed balance).
    #[test]
    fn birth_death_steady_state((chain, births, deaths) in arb_birth_death()) {
        let pi = steady::steady_state(&chain);
        let n = chain.num_states();
        let mut expected = vec![1.0f64; n];
        for i in 1..n {
            expected[i] = expected[i - 1] * births[i - 1] / deaths[i - 1];
        }
        let total: f64 = expected.iter().sum();
        for e in &mut expected {
            *e /= total;
        }
        for (i, (&got, &want)) in pi.iter().zip(&expected).enumerate() {
            prop_assert!(
                (got - want).abs() < 1e-9,
                "state {}: {} vs {}", i, got, want
            );
        }
    }

    /// Transient distributions stay normalized and converge to the steady
    /// state.
    #[test]
    fn transient_consistency((chain, _, _) in arb_birth_death(), t in 0.1f64..20.0) {
        let pi_t = transient::transient(&chain, t);
        let sum: f64 = pi_t.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "mass {} at t={}", sum, t);
        prop_assert!(pi_t.iter().all(|&p| (-1e-12..=1.0 + 1e-12).contains(&p)));
        let pi_inf = transient::transient(&chain, 1e5);
        let steady = steady::steady_state(&chain);
        for (a, b) in pi_inf.iter().zip(&steady) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// The Chapman-Kolmogorov property: stepping to `t1` and then `t2-t1`
    /// equals stepping to `t2` directly.
    #[test]
    fn chapman_kolmogorov((chain, _, _) in arb_birth_death(), t1 in 0.1f64..5.0, dt in 0.1f64..5.0) {
        let via = {
            let mid = transient::transient(&chain, t1);
            transient::transient_from(&chain, &mid, dt)
        };
        let direct = transient::transient(&chain, t1 + dt);
        for (a, b) in via.iter().zip(&direct) {
            prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
        }
    }

    /// First-passage probability is monotone in t and bounded by 1, and
    /// the mean time to absorption is consistent with it (median-ish
    /// sanity: P(T <= mttf) is sizeable).
    #[test]
    fn first_passage_monotone((chain, _, _) in arb_birth_death(), t in 0.5f64..10.0) {
        let target = [(chain.num_states() - 1) as u32];
        let p1 = absorbing::first_passage_probability(&chain, &target, t);
        let p2 = absorbing::first_passage_probability(&chain, &target, 2.0 * t);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p2 + 1e-12 >= p1);
        let mttf = absorbing::mean_time_to_absorption(&chain, &target);
        prop_assert!(mttf > 0.0);
        let p_at_mttf = absorbing::first_passage_probability(&chain, &target, mttf);
        prop_assert!(p_at_mttf > 0.2, "P(T <= E[T]) = {}", p_at_mttf);
    }

    /// Unavailability measures agree between the steady-state and
    /// long-horizon transient paths.
    #[test]
    fn measures_consistent((chain, _, _) in arb_birth_death()) {
        let u1 = measures::steady_state_unavailability(&chain, 1);
        let u2 = measures::point_unavailability(&chain, 1, 1e5);
        prop_assert!((u1 - u2).abs() < 1e-6, "{} vs {}", u1, u2);
    }
}
