//! Property-based tests of the CTMC solvers against closed forms and
//! internal consistency conditions, over deterministically seeded random
//! chains (the workspace is dependency-free, so a small internal generator
//! plays the role of proptest).

use smallrand::SmallRng;

use ctmc::{absorbing, measures, steady, transient, Ctmc};

/// Random birth-death chain with positive rates.
fn arb_birth_death(rng: &mut SmallRng) -> (Ctmc, Vec<f64>, Vec<f64>) {
    let n = rng.range_usize(2, 8);
    let births: Vec<f64> = (0..n - 1)
        .map(|_| f64::from(rng.range_u32(1, 50)) * 0.1)
        .collect();
    let deaths: Vec<f64> = (0..n - 1)
        .map(|_| f64::from(rng.range_u32(1, 50)) * 0.1)
        .collect();
    let rows: Vec<Vec<(f64, u32)>> = (0..n)
        .map(|i| {
            let mut row = Vec::new();
            if i + 1 < n {
                row.push((births[i], (i + 1) as u32));
            }
            if i > 0 {
                row.push((deaths[i - 1], (i - 1) as u32));
            }
            row
        })
        .collect();
    let labels = (0..n).map(|i| u64::from(i == n - 1)).collect();
    (
        Ctmc::new(rows, labels, 0).expect("valid chain"),
        births,
        deaths,
    )
}

const CASES: u64 = 64;

/// Steady state of a birth-death chain matches the product formula
/// π_i ∝ Π b_j/d_j (detailed balance).
#[test]
fn birth_death_steady_state() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (chain, births, deaths) = arb_birth_death(&mut rng);
        let pi = steady::steady_state(&chain);
        let n = chain.num_states();
        let mut expected = vec![1.0f64; n];
        for i in 1..n {
            expected[i] = expected[i - 1] * births[i - 1] / deaths[i - 1];
        }
        let total: f64 = expected.iter().sum();
        for e in &mut expected {
            *e /= total;
        }
        for (i, (&got, &want)) in pi.iter().zip(&expected).enumerate() {
            assert!(
                (got - want).abs() < 1e-9,
                "seed {seed} state {i}: {got} vs {want}"
            );
        }
    }
}

/// Transient distributions stay normalized and converge to the steady
/// state.
#[test]
fn transient_consistency() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        let (chain, _, _) = arb_birth_death(&mut rng);
        let t = rng.range_f64(0.1, 20.0);
        let pi_t = transient::transient(&chain, t);
        let sum: f64 = pi_t.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "mass {sum} at t={t}");
        assert!(pi_t.iter().all(|&p| (-1e-12..=1.0 + 1e-12).contains(&p)));
        let pi_inf = transient::transient(&chain, 1e5);
        let steady = steady::steady_state(&chain);
        for (a, b) in pi_inf.iter().zip(&steady) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}

/// The Chapman-Kolmogorov property: stepping to `t1` and then `t2-t1`
/// equals stepping to `t2` directly.
#[test]
fn chapman_kolmogorov() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(2000 + seed);
        let (chain, _, _) = arb_birth_death(&mut rng);
        let t1 = rng.range_f64(0.1, 5.0);
        let dt = rng.range_f64(0.1, 5.0);
        let via = {
            let mid = transient::transient(&chain, t1);
            transient::transient_from(&chain, &mid, dt)
        };
        let direct = transient::transient(&chain, t1 + dt);
        for (a, b) in via.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-9, "seed {seed}: {a} vs {b}");
        }
    }
}

/// First-passage probability is monotone in t and bounded by 1, and
/// the mean time to absorption is consistent with it (median-ish
/// sanity: P(T <= mttf) is sizeable).
#[test]
fn first_passage_monotone() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(3000 + seed);
        let (chain, _, _) = arb_birth_death(&mut rng);
        let t = rng.range_f64(0.5, 10.0);
        let target = [(chain.num_states() - 1) as u32];
        let p1 = absorbing::first_passage_probability(&chain, &target, t);
        let p2 = absorbing::first_passage_probability(&chain, &target, 2.0 * t);
        assert!((0.0..=1.0).contains(&p1));
        assert!(p2 + 1e-12 >= p1);
        let mttf = absorbing::mean_time_to_absorption(&chain, &target);
        assert!(mttf > 0.0);
        let p_at_mttf = absorbing::first_passage_probability(&chain, &target, mttf);
        assert!(p_at_mttf > 0.2, "P(T <= E[T]) = {p_at_mttf}");
    }
}

/// Unavailability measures agree between the steady-state and
/// long-horizon transient paths.
#[test]
fn measures_consistent() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(4000 + seed);
        let (chain, _, _) = arb_birth_death(&mut rng);
        let u1 = measures::steady_state_unavailability(&chain, 1);
        let u2 = measures::point_unavailability(&chain, 1, 1e5);
        assert!((u1 - u2).abs() < 1e-6, "{u1} vs {u2}");
    }
}

/// `transient_many` agrees with the scalar `transient` to 1e-12 on random
/// chains and random (unsorted, duplicate-carrying) time grids.
#[test]
fn transient_many_matches_scalar() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(5000 + seed);
        let (chain, _, _) = arb_birth_death(&mut rng);
        let m = rng.range_usize(1, 9);
        let mut ts: Vec<f64> = (0..m).map(|_| rng.range_f64(0.0, 25.0)).collect();
        if m >= 2 {
            ts[1] = ts[0]; // exercise duplicate grid points
        }
        let batched = transient::transient_many(&chain, &ts);
        for (t, pi) in ts.iter().zip(&batched) {
            let scalar = transient::transient(&chain, *t);
            for (a, b) in pi.iter().zip(&scalar) {
                assert!(
                    (a - b).abs() < 1e-12,
                    "seed {seed} t={t}: batched {a} vs scalar {b}"
                );
            }
        }
    }
}

/// `first_passage_many` agrees with the scalar
/// `first_passage_probability` to 1e-12.
#[test]
fn first_passage_many_matches_scalar() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(6000 + seed);
        let (chain, _, _) = arb_birth_death(&mut rng);
        let target = [(chain.num_states() - 1) as u32];
        let m = rng.range_usize(1, 9);
        let ts: Vec<f64> = (0..m).map(|_| rng.range_f64(0.0, 25.0)).collect();
        let batched = absorbing::first_passage_many(&chain, &target, &ts);
        for (t, p) in ts.iter().zip(&batched) {
            let scalar = absorbing::first_passage_probability(&chain, &target, *t);
            assert!(
                (p - scalar).abs() < 1e-12,
                "seed {seed} t={t}: batched {p} vs scalar {scalar}"
            );
        }
    }
}

/// The `MeasureContext` answers every measure identically to the free
/// functions (which are now thin wrappers over it).
#[test]
fn measure_context_matches_free_functions() {
    for seed in 0..16 {
        let mut rng = SmallRng::seed_from_u64(7000 + seed);
        let (chain, _, _) = arb_birth_death(&mut rng);
        let ctx = measures::MeasureContext::new(&chain);
        let t = rng.range_f64(0.5, 10.0);
        assert_eq!(
            ctx.steady_state_availability(1),
            measures::steady_state_availability(&chain, 1)
        );
        assert_eq!(
            ctx.point_unavailability(1, t),
            measures::point_unavailability(&chain, 1, t)
        );
        assert_eq!(
            ctx.unreliability(1, t),
            measures::unreliability(&chain, 1, t)
        );
        assert_eq!(ctx.mttf(1), measures::mttf(&chain, 1));
        // repeated calls hit the caches and stay identical
        assert_eq!(ctx.mttf(1), measures::mttf(&chain, 1));
        assert_eq!(
            ctx.unreliability(1, t),
            measures::unreliability(&chain, 1, t)
        );
    }
}
