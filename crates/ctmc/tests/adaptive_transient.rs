//! Property tests of the adaptive windowed uniformization engine against
//! the exact global-Λ full-sweep engine, over deterministically seeded
//! random chains (the workspace is dependency-free, so a small internal
//! generator plays the role of proptest), plus the structural edge cases
//! the windowing machinery has to survive: support collapse onto
//! absorbing states, zero-rate segments, `t = 0` and duplicate grid
//! points.

use smallrand::SmallRng;

use ctmc::transient::{transient_many_from_with, transient_many_with};
use ctmc::{Ctmc, TransientOptions};

/// Random sparse chain with rates spanning several orders of magnitude —
/// the regime where the per-segment Λ and the ε-support window actually
/// differ from the global scheme. Some states are made absorbing so the
/// support-collapse machinery runs too.
fn arb_chain(rng: &mut SmallRng) -> Ctmc {
    let n = rng.range_usize(2, 40);
    let rows: Vec<Vec<(f64, u32)>> = (0..n)
        .map(|i| {
            if rng.range_u32(0, 10) == 0 {
                return Vec::new(); // absorbing state
            }
            let degree = rng.range_usize(1, 4.min(n));
            (0..degree)
                .map(|_| {
                    // Rates from 1e-6 to ~1e2: stiff by construction
                    // (the horizon is bounded so the exact engine's step
                    // count stays where 1e-12 agreement is meaningful —
                    // roundoff grows with Λ·t).
                    let mag = rng.range_u32(0, 8) as i32 - 6;
                    let rate = f64::from(rng.range_u32(1, 10)) * 10f64.powi(mag);
                    let target = rng.range_usize(0, n) as u32;
                    (rate, target)
                })
                .filter(|&(_, t)| t != i as u32)
                .collect()
        })
        .collect();
    let labels = vec![0u64; n];
    Ctmc::new(rows, labels, 0).expect("valid chain")
}

fn sup_diff(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| x.iter().zip(y))
        .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()))
}

const CASES: u64 = 48;

/// The adaptive windowed engine agrees with the exact global-Λ engine to
/// ≤ 1e-12 sup-norm on random stiff chains and random grids (detection
/// disabled on both sides so the comparison isolates the windowing and
/// Λ-adaptation machinery).
#[test]
fn adaptive_matches_exact_engine_on_random_chains() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let chain = arb_chain(&mut rng);
        let points = rng.range_usize(1, 7);
        let ts: Vec<f64> = (0..points)
            .map(|_| f64::from(rng.range_u32(0, 160)) * 0.25)
            .collect();
        let adaptive = transient_many_with(
            &chain,
            &ts,
            &TransientOptions::default().with_steady_tol(0.0),
        );
        let exact = transient_many_with(
            &chain,
            &ts,
            &TransientOptions::default()
                .with_steady_tol(0.0)
                .with_adaptive(false),
        );
        let diff = sup_diff(&adaptive, &exact);
        assert!(
            diff < 1e-12,
            "seed {seed}: engines disagree by {diff:e} on ts {ts:?}"
        );
        // Truncation keeps the distributions sub-stochastic at worst by
        // the documented budget; they must still be essentially
        // normalized.
        for pi in &adaptive {
            let mass: f64 = pi.iter().sum();
            assert!((mass - 1.0).abs() < 1e-9, "seed {seed}: mass {mass}");
        }
    }
}

/// Lossless windowing (`support_tol = 0`) also matches, and steady-state
/// detection on both engines stays within its own tolerance.
#[test]
fn lossless_windowing_and_detection_match() {
    for seed in 0..CASES / 2 {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        let chain = arb_chain(&mut rng);
        let ts = [0.5, 2.5, 12.0];
        let lossless = transient_many_with(
            &chain,
            &ts,
            &TransientOptions::default()
                .with_steady_tol(0.0)
                .with_support_tol(0.0),
        );
        let exact = transient_many_with(
            &chain,
            &ts,
            &TransientOptions::default()
                .with_steady_tol(0.0)
                .with_adaptive(false),
        );
        let diff = sup_diff(&lossless, &exact);
        assert!(diff < 1e-12, "seed {seed}: lossless diff {diff:e}");
        let detected = transient_many_with(&chain, &ts, &TransientOptions::default());
        let diff = sup_diff(&detected, &exact);
        assert!(diff < 1e-10, "seed {seed}: detected diff {diff:e}");
    }
}

/// Support collapse onto absorbing states: once all mass sits on
/// absorbing states, segments become zero-rate no-ops — the distribution
/// is exactly invariant and later grid points answer without stepping.
#[test]
fn support_collapse_onto_absorbing_states() {
    // 0 -> 1 -> 2(absorbing), fast rates: by t = 200 everything is
    // absorbed up to double precision.
    let c = Ctmc::new(
        vec![vec![(2.0, 1)], vec![(3.0, 2)], vec![]],
        vec![0, 0, 1],
        0,
    )
    .unwrap();
    let grid = [200.0, 500.0, 1000.0, 1e6];
    let pis = transient_many_with(&c, &grid, &TransientOptions::default());
    for (i, pi) in pis.iter().enumerate() {
        assert!(
            (pi[2] - 1.0).abs() < 1e-12,
            "t={}: absorbed mass {}",
            grid[i],
            pi[2]
        );
        let mass: f64 = pi.iter().sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }
    // The same grid with the exact engine agrees bit-for-bit-closely.
    let exact = transient_many_with(&c, &grid, &TransientOptions::default().with_adaptive(false));
    assert!(sup_diff(&pis, &exact) < 1e-12);
}

/// A zero-rate segment from the start: `pi0` entirely on an absorbing
/// state must pass through every grid point untouched, bitwise.
#[test]
fn zero_rate_segments_keep_pi0() {
    let c = Ctmc::new(
        vec![vec![(1.0, 1)], vec![], vec![(0.5, 1)]],
        vec![0, 1, 0],
        0,
    )
    .unwrap();
    let pi0 = [0.0, 1.0, 0.0];
    let pis = transient_many_from_with(&c, &pi0, &[0.0, 3.0, 100.0], &TransientOptions::default());
    for pi in &pis {
        assert_eq!(pi, &pi0.to_vec(), "absorbing pi0 must be invariant");
    }
}

/// `t = 0` and duplicate grid points through the adaptive engine: zeros
/// reproduce `pi0` exactly (the permutation round-trip is a pure copy)
/// and duplicates answer identically from the shared sweep.
#[test]
fn zero_and_duplicate_grid_points() {
    let c = Ctmc::new(
        vec![vec![(0.4, 1), (2e-4, 2)], vec![(3.0, 0)], vec![(1.0, 0)]],
        vec![0, 1, 1],
        0,
    )
    .unwrap();
    let pi0 = [0.25, 0.25, 0.5];
    let ts = [7.0, 0.0, 7.0, 2.0, 0.0, 2.0];
    let pis = transient_many_from_with(&c, &pi0, &ts, &TransientOptions::default());
    assert_eq!(pis[1], pi0.to_vec(), "t = 0 must reproduce pi0 exactly");
    assert_eq!(pis[4], pi0.to_vec());
    assert_eq!(pis[0], pis[2], "duplicate grid points must agree");
    assert_eq!(pis[3], pis[5]);
    for (&t, pi) in ts.iter().zip(&pis) {
        let exact = transient_many_from_with(
            &c,
            &pi0,
            &[t],
            &TransientOptions::default().with_adaptive(false),
        );
        for (a, b) in pi.iter().zip(&exact[0]) {
            assert!((a - b).abs() < 1e-12, "t={t}: {a} vs {b}");
        }
    }
}

/// An initial distribution spread over multiple states (multi-root BFS)
/// with unreachable states present: the window machinery must keep the
/// unreachable rows at exactly zero and the reachable dynamics exact.
#[test]
fn multi_root_support_with_unreachable_states() {
    // 4 is unreachable from {0, 1, 2}; 3 is a sink.
    let c = Ctmc::new(
        vec![
            vec![(1.0, 2)],
            vec![(0.5, 2)],
            vec![(2.0, 3)],
            vec![],
            vec![(1.0, 0)],
        ],
        vec![0, 0, 0, 1, 0],
        0,
    )
    .unwrap();
    let pi0 = [0.4, 0.6, 0.0, 0.0, 0.0];
    let ts = [1.0, 10.0, 100.0];
    let adaptive = transient_many_from_with(&c, &pi0, &ts, &TransientOptions::default());
    let exact = transient_many_from_with(
        &c,
        &pi0,
        &ts,
        &TransientOptions::default().with_adaptive(false),
    );
    assert!(sup_diff(&adaptive, &exact) < 1e-12);
    for pi in &adaptive {
        assert_eq!(pi[4], 0.0, "unreachable state must hold exactly zero");
    }
}
