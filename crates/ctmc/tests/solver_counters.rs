//! Tests that read the process-wide DTMC step/sweep counters.
//!
//! Since the counters became atomics (so sweeps on worker threads are
//! counted), every test that resets/reads them must hold [`COUNTERS`] for
//! its whole body — concurrent transient solves from *any* test in the
//! same binary would otherwise leak into the measured window. Keep
//! counter-reading tests in this file and take the lock first.

use std::sync::Mutex;

use ctmc::transient::{
    dtmc_steps_performed, reset_solver_counters, sweeps_performed, transient, transient_many,
    transient_many_with,
};
use ctmc::{Ctmc, TransientOptions};

static COUNTERS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    COUNTERS.lock().unwrap_or_else(|e| e.into_inner())
}

fn two_state() -> Ctmc {
    let (l, m) = (0.2, 1.5);
    Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap()
}

/// The batched grid sweep performs far fewer DTMC steps than one scalar
/// solve per point (moved here from the `transient` unit tests when the
/// counters became process-wide).
#[test]
fn batched_sweep_does_less_work_than_scalar_loop() {
    let _g = lock();
    let c = two_state();
    let grid: Vec<f64> = (1..=50).map(|k| f64::from(k) * 4.0).collect();
    // Disable steady-state detection so the comparison measures batching
    // alone (detection would short-circuit both sides).
    let opts = TransientOptions::default().with_steady_tol(0.0);
    reset_solver_counters();
    for &t in &grid {
        let _ = ctmc::transient::transient_with(&c, t, &opts);
    }
    let scalar_steps = dtmc_steps_performed();
    assert_eq!(sweeps_performed(), 50);
    reset_solver_counters();
    let _ = transient_many_with(&c, &grid, &opts);
    let batched_steps = dtmc_steps_performed();
    assert!(
        batched_steps * 5 <= scalar_steps,
        "batched {batched_steps} vs scalar {scalar_steps} DTMC steps"
    );
}

/// Steady-state detection cuts the DTMC steps of a long-horizon grid by
/// at least 2x while every grid value stays within 1e-10.
#[test]
fn steady_detection_cuts_long_horizon_steps() {
    let _g = lock();
    let c = two_state();
    // A grid that keeps stepping far past the chain's mixing time.
    let grid: Vec<f64> = (1..=40).map(|k| f64::from(k) * 25.0).collect();
    reset_solver_counters();
    let exact = transient_many_with(&c, &grid, &TransientOptions::default().with_steady_tol(0.0));
    let undetected_steps = dtmc_steps_performed();
    reset_solver_counters();
    let detected = transient_many_with(&c, &grid, &TransientOptions::default());
    let detected_steps = dtmc_steps_performed();
    assert!(
        detected_steps * 2 <= undetected_steps,
        "detection saved too little: {detected_steps} vs {undetected_steps} DTMC steps"
    );
    for (i, &t) in grid.iter().enumerate() {
        for (a, b) in detected[i].iter().zip(&exact[i]) {
            assert!((a - b).abs() < 1e-10, "t={t}: {a} vs {b}");
        }
    }
}

/// A grid living entirely past the mixing time costs one segment of
/// stepping: every later point answers from the converged vector.
#[test]
fn grid_entirely_past_convergence_steps_once() {
    let _g = lock();
    let c = two_state();
    reset_solver_counters();
    let pis = transient_many(&c, &[500.0, 1000.0, 2000.0, 4000.0]);
    assert_eq!(sweeps_performed(), 1, "later points must reuse the vector");
    let steady = ctmc::steady::steady_state(&c);
    for pi in &pis {
        assert!((pi[0] - steady[0]).abs() < 1e-10);
    }
    assert_eq!(pis[1], pis[2]);
    assert_eq!(pis[2], pis[3]);
}

/// Counter-thread-safety regression: sweeps performed on worker threads
/// (here: an explicitly spawned thread, as the parallel `Session`
/// prefetch and modular analysis do) must be visible to the reader — the
/// old thread-local counters silently dropped them.
#[test]
fn counters_count_worker_thread_sweeps() {
    let _g = lock();
    let c = two_state();
    reset_solver_counters();
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let _ = transient(&c, 25.0);
            });
        }
    });
    assert_eq!(sweeps_performed(), 2, "worker-thread sweeps were lost");
    assert!(dtmc_steps_performed() > 0);
}

/// A sharded step is one matrix-vector product: running the same grid
/// with more worker threads must not change the step count.
#[test]
fn sharded_steps_count_once() {
    let _g = lock();
    let c = two_state();
    let grid = [2.0, 6.0, 11.0];
    let serial_opts = TransientOptions::default().with_steady_tol(0.0);
    reset_solver_counters();
    let serial = transient_many_with(&c, &grid, &serial_opts);
    let serial_steps = dtmc_steps_performed();
    reset_solver_counters();
    let sharded = transient_many_with(
        &c,
        &grid,
        &serial_opts.clone().with_threads(4).with_shard_min(1),
    );
    let sharded_steps = dtmc_steps_performed();
    assert_eq!(serial_steps, sharded_steps);
    assert_eq!(serial, sharded);
}
