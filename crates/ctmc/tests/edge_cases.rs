//! Edge-case behavior locks for [`ctmc::absorbing`] and [`ctmc::csl`]:
//! initial states that are already absorbing or already targets,
//! unreachable target sets, and zero-exit-rate transient states. Every
//! absorbing-analysis case is pinned on **both** solver paths (dense and
//! sparse via `dense_limit = 0`), so the CSR/iterative rewrite and any
//! future solver change keep identical semantics.

use ctmc::absorbing::{
    first_passage_many, first_passage_probability, mean_time_to_absorption,
    mean_time_to_absorption_with,
};
use ctmc::csl::{
    always_bounded, eventually_bounded, steady_state_probability, until_bounded, StateFormula,
};
use ctmc::{Ctmc, SolverOptions};

fn sparse() -> SolverOptions {
    SolverOptions::default().with_dense_limit(0)
}

/// Both solver paths must agree on the hitting time (including the
/// infinite cases), for every chain in these tests.
fn mttf_both_paths(ctmc: &Ctmc, targets: &[u32]) -> f64 {
    let dense = mean_time_to_absorption(ctmc, targets);
    let iter = mean_time_to_absorption_with(ctmc, targets, &sparse());
    if dense.is_finite() {
        assert!(
            (dense - iter).abs() <= 1e-10 * dense.abs().max(1.0),
            "solver paths disagree: dense {dense} vs sparse {iter}"
        );
    } else {
        assert_eq!(dense, iter, "solver paths disagree on divergence");
    }
    dense
}

#[test]
#[should_panic(expected = "initial state is already a target")]
fn mttf_panics_when_initial_is_target() {
    let c = Ctmc::new(vec![vec![(1.0, 1)], vec![]], vec![1, 0], 0).unwrap();
    let _ = mean_time_to_absorption(&c, &[0]);
}

#[test]
fn first_passage_is_one_when_initial_is_target() {
    // The initial state is itself a target: the first passage happened at
    // t = 0, and making it absorbing keeps all mass there.
    let c = Ctmc::new(vec![vec![(2.0, 1)], vec![(1.0, 0)]], vec![1, 0], 0).unwrap();
    // t = 0 is exact; positive horizons only accumulate the rounding of
    // the truncated Poisson weight sum (≈1 ulp).
    assert_eq!(first_passage_probability(&c, &[0], 0.0), 1.0);
    for t in [0.5, 10.0] {
        let p = first_passage_probability(&c, &[0], t);
        assert!((p - 1.0).abs() < 1e-12, "t={t}: {p}");
    }
    for (i, p) in first_passage_many(&c, &[0], &[3.0, 0.0, 1.0])
        .into_iter()
        .enumerate()
    {
        assert!((p - 1.0).abs() < 1e-12, "grid point {i}: {p}");
    }
}

#[test]
fn initial_already_absorbing_never_reaches_targets() {
    // Zero-exit initial state, target elsewhere: the walk never moves.
    let c = Ctmc::new(vec![vec![], vec![(1.0, 2)], vec![]], vec![0, 0, 1], 0).unwrap();
    assert_eq!(mttf_both_paths(&c, &[2]), f64::INFINITY);
    for t in [0.0, 5.0] {
        assert_eq!(first_passage_probability(&c, &[2], t), 0.0, "t={t}");
    }
}

#[test]
fn unreachable_target_set() {
    // 0 ↔ 1 recurrent, target 2 unreachable.
    let c = Ctmc::new(
        vec![vec![(1.0, 1)], vec![(2.0, 0)], vec![(1.0, 0)]],
        vec![0, 0, 1],
        0,
    )
    .unwrap();
    assert_eq!(mttf_both_paths(&c, &[2]), f64::INFINITY);
    assert_eq!(first_passage_probability(&c, &[2], 100.0), 0.0);
    assert_eq!(first_passage_many(&c, &[2], &[1.0, 10.0]), vec![0.0, 0.0]);
}

#[test]
fn empty_target_set_is_never_reached() {
    let c = Ctmc::new(vec![vec![(1.0, 1)], vec![(1.0, 0)]], vec![0, 0], 0).unwrap();
    assert_eq!(mttf_both_paths(&c, &[]), f64::INFINITY);
    assert_eq!(first_passage_probability(&c, &[], 10.0), 0.0);
}

#[test]
fn zero_exit_transient_state_diverges_hitting_time() {
    // 0 → {1 (dead end), 2 (target)}: with probability 1/2 the walk parks
    // in 1 forever, so E[T] = ∞ even though the target is reachable.
    let c = Ctmc::new(
        vec![vec![(1.0, 1), (1.0, 2)], vec![], vec![]],
        vec![0, 0, 1],
        0,
    )
    .unwrap();
    assert_eq!(mttf_both_paths(&c, &[2]), f64::INFINITY);
    // ... but the first-passage *probability* is still well-defined and
    // converges to the absorption probability 1/2.
    let p = first_passage_probability(&c, &[2], 1e3);
    assert!((p - 0.5).abs() < 1e-9, "absorption probability {p}");
}

#[test]
fn dead_end_behind_the_target_does_not_diverge() {
    // 0 → 1 (target) → 2 (dead end): the walk is *stopped* at the target,
    // so the dead end behind it must not trigger the divergence check.
    let c = Ctmc::new(
        vec![vec![(0.5, 1)], vec![(1.0, 2)], vec![]],
        vec![0, 1, 0],
        0,
    )
    .unwrap();
    let mttf = mttf_both_paths(&c, &[1]);
    assert!((mttf - 2.0).abs() < 1e-10, "mttf {mttf}");
}

// ---- CSL layer ----------------------------------------------------------

#[test]
fn until_is_immediate_when_initial_satisfies_psi() {
    let c = Ctmc::new(vec![vec![(1.0, 1)], vec![(1.0, 0)]], vec![1, 0], 0).unwrap();
    for t in [0.0, 1.0, 50.0] {
        let p = until_bounded(&c, &StateFormula::True, &StateFormula::down(), t);
        assert_eq!(p, 1.0, "t={t}");
    }
}

#[test]
fn until_is_zero_when_initial_violates_phi_and_psi() {
    // Initial state violates Φ (it is "degraded", bit 1) and is not Ψ:
    // the path constraint is broken at time 0.
    let c = Ctmc::new(vec![vec![(1.0, 1)], vec![]], vec![0b10, 0b1], 0).unwrap();
    let phi = StateFormula::Label(0b10).not();
    let p = until_bounded(&c, &phi, &StateFormula::down(), 10.0);
    assert!(p < 1e-12, "blocked at t=0, got {p}");
}

#[test]
fn eventually_unreachable_targets_is_zero() {
    let c = Ctmc::new(
        vec![vec![(1.0, 1)], vec![(2.0, 0)], vec![(1.0, 0)]],
        vec![0, 0, 1],
        0,
    )
    .unwrap();
    for t in [0.0, 7.0] {
        assert_eq!(eventually_bounded(&c, &StateFormula::down(), t), 0.0);
    }
}

#[test]
fn zero_exit_chain_always_holds_forever() {
    // No transitions at all: the initial state's labeling decides both
    // operators for every horizon.
    let c = Ctmc::new(vec![vec![], vec![]], vec![0, 1], 0).unwrap();
    assert_eq!(c.max_exit_rate(), 0.0);
    for t in [0.0, 1.0, 1e4] {
        assert_eq!(always_bounded(&c, &StateFormula::up(), t), 1.0, "t={t}");
        assert_eq!(eventually_bounded(&c, &StateFormula::down(), t), 0.0);
    }
}

#[test]
fn steady_state_probability_of_unmatched_formula_is_zero() {
    let c = Ctmc::new(vec![vec![(1.0, 1)], vec![(1.0, 0)]], vec![0, 0], 0).unwrap();
    assert_eq!(steady_state_probability(&c, &StateFormula::down()), 0.0);
    assert_eq!(steady_state_probability(&c, &StateFormula::True), 1.0);
}
