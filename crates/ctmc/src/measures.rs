//! Dependability measures over labelled CTMCs.
//!
//! Arcade labels system-down states with bit 0; all measures here take the
//! label mask explicitly so other propositions can be queried the same way.

use ioimc::StateLabel;

use crate::absorbing::{first_passage_probability, mean_time_to_absorption};
use crate::chain::Ctmc;
use crate::steady::steady_state;
use crate::transient::transient;

/// Steady-state availability: long-run probability of *not* being in a
/// state matching `down_mask`.
pub fn steady_state_availability(ctmc: &Ctmc, down_mask: StateLabel) -> f64 {
    let pi = steady_state(ctmc);
    1.0 - mass(ctmc, &pi, down_mask)
}

/// Steady-state unavailability: complement of
/// [`steady_state_availability`], computed directly to preserve precision
/// for very small values.
pub fn steady_state_unavailability(ctmc: &Ctmc, down_mask: StateLabel) -> f64 {
    let pi = steady_state(ctmc);
    mass(ctmc, &pi, down_mask)
}

/// Point availability `A(t)`: probability of being up at time `t`.
pub fn point_availability(ctmc: &Ctmc, down_mask: StateLabel, t: f64) -> f64 {
    1.0 - point_unavailability(ctmc, down_mask, t)
}

/// Point unavailability `1 - A(t)`, computed directly.
pub fn point_unavailability(ctmc: &Ctmc, down_mask: StateLabel, t: f64) -> f64 {
    let pi = transient(ctmc, t);
    mass(ctmc, &pi, down_mask)
}

/// Reliability `R(t)`: probability that no down state has been entered up
/// to time `t` (down states made absorbing).
pub fn reliability(ctmc: &Ctmc, down_mask: StateLabel, t: f64) -> f64 {
    1.0 - unreliability(ctmc, down_mask, t)
}

/// Unreliability `1 - R(t)`: first-passage probability into the down
/// states, computed directly (the RCS case study reports values around
/// 1e-9 where `1 - R` would lose all precision).
pub fn unreliability(ctmc: &Ctmc, down_mask: StateLabel, t: f64) -> f64 {
    let targets: Vec<u32> = ctmc.states_with_label(down_mask).collect();
    if targets.is_empty() {
        return 0.0;
    }
    first_passage_probability(ctmc, &targets, t)
}

/// Mean time to failure: expected time until the first down state is
/// entered.
pub fn mttf(ctmc: &Ctmc, down_mask: StateLabel) -> f64 {
    let targets: Vec<u32> = ctmc.states_with_label(down_mask).collect();
    if targets.is_empty() {
        return f64::INFINITY;
    }
    mean_time_to_absorption(ctmc, &targets)
}

fn mass(ctmc: &Ctmc, pi: &[f64], mask: StateLabel) -> f64 {
    ctmc.states_with_label(mask)
        .map(|s| pi[s as usize])
        .sum::<f64>()
        .clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(l: f64, m: f64) -> Ctmc {
        Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap()
    }

    #[test]
    fn availability_pair_is_consistent() {
        let c = machine(0.01, 1.0);
        let a = steady_state_availability(&c, 1);
        let u = steady_state_unavailability(&c, 1);
        assert!((a + u - 1.0).abs() < 1e-12);
        assert!((u - 0.01 / 1.01).abs() < 1e-12);
    }

    #[test]
    fn reliability_ignores_repair() {
        let c = machine(0.1, 100.0);
        // first failure is exp(0.1) regardless of the huge repair rate
        let r = reliability(&c, 1, 5.0);
        assert!((r - (-0.5f64).exp()).abs() < 1e-10);
        let u = unreliability(&c, 1, 5.0);
        assert!((r + u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_availability_interpolates() {
        let c = machine(0.5, 0.5);
        let a0 = point_availability(&c, 1, 0.0);
        let ainf = point_availability(&c, 1, 1e3);
        assert!((a0 - 1.0).abs() < 1e-12);
        assert!((ainf - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mttf_of_machine() {
        let c = machine(0.25, 1.0);
        assert!((mttf(&c, 1) - 4.0).abs() < 1e-10);
    }

    #[test]
    fn no_down_states_is_perfect() {
        let c = Ctmc::new(vec![vec![(1.0, 1)], vec![(1.0, 0)]], vec![0, 0], 0).unwrap();
        assert_eq!(unreliability(&c, 1, 10.0), 0.0);
        assert_eq!(mttf(&c, 1), f64::INFINITY);
        assert!((steady_state_availability(&c, 1) - 1.0).abs() < 1e-12);
    }
}
