//! Dependability measures over labelled CTMCs.
//!
//! Arcade labels system-down states with bit 0; all measures here take the
//! label mask explicitly so other propositions can be queried the same way.
//!
//! [`MeasureContext`] is the batch-friendly entry point: it caches the
//! steady-state vector, the per-mask down-state lists and the per-mask
//! absorbing transformations, so a whole curve of queries against one
//! chain pays for each expensive artifact **once**. The free functions
//! remain as thin one-shot wrappers for callers with a single query.

use std::cell::{OnceCell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use ioimc::StateLabel;

use crate::absorbing::mean_time_to_absorption_with;
use crate::chain::Ctmc;
use crate::poisson::PoissonCache;
use crate::solver::SolverOptions;
use crate::steady::steady_state_with;
use crate::transient::transient_many_from_cached;

/// A measure-evaluation context over one chain: memoizes the steady-state
/// vector, the down-state index list per label mask, and the
/// absorbing-transformed chain per label mask, sharing them across every
/// query made through it.
///
/// The context is deliberately lazy — nothing is computed before the
/// first query that needs it — and single-threaded (interior mutability
/// via `OnceCell`/`RefCell`).
#[derive(Debug)]
pub struct MeasureContext<'a> {
    ctmc: &'a Ctmc,
    solver: SolverOptions,
    steady: OnceCell<Vec<f64>>,
    targets: RefCell<HashMap<StateLabel, Rc<[u32]>>>,
    absorbing: RefCell<HashMap<StateLabel, Rc<Ctmc>>>,
    mttf: RefCell<HashMap<StateLabel, f64>>,
    /// Poisson weight memo shared by every transient query of the
    /// context (availability and first-passage curves over the same grid
    /// reuse each `Λ·Δt` expansion).
    poisson: PoissonCache,
}

impl<'a> MeasureContext<'a> {
    /// Creates an empty context over `ctmc` with default [`SolverOptions`].
    pub fn new(ctmc: &'a Ctmc) -> Self {
        Self::with_solver(ctmc, SolverOptions::default())
    }

    /// Creates an empty context over `ctmc` with explicit solver
    /// configuration, used by every steady-state and MTTF solve the
    /// context performs.
    pub fn with_solver(ctmc: &'a Ctmc, solver: SolverOptions) -> Self {
        Self {
            ctmc,
            solver,
            steady: OnceCell::new(),
            targets: RefCell::new(HashMap::new()),
            absorbing: RefCell::new(HashMap::new()),
            mttf: RefCell::new(HashMap::new()),
            poisson: PoissonCache::new(),
        }
    }

    /// The underlying chain.
    pub fn ctmc(&self) -> &'a Ctmc {
        self.ctmc
    }

    /// The steady-state distribution (computed on first use).
    pub fn steady_state(&self) -> &[f64] {
        self.steady
            .get_or_init(|| steady_state_with(self.ctmc, &self.solver))
    }

    /// The states matching `mask` (collected on first use per mask).
    pub fn states_with_label(&self, mask: StateLabel) -> Rc<[u32]> {
        self.targets
            .borrow_mut()
            .entry(mask)
            .or_insert_with(|| self.ctmc.states_with_label(mask).collect())
            .clone()
    }

    /// The chain with the `mask` states made absorbing (built on first use
    /// per mask; shared by every first-passage query).
    fn absorbing_chain(&self, mask: StateLabel) -> Rc<Ctmc> {
        let targets = self.states_with_label(mask);
        self.absorbing
            .borrow_mut()
            .entry(mask)
            .or_insert_with(|| Rc::new(self.ctmc.make_absorbing(targets.iter().copied())))
            .clone()
    }

    /// Steady-state availability: long-run probability of *not* matching
    /// `mask`.
    pub fn steady_state_availability(&self, mask: StateLabel) -> f64 {
        1.0 - self.steady_state_unavailability(mask)
    }

    /// Steady-state unavailability, computed directly to preserve
    /// precision for very small values.
    pub fn steady_state_unavailability(&self, mask: StateLabel) -> f64 {
        let targets = self.states_with_label(mask);
        state_mass(&targets, self.steady_state())
    }

    /// Point availability `A(t)`.
    pub fn point_availability(&self, mask: StateLabel, t: f64) -> f64 {
        1.0 - self.point_unavailability(mask, t)
    }

    /// Point unavailability `1 - A(t)`, computed directly.
    pub fn point_unavailability(&self, mask: StateLabel, t: f64) -> f64 {
        self.point_unavailability_many(mask, &[t])[0]
    }

    /// Point unavailability over a whole time grid in one batched
    /// uniformization sweep (adaptive windowed / sharded /
    /// steady-state-aware per the context's [`SolverOptions::transient`]
    /// configuration — grid accuracy composes as documented in
    /// [`crate::transient`]).
    pub fn point_unavailability_many(&self, mask: StateLabel, ts: &[f64]) -> Vec<f64> {
        let targets = self.states_with_label(mask);
        transient_many_from_cached(
            self.ctmc,
            &self.ctmc.initial_distribution(),
            ts,
            &self.solver.transient,
            &self.poisson,
        )
        .iter()
        .map(|pi| state_mass(&targets, pi))
        .collect()
    }

    /// Reliability `R(t)`: probability that no `mask` state has been
    /// entered up to `t` (mask states made absorbing).
    pub fn reliability(&self, mask: StateLabel, t: f64) -> f64 {
        1.0 - self.unreliability(mask, t)
    }

    /// Unreliability `1 - R(t)`: first-passage probability into the
    /// `mask` states, computed directly (the RCS case study reports
    /// values around 1e-9 where `1 - R` would lose all precision).
    pub fn unreliability(&self, mask: StateLabel, t: f64) -> f64 {
        self.unreliability_many(mask, &[t])[0]
    }

    /// First-passage unreliability over a whole time grid: one cached
    /// absorbing transformation, one batched sweep.
    pub fn unreliability_many(&self, mask: StateLabel, ts: &[f64]) -> Vec<f64> {
        let targets = self.states_with_label(mask);
        if targets.is_empty() {
            return vec![0.0; ts.len()];
        }
        let absorbing = self.absorbing_chain(mask);
        transient_many_from_cached(
            &absorbing,
            &absorbing.initial_distribution(),
            ts,
            &self.solver.transient,
            &self.poisson,
        )
        .iter()
        .map(|pi| state_mass(&targets, pi))
        .collect()
    }

    /// Mean time to failure: expected time until the first `mask` state
    /// is entered (memoized per mask).
    pub fn mttf(&self, mask: StateLabel) -> f64 {
        if let Some(&v) = self.mttf.borrow().get(&mask) {
            return v;
        }
        let targets = self.states_with_label(mask);
        let v = if targets.is_empty() {
            f64::INFINITY
        } else {
            mean_time_to_absorption_with(self.ctmc, &targets, &self.solver)
        };
        self.mttf.borrow_mut().insert(mask, v);
        v
    }
}

/// Steady-state availability: long-run probability of *not* being in a
/// state matching `down_mask`.
pub fn steady_state_availability(ctmc: &Ctmc, down_mask: StateLabel) -> f64 {
    MeasureContext::new(ctmc).steady_state_availability(down_mask)
}

/// Steady-state unavailability: complement of
/// [`steady_state_availability`], computed directly to preserve precision
/// for very small values.
pub fn steady_state_unavailability(ctmc: &Ctmc, down_mask: StateLabel) -> f64 {
    MeasureContext::new(ctmc).steady_state_unavailability(down_mask)
}

/// Point availability `A(t)`: probability of being up at time `t`.
pub fn point_availability(ctmc: &Ctmc, down_mask: StateLabel, t: f64) -> f64 {
    MeasureContext::new(ctmc).point_availability(down_mask, t)
}

/// Point unavailability `1 - A(t)`, computed directly.
pub fn point_unavailability(ctmc: &Ctmc, down_mask: StateLabel, t: f64) -> f64 {
    MeasureContext::new(ctmc).point_unavailability(down_mask, t)
}

/// Reliability `R(t)`: probability that no down state has been entered up
/// to time `t` (down states made absorbing).
pub fn reliability(ctmc: &Ctmc, down_mask: StateLabel, t: f64) -> f64 {
    MeasureContext::new(ctmc).reliability(down_mask, t)
}

/// Unreliability `1 - R(t)`: first-passage probability into the down
/// states, computed directly (the RCS case study reports values around
/// 1e-9 where `1 - R` would lose all precision).
pub fn unreliability(ctmc: &Ctmc, down_mask: StateLabel, t: f64) -> f64 {
    MeasureContext::new(ctmc).unreliability(down_mask, t)
}

/// Mean time to failure: expected time until the first down state is
/// entered.
pub fn mttf(ctmc: &Ctmc, down_mask: StateLabel) -> f64 {
    MeasureContext::new(ctmc).mttf(down_mask)
}

/// Probability mass of `pi` on `targets`, clamped to `[0, 1]` (sums of a
/// numerically computed distribution can stray by rounding). Shared by
/// every measure layer so clamping policy lives in one place.
pub fn state_mass(targets: &[u32], pi: &[f64]) -> f64 {
    targets
        .iter()
        .map(|&s| pi[s as usize])
        .sum::<f64>()
        .clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(l: f64, m: f64) -> Ctmc {
        Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap()
    }

    #[test]
    fn availability_pair_is_consistent() {
        let c = machine(0.01, 1.0);
        let a = steady_state_availability(&c, 1);
        let u = steady_state_unavailability(&c, 1);
        assert!((a + u - 1.0).abs() < 1e-12);
        assert!((u - 0.01 / 1.01).abs() < 1e-12);
    }

    #[test]
    fn reliability_ignores_repair() {
        let c = machine(0.1, 100.0);
        // first failure is exp(0.1) regardless of the huge repair rate
        let r = reliability(&c, 1, 5.0);
        assert!((r - (-0.5f64).exp()).abs() < 1e-10);
        let u = unreliability(&c, 1, 5.0);
        assert!((r + u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_availability_interpolates() {
        let c = machine(0.5, 0.5);
        let a0 = point_availability(&c, 1, 0.0);
        let ainf = point_availability(&c, 1, 1e3);
        assert!((a0 - 1.0).abs() < 1e-12);
        assert!((ainf - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mttf_of_machine() {
        let c = machine(0.25, 1.0);
        assert!((mttf(&c, 1) - 4.0).abs() < 1e-10);
    }

    #[test]
    fn no_down_states_is_perfect() {
        let c = Ctmc::new(vec![vec![(1.0, 1)], vec![(1.0, 0)]], vec![0, 0], 0).unwrap();
        assert_eq!(unreliability(&c, 1, 10.0), 0.0);
        assert_eq!(mttf(&c, 1), f64::INFINITY);
        assert!((steady_state_availability(&c, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn context_batches_agree_with_scalars() {
        let c = machine(0.2, 2.0);
        let ctx = MeasureContext::new(&c);
        let ts = [0.5, 5.0, 1.0, 5.0];
        let unavail = ctx.point_unavailability_many(1, &ts);
        let unrel = ctx.unreliability_many(1, &ts);
        for (i, &t) in ts.iter().enumerate() {
            assert!((unavail[i] - point_unavailability(&c, 1, t)).abs() < 1e-12);
            assert!((unrel[i] - unreliability(&c, 1, t)).abs() < 1e-12);
        }
    }

    #[test]
    fn context_caches_down_state_lists() {
        let c = machine(0.2, 2.0);
        let ctx = MeasureContext::new(&c);
        let a = ctx.states_with_label(1);
        let b = ctx.states_with_label(1);
        assert!(Rc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(&*a, &[1]);
    }
}
