//! Per-analysis measurement context: a Poisson weight memo plus solver
//! work counters scoped to one analysis session.
//!
//! The transient engines keep process-wide instrumentation counters
//! ([`crate::transient::dtmc_steps_performed`]) for benchmarks, but a
//! server hosting several concurrent sessions needs counters that cannot
//! cross-contaminate: two sessions solving at the same time must each see
//! only their own work. A [`MeasureContext`] bundles the session-scoped
//! [`SolveCounters`] with the session's [`PoissonCache`]; the `_ctx`
//! entry points ([`crate::transient::transient_many_from_ctx`],
//! [`crate::csl::until_bounded_ctx`],
//! [`crate::csl::interval_down_fraction_ctx`]) thread both through the
//! grid solver, which bumps the per-context counters *in addition to*
//! the process-wide ones.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::poisson::PoissonCache;

/// Solver work counters for one analysis context. All increments are
/// relaxed atomics so sweeps running on worker threads (sharded steps,
/// parallel prefetches) are neither lost nor raced.
#[derive(Debug, Default)]
pub struct SolveCounters {
    dtmc_steps: AtomicU64,
    sweeps: AtomicU64,
}

impl Clone for SolveCounters {
    /// The clone restarts at the current counter values.
    fn clone(&self) -> Self {
        Self {
            dtmc_steps: AtomicU64::new(self.dtmc_steps()),
            sweeps: AtomicU64::new(self.sweeps()),
        }
    }
}

impl SolveCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// DTMC matrix-vector products performed through this context. A
    /// sharded step counts once — it is one matrix-vector product no
    /// matter how many workers computed it.
    pub fn dtmc_steps(&self) -> u64 {
        self.dtmc_steps.load(Ordering::Relaxed)
    }

    /// Uniformization sweeps (scalar solves or batched grid segments)
    /// started through this context.
    pub fn sweeps(&self) -> u64 {
        self.sweeps.load(Ordering::Relaxed)
    }

    /// Records one DTMC matrix-vector product.
    pub fn count_step(&self) {
        self.dtmc_steps.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one uniformization sweep.
    pub fn count_sweep(&self) {
        self.sweeps.fetch_add(1, Ordering::Relaxed);
    }
}

/// The per-session analysis context: a [`PoissonCache`] (so identical
/// uniformization parameters are expanded once per session) and
/// session-scoped [`SolveCounters`].
#[derive(Debug, Clone, Default)]
pub struct MeasureContext {
    /// The session's Poisson weight memo.
    pub poisson: PoissonCache,
    /// The session's solver work counters.
    pub counters: SolveCounters,
}

impl MeasureContext {
    /// Creates a fresh context with a default-capacity cache and zeroed
    /// counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a fresh context whose Poisson memo holds at most
    /// `capacity` weight vectors (see [`PoissonCache::with_capacity`]).
    pub fn with_poisson_capacity(capacity: usize) -> Self {
        Self {
            poisson: PoissonCache::with_capacity(capacity),
            counters: SolveCounters::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_accumulate() {
        let c = SolveCounters::new();
        assert_eq!((c.dtmc_steps(), c.sweeps()), (0, 0));
        c.count_step();
        c.count_step();
        c.count_sweep();
        assert_eq!((c.dtmc_steps(), c.sweeps()), (2, 1));
        let cloned = c.clone();
        c.count_step();
        assert_eq!(cloned.dtmc_steps(), 2, "clone restarts at the snapshot");
        assert_eq!(c.dtmc_steps(), 3);
    }

    #[test]
    fn context_counters_are_independent_between_contexts() {
        let a = MeasureContext::new();
        let b = MeasureContext::new();
        a.counters.count_sweep();
        assert_eq!(a.counters.sweeps(), 1);
        assert_eq!(b.counters.sweeps(), 0);
    }
}
