//! Steady-state distribution.
//!
//! Solves the global balance equations `πQ = 0`, `Σπ = 1`. Chains up to
//! [`SolverOptions::dense_limit`] use the subtraction-free GTH
//! state-elimination algorithm (entrywise relative accuracy regardless
//! of stiffness — robust for the chains dependability models produce,
//! with failure rates of 1e-8 next to repair rates of 1e-1). Larger
//! chains use the configured sparse iterative kernel over the transposed
//! CSR adjacency ([`crate::chain::Incoming`]): Gauss–Seidel sweeps by
//! default, power iteration on the uniformized DTMC or restarted Arnoldi
//! (Krylov) as alternatives — and every iterative answer is accepted
//! only after an O(nnz) balance-residual check, with an exact rescue for
//! chains small enough to re-solve.
//!
//! # The Krylov kernel and the Gauss–Seidel stall fallback
//!
//! [`IterativeMethod::Krylov`] runs restarted Arnoldi on the uniformized
//! DTMC `P = I + Q/Λ`: per restart it builds a small orthonormal Krylov
//! basis, extracts the Ritz vector of the (known) unit eigenvalue by
//! inverse iteration on the projected Hessenberg matrix, and restarts
//! from it. A short Gauss–Seidel polish afterwards restores full
//! *relative* accuracy on stiff chains (Arnoldi works in probability
//! space, where 1e-8 components carry no weight). The default
//! Gauss–Seidel kernel watches its own sweep-to-sweep progress and falls
//! back to this Krylov kernel (with the remaining sweep budget) when it
//! stalls — less than 2× residual improvement across a 64-sweep window
//! while still far from tolerance — which happens on nearly-decoupled
//! chains where local propagation mixes too slowly.

use crate::chain::Ctmc;
use crate::solver::{IterativeMethod, SolverOptions, UNIF_HEADROOM};
use crate::transient::prescaled_transpose;

/// Computes the steady-state distribution of an irreducible CTMC with
/// default [`SolverOptions`].
///
/// For reducible chains the result is the stationary distribution reachable
/// from the chain's structure and should not be relied on; Arcade models
/// with repair are irreducible by construction.
pub fn steady_state(ctmc: &Ctmc) -> Vec<f64> {
    steady_state_with(ctmc, &SolverOptions::default())
}

/// Largest chain the residual gate will rescue with the exact dense
/// solver when an iterative run ends uncertified. Beyond this, the
/// O(n³) rescue would cost more than re-running the whole analysis, so
/// the best iterate is returned as-is (pre-existing behavior).
const EXACT_RESCUE_LIMIT: usize = 2048;

/// [`steady_state`] with explicit solver configuration.
///
/// Iterative results are *verified*, not trusted: the max relative
/// balance residual `|inflow_i − π_i·exit_i| / (π_i·exit_i)` is checked
/// in O(nnz) after the solve, because every change-based stopping rule
/// can mistake stagnation for convergence (the differential fuzzer
/// caught the Krylov kernel doing exactly that on a nearly-decomposable
/// 6-state chain — restarts stopped moving while the answer was off by
/// 1e-4). A converged sweep lands at residual ~1e-15; an uncertified
/// one sits orders of magnitude higher, and chains up to
/// [`EXACT_RESCUE_LIMIT`] states are then re-solved exactly.
pub fn steady_state_with(ctmc: &Ctmc, opts: &SolverOptions) -> Vec<f64> {
    let n = ctmc.num_states();
    if n == 1 {
        return vec![1.0];
    }
    if n <= opts.dense_limit {
        return dense_solve(ctmc);
    }
    let pi = match opts.method {
        IterativeMethod::GaussSeidel => gauss_seidel(ctmc, opts),
        IterativeMethod::Power => power_iteration(ctmc, opts),
        IterativeMethod::Krylov => {
            krylov_from(ctmc, opts, vec![1.0 / n as f64; n], opts.max_sweeps)
        }
    };
    // Residual acceptance: sqrt(tol) sits between the ~1e-15 residual of
    // a genuinely converged sweep and the ≥1e-5 residual of the failure
    // modes observed in fuzzing, and scales with the requested accuracy.
    let accept = opts.tol.max(1e-14).sqrt();
    if n <= EXACT_RESCUE_LIMIT && max_rel_residual(ctmc, &pi) > accept {
        return dense_solve(ctmc);
    }
    pi
}

/// Max relative balance-equation residual of a candidate stationary
/// vector: `max_i |inflow_i − π_i·exit_i| / (π_i·exit_i)`.
fn max_rel_residual(ctmc: &Ctmc, pi: &[f64]) -> f64 {
    let incoming = ctmc.incoming();
    let mut worst = 0.0f64;
    for i in 0..ctmc.num_states() {
        let inflow: f64 = incoming
            .row(i as u32)
            .iter()
            .map(|&(r, j)| r * pi[j as usize])
            .sum();
        let hold = pi[i] * ctmc.exit_rate(i as u32);
        let denom = hold.abs().max(inflow.abs()).max(1e-300);
        worst = worst.max((inflow - hold).abs() / denom);
    }
    worst
}

/// Exact solve of the global balance equations by the
/// Grassmann–Taksar–Heyman (GTH) state-elimination algorithm.
///
/// GTH never forms the diagonal and never subtracts: eliminating the
/// highest-numbered state redistributes its rates over the survivors
/// (the censored chain), so every quantity stays a sum of nonnegative
/// products and each `π_i` comes out with small *entrywise relative*
/// error — independent of stiffness or near-decomposability, exactly
/// where pivoted elimination on `Q^T` loses digits to cancellation.
/// Dependability chains are routinely stiff (1e-8 failure rates beside
/// 1e-1 repair rates), which is why this is the exact kernel.
///
/// GTH assumes irreducibility, so the solve is restricted to the first
/// bottom strongly-connected class reachable from the initial state —
/// which for a reducible chain is also where the process ends up, so
/// transient states correctly get zero mass. Irreducible chains (every
/// Arcade model with repair) have one class covering every state.
fn dense_solve(ctmc: &Ctmc) -> Vec<f64> {
    let n = ctmc.num_states();
    let class = reachable_bottom_class(ctmc);
    let m = class.len();
    // Map full state ids to class-local indices.
    let mut local = vec![usize::MAX; n];
    for (i, &s) in class.iter().enumerate() {
        local[s as usize] = i;
    }
    // Off-diagonal rate matrix of the class; self-loops are dropped
    // (they do not affect the stationary distribution). A bottom class
    // has no outgoing edges, so every transition stays inside it.
    let mut q = vec![0.0f64; m * m];
    for (i, &s) in class.iter().enumerate() {
        for &(r, t) in ctmc.row(s) {
            let j = local[t as usize];
            if j != usize::MAX && j != i {
                q[i * m + j] += r;
            }
        }
    }
    // Eliminate states m-1 .. 1: fold state k's rates into the censored
    // chain on {0, .., k-1}.
    for k in (1..m).rev() {
        let out: f64 = (0..k).map(|j| q[k * m + j]).sum();
        if out <= 0.0 {
            continue; // defensive: cannot happen inside one SCC
        }
        for i in 0..k {
            let f = q[i * m + k] / out;
            if f == 0.0 {
                continue;
            }
            for j in 0..k {
                if j != i {
                    q[i * m + j] += f * q[k * m + j];
                }
            }
        }
    }
    // Back-accumulate the (unnormalized) stationary weights.
    let mut x = vec![0.0f64; m];
    x[0] = 1.0;
    for k in 1..m {
        let out: f64 = (0..k).map(|j| q[k * m + j]).sum();
        let inflow: f64 = (0..k).map(|i| x[i] * q[i * m + k]).sum();
        x[k] = if out > 0.0 { inflow / out } else { 0.0 };
    }
    let total: f64 = x.iter().sum();
    let mut pi = vec![0.0f64; n];
    if total > 0.0 {
        for (i, &s) in class.iter().enumerate() {
            pi[s as usize] = x[i] / total;
        }
    }
    pi
}

/// The first bottom strongly-connected class reachable from the chain's
/// initial state (every SCC without outgoing edges is "bottom"; at least
/// one is always reachable). States are returned in ascending order.
/// For an irreducible chain this is simply all states.
fn reachable_bottom_class(ctmc: &Ctmc) -> Vec<u32> {
    let n = ctmc.num_states();
    // Tarjan's SCC with an explicit stack (chains can be deep).
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut comp = vec![u32::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut ncomps = 0u32;
    for root in 0..n as u32 {
        if index[root as usize] != u32::MAX {
            continue;
        }
        let mut frames: Vec<(u32, usize)> = vec![(root, 0)];
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        while let Some(&(v, ei)) = frames.last() {
            let row = ctmc.row(v);
            if ei < row.len() {
                frames.last_mut().expect("nonempty").1 += 1;
                let w = row[ei].1;
                if index[w as usize] == u32::MAX {
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                if low[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = ncomps;
                        if w == v {
                            break;
                        }
                    }
                    ncomps += 1;
                }
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                }
            }
        }
    }
    // A component with an edge into another component is not bottom.
    let mut bottom = vec![true; ncomps as usize];
    for s in 0..n as u32 {
        for &(_, t) in ctmc.row(s) {
            if comp[s as usize] != comp[t as usize] {
                bottom[comp[s as usize] as usize] = false;
            }
        }
    }
    // BFS from the initial state; the first bottom component reached
    // wins (deterministic, and matches where the process actually goes).
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let init = ctmc.initial();
    seen[init as usize] = true;
    queue.push_back(init);
    let mut chosen = comp[init as usize];
    while let Some(s) = queue.pop_front() {
        if bottom[comp[s as usize] as usize] {
            chosen = comp[s as usize];
            break;
        }
        for &(_, t) in ctmc.row(s) {
            if !seen[t as usize] {
                seen[t as usize] = true;
                queue.push_back(t);
            }
        }
    }
    (0..n as u32)
        .filter(|&s| comp[s as usize] == chosen)
        .collect()
}

/// How a budgeted Gauss–Seidel run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GsOutcome {
    /// The geometric-tail bound certified the remaining error within
    /// tolerance (or an exact fixpoint was hit).
    Converged,
    /// The sweep budget ran out first.
    Exhausted,
    /// Progress stalled: less than 2× residual improvement across a
    /// 64-sweep window while still above tolerance.
    Stalled,
}

/// Gauss–Seidel with the default uniform start; falls back to the Krylov
/// kernel (with the remaining sweep budget) when progress stalls.
fn gauss_seidel(ctmc: &Ctmc, opts: &SolverOptions) -> Vec<f64> {
    let n = ctmc.num_states();
    let (pi, sweeps, outcome) =
        gauss_seidel_run(ctmc, opts, vec![1.0 / n as f64; n], opts.max_sweeps);
    if outcome == GsOutcome::Stalled && sweeps < opts.max_sweeps {
        krylov_from(ctmc, opts, pi, opts.max_sweeps - sweeps)
    } else {
        pi
    }
}

/// Budgeted Gauss–Seidel iteration on `π_i · exit_i = Σ_j π_j q_{ji}`
/// from the given start, sweeping the transposed CSR adjacency so each
/// state's inflow is one contiguous slice. Returns the iterate, the
/// sweeps used, and how the run ended.
///
/// Convergence is certified with a geometric tail bound, not the raw
/// sweep-to-sweep change: on a slowly contracting chain (`ρ` near 1) the
/// per-sweep change can sit below tolerance while the iterate is still
/// far from the fixpoint — the differential fuzzer caught exactly that
/// as a 1e-4 relative steady-state error passing a 1e-13 "tolerance".
/// The contraction is estimated from consecutive sweep changes and the
/// projected remaining drift `Δ·ρ/(1−ρ)` must be within tolerance; a
/// chain that contracts too slowly to certify trips the stall detector
/// instead and is handed to the Krylov kernel.
fn gauss_seidel_run(
    ctmc: &Ctmc,
    opts: &SolverOptions,
    mut pi: Vec<f64>,
    budget: usize,
) -> (Vec<f64>, usize, GsOutcome) {
    /// Sweeps between stall checks (and the minimum run before one).
    const STALL_WINDOW: usize = 64;
    let n = ctmc.num_states();
    let incoming = ctmc.incoming();
    let exit = ctmc.exit_rates();
    let mut window_rel = f64::INFINITY;
    let mut prev_rel = f64::INFINITY;
    for sweep in 1..=budget {
        // Cooperative cancellation once per sweep (a sweep is one pass
        // over all transitions, on the calling thread).
        ioimc::budget::checkpoint();
        let mut max_rel = 0.0f64;
        for i in 0..n {
            if exit[i] <= 0.0 {
                continue; // absorbing state keeps its mass (not expected here)
            }
            let inflow: f64 = incoming
                .row(i as u32)
                .iter()
                .map(|&(r, j)| r * pi[j as usize])
                .sum();
            let new = inflow / exit[i];
            let denom = new.abs().max(1e-300);
            max_rel = max_rel.max((new - pi[i]).abs() / denom);
            pi[i] = new;
        }
        let total: f64 = pi.iter().sum();
        if total > 0.0 {
            for v in &mut pi {
                *v /= total;
            }
        }
        if max_rel == 0.0 {
            return (pi, sweep, GsOutcome::Converged); // exact fixpoint
        }
        if prev_rel.is_finite() && max_rel < prev_rel {
            let rho = max_rel / prev_rel;
            if max_rel * rho / (1.0 - rho) <= opts.tol {
                return (pi, sweep, GsOutcome::Converged);
            }
        }
        prev_rel = max_rel;
        if sweep % STALL_WINDOW == 0 {
            if max_rel > window_rel * 0.5 {
                return (pi, sweep, GsOutcome::Stalled);
            }
            window_rel = max_rel;
        }
    }
    (pi, budget, GsOutcome::Exhausted)
}

/// Krylov dimension per Arnoldi restart.
const KRYLOV_DIM: usize = 25;

/// Restarted Arnoldi for the unit eigenvector of the uniformized DTMC
/// `P = I + Q/Λ`, starting from `x0`, with a matvec budget of `budget`
/// (one matvec ≈ one sweep of work). Ends with a short Gauss–Seidel
/// polish for full relative accuracy on stiff chains.
fn krylov_from(ctmc: &Ctmc, opts: &SolverOptions, x0: Vec<f64>, budget: usize) -> Vec<f64> {
    let n = ctmc.num_states();
    let max_exit = ctmc.max_exit_rate();
    if max_exit == 0.0 {
        return ctmc.initial_distribution();
    }
    let unif = max_exit * UNIF_HEADROOM;
    // The uniformized DTMC in prescaled gather form — the exact arrays
    // the transient engine steps with, so the matvec (the budgeted hot
    // loop) pays no per-transition division and cannot drift from the
    // transient kernel.
    let (stay, inc_off, inc_p, inc_src) = prescaled_transpose(ctmc, unif);
    // y = x Pᵀ over the transposed adjacency (the same operator the power
    // iteration applies).
    let matvec = |x: &[f64], y: &mut [f64]| {
        for (i, yi) in y.iter_mut().enumerate() {
            let (lo, hi) = (inc_off[i] as usize, inc_off[i + 1] as usize);
            let mut acc = x[i] * stay[i];
            for (&p, &j) in inc_p[lo..hi].iter().zip(&inc_src[lo..hi]) {
                acc += p * x[j as usize];
            }
            *yi = acc;
        }
    };

    let m = KRYLOV_DIM.min(n.saturating_sub(1)).max(1);
    let mut x = x0;
    normalize_l1(&mut x);
    let mut used = 0usize;
    while used < budget {
        ioimc::budget::checkpoint();
        // Arnoldi with modified Gram–Schmidt.
        let norm0 = l2_norm(&x);
        if norm0 <= 0.0 || !norm0.is_finite() {
            break;
        }
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        basis.push(x.iter().map(|a| a / norm0).collect());
        let mut h = vec![0.0f64; (m + 1) * m];
        let mut m_eff = m;
        for j in 0..m {
            let mut w = vec![0.0f64; n];
            matvec(&basis[j], &mut w);
            used += 1;
            for i in 0..=j {
                let hij: f64 = basis[i].iter().zip(&w).map(|(a, b)| a * b).sum();
                h[i * m + j] = hij;
                for (wk, vk) in w.iter_mut().zip(&basis[i]) {
                    *wk -= hij * vk;
                }
            }
            let beta = l2_norm(&w);
            h[(j + 1) * m + j] = beta;
            if beta < 1e-14 || used >= budget {
                m_eff = j + 1; // invariant subspace found (or budget spent)
                break;
            }
            for wk in &mut w {
                *wk /= beta;
            }
            basis.push(w);
        }
        // Ritz vector for the known eigenvalue 1: inverse iteration on
        // the projected (H − I), then lift back through the basis.
        let y = unit_eigvec_of_hessenberg(&h, m, m_eff);
        let mut xn = vec![0.0f64; n];
        for (yj, vj) in y.iter().zip(&basis) {
            if *yj != 0.0 {
                for (xk, vk) in xn.iter_mut().zip(vj) {
                    *xk += yj * vk;
                }
            }
        }
        // Orient along the (nonnegative) Perron direction and clean the
        // rounding dust.
        if xn.iter().sum::<f64>() < 0.0 {
            for a in &mut xn {
                *a = -*a;
            }
        }
        for a in &mut xn {
            if *a < 0.0 {
                *a = 0.0;
            }
        }
        normalize_l1(&mut xn);
        let mut max_rel = 0.0f64;
        for (a, b) in xn.iter().zip(&x) {
            let denom = a.abs().max(1e-300);
            max_rel = max_rel.max((a - b).abs() / denom);
        }
        x = xn;
        if max_rel < opts.tol {
            break;
        }
    }
    // Polish: Gauss–Seidel from the Krylov iterate recovers relative
    // accuracy on components far below the probability scale.
    let (polished, _, _) = gauss_seidel_run(ctmc, opts, x, 64.min(opts.max_sweeps.max(1)));
    polished
}

/// The (approximate) null vector of `H_eff − I` for the leading
/// `m_eff × m_eff` block of the row-major `(m+1) × m` Hessenberg array, by
/// LU-factored inverse iteration with the exact shift.
fn unit_eigvec_of_hessenberg(h: &[f64], m: usize, m_eff: usize) -> Vec<f64> {
    let k = m_eff;
    let mut a = vec![0.0f64; k * k];
    let mut scale = 0.0f64;
    for r in 0..k {
        for c in 0..k {
            let v = h[r * m + c] - if r == c { 1.0 } else { 0.0 };
            a[r * k + c] = v;
            scale = scale.max(v.abs());
        }
    }
    if scale == 0.0 {
        // H == I: every basis vector is an eigenvector; keep the first.
        let mut y = vec![0.0; k];
        y[0] = 1.0;
        return y;
    }
    // LU with partial pivoting; near-singular pivots are clamped — the
    // matrix *is* (numerically) singular in the direction we want, and
    // the clamp is what makes inverse iteration explode toward it.
    let floor = scale * 1e-18;
    let mut piv: Vec<usize> = (0..k).collect();
    for col in 0..k {
        let p = (col..k)
            .max_by(|&i, &j| a[i * k + col].abs().total_cmp(&a[j * k + col].abs()))
            .expect("non-empty range");
        if p != col {
            for c in 0..k {
                a.swap(col * k + c, p * k + c);
            }
            piv.swap(col, p);
        }
        if a[col * k + col].abs() < floor {
            a[col * k + col] = if a[col * k + col] < 0.0 {
                -floor
            } else {
                floor
            };
        }
        let d = a[col * k + col];
        for row in col + 1..k {
            let f = a[row * k + col] / d;
            a[row * k + col] = f;
            for c in col + 1..k {
                a[row * k + c] -= f * a[col * k + c];
            }
        }
    }
    let solve = |a: &[f64], piv: &[usize], b: &[f64]| -> Vec<f64> {
        let mut y: Vec<f64> = piv.iter().map(|&p| b[p]).collect();
        for row in 1..k {
            for c in 0..row {
                y[row] -= a[row * k + c] * y[c];
            }
        }
        for row in (0..k).rev() {
            for c in row + 1..k {
                y[row] -= a[row * k + c] * y[c];
            }
            y[row] /= a[row * k + row];
        }
        y
    };
    let mut y = vec![1.0 / (k as f64).sqrt(); k];
    for _ in 0..3 {
        let z = solve(&a, &piv, &y);
        let nz = l2_norm(&z);
        if !(nz > 0.0 && nz.is_finite()) {
            break;
        }
        y = z.into_iter().map(|v| v / nz).collect();
    }
    y
}

fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|a| a * a).sum::<f64>().sqrt()
}

fn normalize_l1(v: &mut [f64]) {
    let total: f64 = v.iter().sum();
    if total > 0.0 {
        for a in v {
            *a /= total;
        }
    }
}

/// Power iteration on the uniformized DTMC: `π ← π (I + Q/Λ)` with
/// `Λ = UNIF_HEADROOM · max exit rate`, over the transposed CSR adjacency.
/// Converges for any irreducible chain (the head-room keeps the DTMC
/// aperiodic) but only at the subdominant-eigenvalue rate — prefer
/// Gauss–Seidel except as a cross-check.
fn power_iteration(ctmc: &Ctmc, opts: &SolverOptions) -> Vec<f64> {
    let n = ctmc.num_states();
    let max_exit = ctmc.max_exit_rate();
    if max_exit == 0.0 {
        return ctmc.initial_distribution();
    }
    let unif = max_exit * UNIF_HEADROOM;
    let incoming = ctmc.incoming();
    let stay: Vec<f64> = (0..n as u32)
        .map(|s| 1.0 - ctmc.exit_rate(s) / unif)
        .collect();
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let mut prev_rel = f64::INFINITY;
    for _ in 0..opts.max_sweeps {
        ioimc::budget::checkpoint();
        let mut max_rel = 0.0f64;
        for i in 0..n {
            let inflow: f64 = incoming
                .row(i as u32)
                .iter()
                .map(|&(r, j)| r * pi[j as usize])
                .sum();
            next[i] = pi[i] * stay[i] + inflow / unif;
        }
        let total: f64 = next.iter().sum();
        if total > 0.0 {
            for v in &mut next {
                *v /= total;
            }
        }
        for i in 0..n {
            let denom = next[i].abs().max(1e-300);
            max_rel = max_rel.max((next[i] - pi[i]).abs() / denom);
        }
        std::mem::swap(&mut pi, &mut next);
        // Same geometric-tail certificate as the Gauss–Seidel kernel:
        // the raw step change alone under-reports the remaining error
        // when the subdominant eigenvalue is close to 1.
        if max_rel == 0.0 {
            break;
        }
        if prev_rel.is_finite() && max_rel < prev_rel {
            let rho = max_rel / prev_rel;
            if max_rel * rho / (1.0 - rho) <= opts.tol {
                break;
            }
        }
        prev_rel = max_rel;
    }
    pi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn birth_death(lambda: f64, mu: f64, k: usize) -> Ctmc {
        let rows: Vec<Vec<(f64, u32)>> = (0..=k)
            .map(|i| {
                let mut row = Vec::new();
                if i < k {
                    row.push((lambda, (i + 1) as u32));
                }
                if i > 0 {
                    row.push((mu, (i - 1) as u32));
                }
                row
            })
            .collect();
        Ctmc::new(rows, vec![0; k + 1], 0).unwrap()
    }

    /// Two-state machine: π_up = µ/(λ+µ).
    #[test]
    fn two_state_machine() {
        let (l, m) = (0.01, 2.0);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = steady_state(&c);
        assert!((pi[0] - m / (l + m)).abs() < 1e-12);
        assert!((pi[1] - l / (l + m)).abs() < 1e-12);
    }

    /// M/M/1/K queue: π_k ∝ ρ^k.
    #[test]
    fn mm1k_queue() {
        let (lambda, mu, k) = (0.7, 1.0, 6usize);
        let c = birth_death(lambda, mu, k);
        let pi = steady_state(&c);
        let rho: f64 = lambda / mu;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for (i, &p) in pi.iter().enumerate() {
            let expected = rho.powi(i as i32) / norm;
            assert!((p - expected).abs() < 1e-12, "state {i}: {p} vs {expected}");
        }
    }

    /// A stiff repairable system (rates spanning 7 orders of magnitude).
    #[test]
    fn stiff_chain() {
        let (l, m) = (1e-7, 0.1);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = steady_state(&c);
        let expected = l / (l + m);
        assert!((pi[1] - expected).abs() / expected < 1e-10);
    }

    /// All sparse paths agree with the dense path on the same chain.
    #[test]
    fn iterative_paths_match_dense() {
        let c = birth_death(0.3, 1.0, 9);
        let dense = steady_state(&c);
        let gs = steady_state_with(&c, &SolverOptions::default().with_dense_limit(0));
        let pow = steady_state_with(
            &c,
            &SolverOptions::default()
                .with_dense_limit(0)
                .with_method(IterativeMethod::Power),
        );
        let kry = steady_state_with(
            &c,
            &SolverOptions::default()
                .with_dense_limit(0)
                .with_method(IterativeMethod::Krylov),
        );
        for i in 0..c.num_states() {
            assert!((dense[i] - gs[i]).abs() < 1e-10, "GS state {i}");
            assert!((dense[i] - pow[i]).abs() < 1e-9, "power state {i}");
            assert!((dense[i] - kry[i]).abs() < 1e-9, "Krylov state {i}");
        }
    }

    /// The Krylov kernel (with its Gauss–Seidel polish) resolves stiff
    /// mass to full relative accuracy, like the plain sparse path.
    #[test]
    fn krylov_resolves_stiff_mass() {
        let (l, m) = (1e-7, 0.1);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = steady_state_with(
            &c,
            &SolverOptions::default()
                .with_dense_limit(0)
                .with_method(IterativeMethod::Krylov),
        );
        let expected = l / (l + m);
        assert!((pi[1] - expected).abs() / expected < 1e-9, "{}", pi[1]);
    }

    /// Krylov handles a chain larger than its basis dimension (several
    /// restarts) and still matches the dense answer.
    #[test]
    fn krylov_restarts_on_long_chain() {
        let c = birth_death(0.9, 1.0, 120);
        let dense = steady_state_with(&c, &SolverOptions::default().with_dense_limit(1000));
        let kry = steady_state_with(
            &c,
            &SolverOptions::default()
                .with_dense_limit(0)
                .with_method(IterativeMethod::Krylov),
        );
        for i in 0..c.num_states() {
            assert!(
                (dense[i] - kry[i]).abs() < 1e-9,
                "state {i}: {} vs {}",
                dense[i],
                kry[i]
            );
        }
    }

    /// A stiff chain forced down the sparse path still gets full relative
    /// accuracy (the Gauss–Seidel sweep works in balance-equation space,
    /// not probability space, so the 1e-8 mass is resolved).
    #[test]
    fn sparse_path_resolves_stiff_mass() {
        let (l, m) = (1e-7, 0.1);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = steady_state_with(&c, &SolverOptions::default().with_dense_limit(0));
        let expected = l / (l + m);
        assert!((pi[1] - expected).abs() / expected < 1e-9);
    }

    /// The sweep cap is honored without sacrificing the answer: a
    /// one-sweep budget cannot converge, the residual gate notices, and
    /// the small chain is rescued by the exact solver.
    #[test]
    fn sweep_cap_rescued_by_residual_gate() {
        let c = birth_death(0.7, 1.0, 12);
        let capped = steady_state_with(
            &c,
            &SolverOptions::default()
                .with_dense_limit(0)
                .with_max_sweeps(1),
        );
        let full = steady_state(&c);
        for (i, (a, b)) in capped.iter().zip(&full).enumerate() {
            assert!((a - b).abs() < 1e-12, "state {i}: {a} vs {b}");
        }
    }

    /// Beyond the rescue limit an exhausted budget returns the current
    /// (normalized, unconverged) iterate rather than spinning or paying
    /// an O(n³) rescue.
    #[test]
    fn sweep_cap_returns_iterate_beyond_rescue_limit() {
        let c = birth_death(0.7, 1.0, EXACT_RESCUE_LIMIT);
        let capped = steady_state_with(
            &c,
            &SolverOptions::default()
                .with_dense_limit(0)
                .with_max_sweeps(1),
        );
        let full = steady_state_with(
            &c,
            &SolverOptions::default()
                .with_dense_limit(0)
                .with_max_sweeps(200_000),
        );
        let diff: f64 = capped
            .iter()
            .zip(&full)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(diff > 1e-6, "one sweep should not already be converged");
        let total: f64 = capped.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "iterate is still normalized");
    }

    /// Regression: the nearly-decomposable 6-state chain (from fuzz seed
    /// 9587389500486994162) on which the Gauss–Seidel → Krylov path
    /// stagnated and declared a 1e-4-wrong answer converged. The
    /// residual gate must reject the stagnated iterate and the GTH
    /// kernel must agree with the iterative path to full tolerance.
    #[test]
    fn nearly_decomposable_chain_is_rescued() {
        let (slow, fast) = (0.00134, 13.4);
        let rows = vec![
            vec![(slow, 1), (fast, 2)],
            vec![(slow, 3), (fast, 4)],
            vec![(slow, 0), (slow, 4)],
            vec![(slow, 0), (fast, 5)],
            vec![(slow, 1)],
            vec![(slow, 3)],
        ];
        let c = Ctmc::new(rows, vec![0, 0, 0, 0, 1, 1], 0).unwrap();
        let exact = dense_solve(&c);
        assert!(
            max_rel_residual(&c, &exact) < 1e-12,
            "GTH residual {}",
            max_rel_residual(&c, &exact)
        );
        let mut opts = SolverOptions::default().with_dense_limit(0);
        opts.tol = 1e-13;
        opts.max_sweeps = 50_000;
        let iterative = steady_state_with(&c, &opts);
        let down_exact = exact[4] + exact[5];
        let down_iter = iterative[4] + iterative[5];
        assert!(
            (down_exact - down_iter).abs() / down_exact < 1e-9,
            "{down_exact} vs {down_iter}"
        );
    }

    #[test]
    fn single_state_is_trivial() {
        let c = Ctmc::new(vec![vec![]], vec![0], 0).unwrap();
        assert_eq!(steady_state(&c), vec![1.0]);
    }
}
