//! Steady-state distribution.
//!
//! Solves the global balance equations `πQ = 0`, `Σπ = 1`. Chains up to
//! [`SolverOptions::dense_limit`] use dense Gaussian elimination with
//! partial pivoting (exact up to rounding, robust for the stiff chains
//! dependability models produce — failure rates of 1e-8 next to repair
//! rates of 1e-1). Larger chains use the configured sparse iterative
//! kernel over the transposed CSR adjacency ([`crate::chain::Incoming`]):
//! Gauss–Seidel sweeps by default, power iteration on the uniformized
//! DTMC as an alternative.

use crate::chain::Ctmc;
use crate::solver::{IterativeMethod, SolverOptions};

/// Computes the steady-state distribution of an irreducible CTMC with
/// default [`SolverOptions`].
///
/// For reducible chains the result is the stationary distribution reachable
/// from the chain's structure and should not be relied on; Arcade models
/// with repair are irreducible by construction.
pub fn steady_state(ctmc: &Ctmc) -> Vec<f64> {
    steady_state_with(ctmc, &SolverOptions::default())
}

/// [`steady_state`] with explicit solver configuration.
pub fn steady_state_with(ctmc: &Ctmc, opts: &SolverOptions) -> Vec<f64> {
    if ctmc.num_states() == 1 {
        return vec![1.0];
    }
    if ctmc.num_states() <= opts.dense_limit {
        dense_solve(ctmc)
    } else {
        match opts.method {
            IterativeMethod::GaussSeidel => gauss_seidel(ctmc, opts),
            IterativeMethod::Power => power_iteration(ctmc, opts),
        }
    }
}

/// Dense solve of `Q^T π = 0` with the last equation replaced by the
/// normalization constraint.
fn dense_solve(ctmc: &Ctmc) -> Vec<f64> {
    let n = ctmc.num_states();
    // Build A = Q^T (column j of Q: rates out of j; diagonal -exit).
    let mut a = vec![0.0f64; n * n];
    for s in 0..n as u32 {
        for &(r, t) in ctmc.row(s) {
            // Q[s][t] = r contributes to A[t][s] (transposed)
            a[t as usize * n + s as usize] += r;
        }
        a[s as usize * n + s as usize] -= ctmc.exit_rate(s);
    }
    // Replace last row with normalization Σπ = 1.
    for j in 0..n {
        a[(n - 1) * n + j] = 1.0;
    }
    let mut b = vec![0.0f64; n];
    b[n - 1] = 1.0;

    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let pivot_row = (col..n)
            .max_by(|&i, &j| a[i * n + col].abs().total_cmp(&a[j * n + col].abs()))
            .expect("non-empty range");
        if a[pivot_row * n + col].abs() < f64::MIN_POSITIVE {
            continue; // singular direction; normalization row fixes scale
        }
        if pivot_row != col {
            for j in 0..n {
                a.swap(col * n + j, pivot_row * n + j);
            }
            b.swap(col, pivot_row);
        }
        let pivot = a[col * n + col];
        for row in col + 1..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[row * n + j] -= factor * a[col * n + j];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut rhs = b[row];
        for j in row + 1..n {
            rhs -= a[row * n + j] * x[j];
        }
        let d = a[row * n + row];
        x[row] = if d.abs() < f64::MIN_POSITIVE {
            0.0
        } else {
            rhs / d
        };
    }
    // Clean tiny negatives from rounding and renormalize.
    for v in &mut x {
        if *v < 0.0 && *v > -1e-9 {
            *v = 0.0;
        }
    }
    let total: f64 = x.iter().sum();
    if total > 0.0 {
        for v in &mut x {
            *v /= total;
        }
    }
    x
}

/// Gauss–Seidel iteration on `π_i · exit_i = Σ_j π_j q_{ji}`, sweeping
/// the transposed CSR adjacency so each state's inflow is one contiguous
/// slice.
fn gauss_seidel(ctmc: &Ctmc, opts: &SolverOptions) -> Vec<f64> {
    let n = ctmc.num_states();
    let incoming = ctmc.incoming();
    let exit = ctmc.exit_rates();
    let mut pi = vec![1.0 / n as f64; n];
    for _ in 0..opts.max_sweeps {
        let mut max_rel = 0.0f64;
        for i in 0..n {
            if exit[i] <= 0.0 {
                continue; // absorbing state keeps its mass (not expected here)
            }
            let inflow: f64 = incoming
                .row(i as u32)
                .iter()
                .map(|&(r, j)| r * pi[j as usize])
                .sum();
            let new = inflow / exit[i];
            let denom = new.abs().max(1e-300);
            max_rel = max_rel.max((new - pi[i]).abs() / denom);
            pi[i] = new;
        }
        let total: f64 = pi.iter().sum();
        if total > 0.0 {
            for v in &mut pi {
                *v /= total;
            }
        }
        if max_rel < opts.tol {
            break;
        }
    }
    pi
}

/// Power iteration on the uniformized DTMC: `π ← π (I + Q/Λ)` with
/// `Λ = 1.02 · max exit rate`, over the transposed CSR adjacency.
/// Converges for any irreducible chain (the head-room keeps the DTMC
/// aperiodic) but only at the subdominant-eigenvalue rate — prefer
/// Gauss–Seidel except as a cross-check.
fn power_iteration(ctmc: &Ctmc, opts: &SolverOptions) -> Vec<f64> {
    let n = ctmc.num_states();
    let max_exit = ctmc.max_exit_rate();
    if max_exit == 0.0 {
        return ctmc.initial_distribution();
    }
    let unif = max_exit * 1.02;
    let incoming = ctmc.incoming();
    let stay: Vec<f64> = (0..n as u32)
        .map(|s| 1.0 - ctmc.exit_rate(s) / unif)
        .collect();
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..opts.max_sweeps {
        let mut max_rel = 0.0f64;
        for i in 0..n {
            let inflow: f64 = incoming
                .row(i as u32)
                .iter()
                .map(|&(r, j)| r * pi[j as usize])
                .sum();
            next[i] = pi[i] * stay[i] + inflow / unif;
        }
        let total: f64 = next.iter().sum();
        if total > 0.0 {
            for v in &mut next {
                *v /= total;
            }
        }
        for i in 0..n {
            let denom = next[i].abs().max(1e-300);
            max_rel = max_rel.max((next[i] - pi[i]).abs() / denom);
        }
        std::mem::swap(&mut pi, &mut next);
        if max_rel < opts.tol {
            break;
        }
    }
    pi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn birth_death(lambda: f64, mu: f64, k: usize) -> Ctmc {
        let rows: Vec<Vec<(f64, u32)>> = (0..=k)
            .map(|i| {
                let mut row = Vec::new();
                if i < k {
                    row.push((lambda, (i + 1) as u32));
                }
                if i > 0 {
                    row.push((mu, (i - 1) as u32));
                }
                row
            })
            .collect();
        Ctmc::new(rows, vec![0; k + 1], 0).unwrap()
    }

    /// Two-state machine: π_up = µ/(λ+µ).
    #[test]
    fn two_state_machine() {
        let (l, m) = (0.01, 2.0);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = steady_state(&c);
        assert!((pi[0] - m / (l + m)).abs() < 1e-12);
        assert!((pi[1] - l / (l + m)).abs() < 1e-12);
    }

    /// M/M/1/K queue: π_k ∝ ρ^k.
    #[test]
    fn mm1k_queue() {
        let (lambda, mu, k) = (0.7, 1.0, 6usize);
        let c = birth_death(lambda, mu, k);
        let pi = steady_state(&c);
        let rho: f64 = lambda / mu;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for (i, &p) in pi.iter().enumerate() {
            let expected = rho.powi(i as i32) / norm;
            assert!((p - expected).abs() < 1e-12, "state {i}: {p} vs {expected}");
        }
    }

    /// A stiff repairable system (rates spanning 7 orders of magnitude).
    #[test]
    fn stiff_chain() {
        let (l, m) = (1e-7, 0.1);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = steady_state(&c);
        let expected = l / (l + m);
        assert!((pi[1] - expected).abs() / expected < 1e-10);
    }

    /// Both sparse paths agree with the dense path on the same chain.
    #[test]
    fn iterative_paths_match_dense() {
        let c = birth_death(0.3, 1.0, 9);
        let dense = steady_state(&c);
        let gs = steady_state_with(&c, &SolverOptions::default().with_dense_limit(0));
        let pow = steady_state_with(
            &c,
            &SolverOptions::default()
                .with_dense_limit(0)
                .with_method(IterativeMethod::Power),
        );
        for i in 0..c.num_states() {
            assert!((dense[i] - gs[i]).abs() < 1e-10, "GS state {i}");
            assert!((dense[i] - pow[i]).abs() < 1e-9, "power state {i}");
        }
    }

    /// A stiff chain forced down the sparse path still gets full relative
    /// accuracy (the Gauss–Seidel sweep works in balance-equation space,
    /// not probability space, so the 1e-8 mass is resolved).
    #[test]
    fn sparse_path_resolves_stiff_mass() {
        let (l, m) = (1e-7, 0.1);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = steady_state_with(&c, &SolverOptions::default().with_dense_limit(0));
        let expected = l / (l + m);
        assert!((pi[1] - expected).abs() / expected < 1e-9);
    }

    /// The sweep cap is honored: one sweep from the uniform start is not
    /// converged, and the solver returns without spinning.
    #[test]
    fn sweep_cap_returns_current_iterate() {
        let c = birth_death(0.7, 1.0, 12);
        let capped = steady_state_with(
            &c,
            &SolverOptions::default()
                .with_dense_limit(0)
                .with_max_sweeps(1),
        );
        let full = steady_state(&c);
        let diff: f64 = capped
            .iter()
            .zip(&full)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(diff > 1e-6, "one sweep should not already be converged");
        let total: f64 = capped.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "iterate is still normalized");
    }

    #[test]
    fn single_state_is_trivial() {
        let c = Ctmc::new(vec![vec![]], vec![0], 0).unwrap();
        assert_eq!(steady_state(&c), vec![1.0]);
    }
}
