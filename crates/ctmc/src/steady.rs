//! Steady-state distribution.
//!
//! Solves the global balance equations `πQ = 0`, `Σπ = 1`. Chains up to
//! [`SolverOptions::dense_limit`] use dense Gaussian elimination with
//! partial pivoting (exact up to rounding, robust for the stiff chains
//! dependability models produce — failure rates of 1e-8 next to repair
//! rates of 1e-1). Larger chains use the configured sparse iterative
//! kernel over the transposed CSR adjacency ([`crate::chain::Incoming`]):
//! Gauss–Seidel sweeps by default, power iteration on the uniformized
//! DTMC or restarted Arnoldi (Krylov) as alternatives.
//!
//! # The Krylov kernel and the Gauss–Seidel stall fallback
//!
//! [`IterativeMethod::Krylov`] runs restarted Arnoldi on the uniformized
//! DTMC `P = I + Q/Λ`: per restart it builds a small orthonormal Krylov
//! basis, extracts the Ritz vector of the (known) unit eigenvalue by
//! inverse iteration on the projected Hessenberg matrix, and restarts
//! from it. A short Gauss–Seidel polish afterwards restores full
//! *relative* accuracy on stiff chains (Arnoldi works in probability
//! space, where 1e-8 components carry no weight). The default
//! Gauss–Seidel kernel watches its own sweep-to-sweep progress and falls
//! back to this Krylov kernel (with the remaining sweep budget) when it
//! stalls — less than 2× residual improvement across a 64-sweep window
//! while still far from tolerance — which happens on nearly-decoupled
//! chains where local propagation mixes too slowly.

use crate::chain::Ctmc;
use crate::solver::{IterativeMethod, SolverOptions, UNIF_HEADROOM};
use crate::transient::prescaled_transpose;

/// Computes the steady-state distribution of an irreducible CTMC with
/// default [`SolverOptions`].
///
/// For reducible chains the result is the stationary distribution reachable
/// from the chain's structure and should not be relied on; Arcade models
/// with repair are irreducible by construction.
pub fn steady_state(ctmc: &Ctmc) -> Vec<f64> {
    steady_state_with(ctmc, &SolverOptions::default())
}

/// [`steady_state`] with explicit solver configuration.
pub fn steady_state_with(ctmc: &Ctmc, opts: &SolverOptions) -> Vec<f64> {
    if ctmc.num_states() == 1 {
        return vec![1.0];
    }
    if ctmc.num_states() <= opts.dense_limit {
        dense_solve(ctmc)
    } else {
        match opts.method {
            IterativeMethod::GaussSeidel => gauss_seidel(ctmc, opts),
            IterativeMethod::Power => power_iteration(ctmc, opts),
            IterativeMethod::Krylov => {
                let n = ctmc.num_states();
                krylov_from(ctmc, opts, vec![1.0 / n as f64; n], opts.max_sweeps)
            }
        }
    }
}

/// Dense solve of `Q^T π = 0` with the last equation replaced by the
/// normalization constraint.
fn dense_solve(ctmc: &Ctmc) -> Vec<f64> {
    let n = ctmc.num_states();
    // Build A = Q^T (column j of Q: rates out of j; diagonal -exit).
    let mut a = vec![0.0f64; n * n];
    for s in 0..n as u32 {
        for &(r, t) in ctmc.row(s) {
            // Q[s][t] = r contributes to A[t][s] (transposed)
            a[t as usize * n + s as usize] += r;
        }
        a[s as usize * n + s as usize] -= ctmc.exit_rate(s);
    }
    // Replace last row with normalization Σπ = 1.
    for j in 0..n {
        a[(n - 1) * n + j] = 1.0;
    }
    let mut b = vec![0.0f64; n];
    b[n - 1] = 1.0;

    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let pivot_row = (col..n)
            .max_by(|&i, &j| a[i * n + col].abs().total_cmp(&a[j * n + col].abs()))
            .expect("non-empty range");
        if a[pivot_row * n + col].abs() < f64::MIN_POSITIVE {
            continue; // singular direction; normalization row fixes scale
        }
        if pivot_row != col {
            for j in 0..n {
                a.swap(col * n + j, pivot_row * n + j);
            }
            b.swap(col, pivot_row);
        }
        let pivot = a[col * n + col];
        for row in col + 1..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[row * n + j] -= factor * a[col * n + j];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut rhs = b[row];
        for j in row + 1..n {
            rhs -= a[row * n + j] * x[j];
        }
        let d = a[row * n + row];
        x[row] = if d.abs() < f64::MIN_POSITIVE {
            0.0
        } else {
            rhs / d
        };
    }
    // Clean tiny negatives from rounding and renormalize.
    for v in &mut x {
        if *v < 0.0 && *v > -1e-9 {
            *v = 0.0;
        }
    }
    let total: f64 = x.iter().sum();
    if total > 0.0 {
        for v in &mut x {
            *v /= total;
        }
    }
    x
}

/// How a budgeted Gauss–Seidel run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GsOutcome {
    /// The relative-change tolerance was reached.
    Converged,
    /// The sweep budget ran out first.
    Exhausted,
    /// Progress stalled: less than 2× residual improvement across a
    /// 64-sweep window while still above tolerance.
    Stalled,
}

/// Gauss–Seidel with the default uniform start; falls back to the Krylov
/// kernel (with the remaining sweep budget) when progress stalls.
fn gauss_seidel(ctmc: &Ctmc, opts: &SolverOptions) -> Vec<f64> {
    let n = ctmc.num_states();
    let (pi, sweeps, outcome) =
        gauss_seidel_run(ctmc, opts, vec![1.0 / n as f64; n], opts.max_sweeps);
    if outcome == GsOutcome::Stalled && sweeps < opts.max_sweeps {
        krylov_from(ctmc, opts, pi, opts.max_sweeps - sweeps)
    } else {
        pi
    }
}

/// Budgeted Gauss–Seidel iteration on `π_i · exit_i = Σ_j π_j q_{ji}`
/// from the given start, sweeping the transposed CSR adjacency so each
/// state's inflow is one contiguous slice. Returns the iterate, the
/// sweeps used, and how the run ended.
fn gauss_seidel_run(
    ctmc: &Ctmc,
    opts: &SolverOptions,
    mut pi: Vec<f64>,
    budget: usize,
) -> (Vec<f64>, usize, GsOutcome) {
    /// Sweeps between stall checks (and the minimum run before one).
    const STALL_WINDOW: usize = 64;
    let n = ctmc.num_states();
    let incoming = ctmc.incoming();
    let exit = ctmc.exit_rates();
    let mut window_rel = f64::INFINITY;
    for sweep in 1..=budget {
        // Cooperative cancellation once per sweep (a sweep is one pass
        // over all transitions, on the calling thread).
        ioimc::budget::checkpoint();
        let mut max_rel = 0.0f64;
        for i in 0..n {
            if exit[i] <= 0.0 {
                continue; // absorbing state keeps its mass (not expected here)
            }
            let inflow: f64 = incoming
                .row(i as u32)
                .iter()
                .map(|&(r, j)| r * pi[j as usize])
                .sum();
            let new = inflow / exit[i];
            let denom = new.abs().max(1e-300);
            max_rel = max_rel.max((new - pi[i]).abs() / denom);
            pi[i] = new;
        }
        let total: f64 = pi.iter().sum();
        if total > 0.0 {
            for v in &mut pi {
                *v /= total;
            }
        }
        if max_rel < opts.tol {
            return (pi, sweep, GsOutcome::Converged);
        }
        if sweep % STALL_WINDOW == 0 {
            if max_rel > window_rel * 0.5 {
                return (pi, sweep, GsOutcome::Stalled);
            }
            window_rel = max_rel;
        }
    }
    (pi, budget, GsOutcome::Exhausted)
}

/// Krylov dimension per Arnoldi restart.
const KRYLOV_DIM: usize = 25;

/// Restarted Arnoldi for the unit eigenvector of the uniformized DTMC
/// `P = I + Q/Λ`, starting from `x0`, with a matvec budget of `budget`
/// (one matvec ≈ one sweep of work). Ends with a short Gauss–Seidel
/// polish for full relative accuracy on stiff chains.
fn krylov_from(ctmc: &Ctmc, opts: &SolverOptions, x0: Vec<f64>, budget: usize) -> Vec<f64> {
    let n = ctmc.num_states();
    let max_exit = ctmc.max_exit_rate();
    if max_exit == 0.0 {
        return ctmc.initial_distribution();
    }
    let unif = max_exit * UNIF_HEADROOM;
    // The uniformized DTMC in prescaled gather form — the exact arrays
    // the transient engine steps with, so the matvec (the budgeted hot
    // loop) pays no per-transition division and cannot drift from the
    // transient kernel.
    let (stay, inc_off, inc_p, inc_src) = prescaled_transpose(ctmc, unif);
    // y = x Pᵀ over the transposed adjacency (the same operator the power
    // iteration applies).
    let matvec = |x: &[f64], y: &mut [f64]| {
        for (i, yi) in y.iter_mut().enumerate() {
            let (lo, hi) = (inc_off[i] as usize, inc_off[i + 1] as usize);
            let mut acc = x[i] * stay[i];
            for (&p, &j) in inc_p[lo..hi].iter().zip(&inc_src[lo..hi]) {
                acc += p * x[j as usize];
            }
            *yi = acc;
        }
    };

    let m = KRYLOV_DIM.min(n.saturating_sub(1)).max(1);
    let mut x = x0;
    normalize_l1(&mut x);
    let mut used = 0usize;
    while used < budget {
        ioimc::budget::checkpoint();
        // Arnoldi with modified Gram–Schmidt.
        let norm0 = l2_norm(&x);
        if norm0 <= 0.0 || !norm0.is_finite() {
            break;
        }
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        basis.push(x.iter().map(|a| a / norm0).collect());
        let mut h = vec![0.0f64; (m + 1) * m];
        let mut m_eff = m;
        for j in 0..m {
            let mut w = vec![0.0f64; n];
            matvec(&basis[j], &mut w);
            used += 1;
            for i in 0..=j {
                let hij: f64 = basis[i].iter().zip(&w).map(|(a, b)| a * b).sum();
                h[i * m + j] = hij;
                for (wk, vk) in w.iter_mut().zip(&basis[i]) {
                    *wk -= hij * vk;
                }
            }
            let beta = l2_norm(&w);
            h[(j + 1) * m + j] = beta;
            if beta < 1e-14 || used >= budget {
                m_eff = j + 1; // invariant subspace found (or budget spent)
                break;
            }
            for wk in &mut w {
                *wk /= beta;
            }
            basis.push(w);
        }
        // Ritz vector for the known eigenvalue 1: inverse iteration on
        // the projected (H − I), then lift back through the basis.
        let y = unit_eigvec_of_hessenberg(&h, m, m_eff);
        let mut xn = vec![0.0f64; n];
        for (yj, vj) in y.iter().zip(&basis) {
            if *yj != 0.0 {
                for (xk, vk) in xn.iter_mut().zip(vj) {
                    *xk += yj * vk;
                }
            }
        }
        // Orient along the (nonnegative) Perron direction and clean the
        // rounding dust.
        if xn.iter().sum::<f64>() < 0.0 {
            for a in &mut xn {
                *a = -*a;
            }
        }
        for a in &mut xn {
            if *a < 0.0 {
                *a = 0.0;
            }
        }
        normalize_l1(&mut xn);
        let mut max_rel = 0.0f64;
        for (a, b) in xn.iter().zip(&x) {
            let denom = a.abs().max(1e-300);
            max_rel = max_rel.max((a - b).abs() / denom);
        }
        x = xn;
        if max_rel < opts.tol {
            break;
        }
    }
    // Polish: Gauss–Seidel from the Krylov iterate recovers relative
    // accuracy on components far below the probability scale.
    let (polished, _, _) = gauss_seidel_run(ctmc, opts, x, 64.min(opts.max_sweeps.max(1)));
    polished
}

/// The (approximate) null vector of `H_eff − I` for the leading
/// `m_eff × m_eff` block of the row-major `(m+1) × m` Hessenberg array, by
/// LU-factored inverse iteration with the exact shift.
fn unit_eigvec_of_hessenberg(h: &[f64], m: usize, m_eff: usize) -> Vec<f64> {
    let k = m_eff;
    let mut a = vec![0.0f64; k * k];
    let mut scale = 0.0f64;
    for r in 0..k {
        for c in 0..k {
            let v = h[r * m + c] - if r == c { 1.0 } else { 0.0 };
            a[r * k + c] = v;
            scale = scale.max(v.abs());
        }
    }
    if scale == 0.0 {
        // H == I: every basis vector is an eigenvector; keep the first.
        let mut y = vec![0.0; k];
        y[0] = 1.0;
        return y;
    }
    // LU with partial pivoting; near-singular pivots are clamped — the
    // matrix *is* (numerically) singular in the direction we want, and
    // the clamp is what makes inverse iteration explode toward it.
    let floor = scale * 1e-18;
    let mut piv: Vec<usize> = (0..k).collect();
    for col in 0..k {
        let p = (col..k)
            .max_by(|&i, &j| a[i * k + col].abs().total_cmp(&a[j * k + col].abs()))
            .expect("non-empty range");
        if p != col {
            for c in 0..k {
                a.swap(col * k + c, p * k + c);
            }
            piv.swap(col, p);
        }
        if a[col * k + col].abs() < floor {
            a[col * k + col] = if a[col * k + col] < 0.0 {
                -floor
            } else {
                floor
            };
        }
        let d = a[col * k + col];
        for row in col + 1..k {
            let f = a[row * k + col] / d;
            a[row * k + col] = f;
            for c in col + 1..k {
                a[row * k + c] -= f * a[col * k + c];
            }
        }
    }
    let solve = |a: &[f64], piv: &[usize], b: &[f64]| -> Vec<f64> {
        let mut y: Vec<f64> = piv.iter().map(|&p| b[p]).collect();
        for row in 1..k {
            for c in 0..row {
                y[row] -= a[row * k + c] * y[c];
            }
        }
        for row in (0..k).rev() {
            for c in row + 1..k {
                y[row] -= a[row * k + c] * y[c];
            }
            y[row] /= a[row * k + row];
        }
        y
    };
    let mut y = vec![1.0 / (k as f64).sqrt(); k];
    for _ in 0..3 {
        let z = solve(&a, &piv, &y);
        let nz = l2_norm(&z);
        if !(nz > 0.0 && nz.is_finite()) {
            break;
        }
        y = z.into_iter().map(|v| v / nz).collect();
    }
    y
}

fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|a| a * a).sum::<f64>().sqrt()
}

fn normalize_l1(v: &mut [f64]) {
    let total: f64 = v.iter().sum();
    if total > 0.0 {
        for a in v {
            *a /= total;
        }
    }
}

/// Power iteration on the uniformized DTMC: `π ← π (I + Q/Λ)` with
/// `Λ = UNIF_HEADROOM · max exit rate`, over the transposed CSR adjacency.
/// Converges for any irreducible chain (the head-room keeps the DTMC
/// aperiodic) but only at the subdominant-eigenvalue rate — prefer
/// Gauss–Seidel except as a cross-check.
fn power_iteration(ctmc: &Ctmc, opts: &SolverOptions) -> Vec<f64> {
    let n = ctmc.num_states();
    let max_exit = ctmc.max_exit_rate();
    if max_exit == 0.0 {
        return ctmc.initial_distribution();
    }
    let unif = max_exit * UNIF_HEADROOM;
    let incoming = ctmc.incoming();
    let stay: Vec<f64> = (0..n as u32)
        .map(|s| 1.0 - ctmc.exit_rate(s) / unif)
        .collect();
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..opts.max_sweeps {
        ioimc::budget::checkpoint();
        let mut max_rel = 0.0f64;
        for i in 0..n {
            let inflow: f64 = incoming
                .row(i as u32)
                .iter()
                .map(|&(r, j)| r * pi[j as usize])
                .sum();
            next[i] = pi[i] * stay[i] + inflow / unif;
        }
        let total: f64 = next.iter().sum();
        if total > 0.0 {
            for v in &mut next {
                *v /= total;
            }
        }
        for i in 0..n {
            let denom = next[i].abs().max(1e-300);
            max_rel = max_rel.max((next[i] - pi[i]).abs() / denom);
        }
        std::mem::swap(&mut pi, &mut next);
        if max_rel < opts.tol {
            break;
        }
    }
    pi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn birth_death(lambda: f64, mu: f64, k: usize) -> Ctmc {
        let rows: Vec<Vec<(f64, u32)>> = (0..=k)
            .map(|i| {
                let mut row = Vec::new();
                if i < k {
                    row.push((lambda, (i + 1) as u32));
                }
                if i > 0 {
                    row.push((mu, (i - 1) as u32));
                }
                row
            })
            .collect();
        Ctmc::new(rows, vec![0; k + 1], 0).unwrap()
    }

    /// Two-state machine: π_up = µ/(λ+µ).
    #[test]
    fn two_state_machine() {
        let (l, m) = (0.01, 2.0);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = steady_state(&c);
        assert!((pi[0] - m / (l + m)).abs() < 1e-12);
        assert!((pi[1] - l / (l + m)).abs() < 1e-12);
    }

    /// M/M/1/K queue: π_k ∝ ρ^k.
    #[test]
    fn mm1k_queue() {
        let (lambda, mu, k) = (0.7, 1.0, 6usize);
        let c = birth_death(lambda, mu, k);
        let pi = steady_state(&c);
        let rho: f64 = lambda / mu;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for (i, &p) in pi.iter().enumerate() {
            let expected = rho.powi(i as i32) / norm;
            assert!((p - expected).abs() < 1e-12, "state {i}: {p} vs {expected}");
        }
    }

    /// A stiff repairable system (rates spanning 7 orders of magnitude).
    #[test]
    fn stiff_chain() {
        let (l, m) = (1e-7, 0.1);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = steady_state(&c);
        let expected = l / (l + m);
        assert!((pi[1] - expected).abs() / expected < 1e-10);
    }

    /// All sparse paths agree with the dense path on the same chain.
    #[test]
    fn iterative_paths_match_dense() {
        let c = birth_death(0.3, 1.0, 9);
        let dense = steady_state(&c);
        let gs = steady_state_with(&c, &SolverOptions::default().with_dense_limit(0));
        let pow = steady_state_with(
            &c,
            &SolverOptions::default()
                .with_dense_limit(0)
                .with_method(IterativeMethod::Power),
        );
        let kry = steady_state_with(
            &c,
            &SolverOptions::default()
                .with_dense_limit(0)
                .with_method(IterativeMethod::Krylov),
        );
        for i in 0..c.num_states() {
            assert!((dense[i] - gs[i]).abs() < 1e-10, "GS state {i}");
            assert!((dense[i] - pow[i]).abs() < 1e-9, "power state {i}");
            assert!((dense[i] - kry[i]).abs() < 1e-9, "Krylov state {i}");
        }
    }

    /// The Krylov kernel (with its Gauss–Seidel polish) resolves stiff
    /// mass to full relative accuracy, like the plain sparse path.
    #[test]
    fn krylov_resolves_stiff_mass() {
        let (l, m) = (1e-7, 0.1);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = steady_state_with(
            &c,
            &SolverOptions::default()
                .with_dense_limit(0)
                .with_method(IterativeMethod::Krylov),
        );
        let expected = l / (l + m);
        assert!((pi[1] - expected).abs() / expected < 1e-9, "{}", pi[1]);
    }

    /// Krylov handles a chain larger than its basis dimension (several
    /// restarts) and still matches the dense answer.
    #[test]
    fn krylov_restarts_on_long_chain() {
        let c = birth_death(0.9, 1.0, 120);
        let dense = steady_state_with(&c, &SolverOptions::default().with_dense_limit(1000));
        let kry = steady_state_with(
            &c,
            &SolverOptions::default()
                .with_dense_limit(0)
                .with_method(IterativeMethod::Krylov),
        );
        for i in 0..c.num_states() {
            assert!(
                (dense[i] - kry[i]).abs() < 1e-9,
                "state {i}: {} vs {}",
                dense[i],
                kry[i]
            );
        }
    }

    /// A stiff chain forced down the sparse path still gets full relative
    /// accuracy (the Gauss–Seidel sweep works in balance-equation space,
    /// not probability space, so the 1e-8 mass is resolved).
    #[test]
    fn sparse_path_resolves_stiff_mass() {
        let (l, m) = (1e-7, 0.1);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = steady_state_with(&c, &SolverOptions::default().with_dense_limit(0));
        let expected = l / (l + m);
        assert!((pi[1] - expected).abs() / expected < 1e-9);
    }

    /// The sweep cap is honored: one sweep from the uniform start is not
    /// converged, and the solver returns without spinning.
    #[test]
    fn sweep_cap_returns_current_iterate() {
        let c = birth_death(0.7, 1.0, 12);
        let capped = steady_state_with(
            &c,
            &SolverOptions::default()
                .with_dense_limit(0)
                .with_max_sweeps(1),
        );
        let full = steady_state(&c);
        let diff: f64 = capped
            .iter()
            .zip(&full)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(diff > 1e-6, "one sweep should not already be converged");
        let total: f64 = capped.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "iterate is still normalized");
    }

    #[test]
    fn single_state_is_trivial() {
        let c = Ctmc::new(vec![vec![]], vec![0], 0).unwrap();
        assert_eq!(steady_state(&c), vec![1.0]);
    }
}
