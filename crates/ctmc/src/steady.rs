//! Steady-state distribution.
//!
//! Solves the global balance equations `πQ = 0`, `Σπ = 1`. Small chains use
//! dense Gaussian elimination with partial pivoting (exact up to rounding,
//! robust for the stiff chains dependability models produce — failure rates
//! of 1e-8 next to repair rates of 1e-1). Larger chains fall back to
//! Gauss–Seidel sweeps over the balance equations.

use crate::chain::Ctmc;

/// Chains up to this size are solved directly (dense elimination).
const DENSE_LIMIT: usize = 3000;

/// Computes the steady-state distribution of an irreducible CTMC.
///
/// For reducible chains the result is the stationary distribution reachable
/// from the chain's structure and should not be relied on; Arcade models
/// with repair are irreducible by construction.
pub fn steady_state(ctmc: &Ctmc) -> Vec<f64> {
    if ctmc.num_states() == 1 {
        return vec![1.0];
    }
    if ctmc.num_states() <= DENSE_LIMIT {
        dense_solve(ctmc)
    } else {
        gauss_seidel(ctmc)
    }
}

/// Dense solve of `Q^T π = 0` with the last equation replaced by the
/// normalization constraint.
fn dense_solve(ctmc: &Ctmc) -> Vec<f64> {
    let n = ctmc.num_states();
    // Build A = Q^T (column j of Q: rates out of j; diagonal -exit).
    let mut a = vec![0.0f64; n * n];
    for s in 0..n as u32 {
        let mut exit = 0.0;
        for &(r, t) in ctmc.row(s) {
            // Q[s][t] = r contributes to A[t][s] (transposed)
            a[t as usize * n + s as usize] += r;
            exit += r;
        }
        a[s as usize * n + s as usize] -= exit;
    }
    // Replace last row with normalization Σπ = 1.
    for j in 0..n {
        a[(n - 1) * n + j] = 1.0;
    }
    let mut b = vec![0.0f64; n];
    b[n - 1] = 1.0;

    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let pivot_row = (col..n)
            .max_by(|&i, &j| a[i * n + col].abs().total_cmp(&a[j * n + col].abs()))
            .expect("non-empty range");
        if a[pivot_row * n + col].abs() < f64::MIN_POSITIVE {
            continue; // singular direction; normalization row fixes scale
        }
        if pivot_row != col {
            for j in 0..n {
                a.swap(col * n + j, pivot_row * n + j);
            }
            b.swap(col, pivot_row);
        }
        let pivot = a[col * n + col];
        for row in col + 1..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[row * n + j] -= factor * a[col * n + j];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut rhs = b[row];
        for j in row + 1..n {
            rhs -= a[row * n + j] * x[j];
        }
        let d = a[row * n + row];
        x[row] = if d.abs() < f64::MIN_POSITIVE {
            0.0
        } else {
            rhs / d
        };
    }
    // Clean tiny negatives from rounding and renormalize.
    for v in &mut x {
        if *v < 0.0 && *v > -1e-9 {
            *v = 0.0;
        }
    }
    let total: f64 = x.iter().sum();
    if total > 0.0 {
        for v in &mut x {
            *v /= total;
        }
    }
    x
}

/// Gauss–Seidel iteration on `π_i · exit_i = Σ_j π_j q_{ji}`.
fn gauss_seidel(ctmc: &Ctmc) -> Vec<f64> {
    let n = ctmc.num_states();
    // Incoming adjacency.
    let mut incoming: Vec<Vec<(f64, u32)>> = vec![Vec::new(); n];
    for s in 0..n as u32 {
        for &(r, t) in ctmc.row(s) {
            incoming[t as usize].push((r, s));
        }
    }
    let exit: Vec<f64> = (0..n as u32).map(|s| ctmc.exit_rate(s)).collect();
    let mut pi = vec![1.0 / n as f64; n];
    const MAX_SWEEPS: usize = 200_000;
    const TOL: f64 = 1e-14;
    for _ in 0..MAX_SWEEPS {
        let mut max_rel = 0.0f64;
        for i in 0..n {
            if exit[i] <= 0.0 {
                continue; // absorbing state keeps its mass (not expected here)
            }
            let inflow: f64 = incoming[i].iter().map(|&(r, j)| r * pi[j as usize]).sum();
            let new = inflow / exit[i];
            let denom = new.abs().max(1e-300);
            max_rel = max_rel.max((new - pi[i]).abs() / denom);
            pi[i] = new;
        }
        let total: f64 = pi.iter().sum();
        if total > 0.0 {
            for v in &mut pi {
                *v /= total;
            }
        }
        if max_rel < TOL {
            break;
        }
    }
    pi
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state machine: π_up = µ/(λ+µ).
    #[test]
    fn two_state_machine() {
        let (l, m) = (0.01, 2.0);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = steady_state(&c);
        assert!((pi[0] - m / (l + m)).abs() < 1e-12);
        assert!((pi[1] - l / (l + m)).abs() < 1e-12);
    }

    /// M/M/1/K queue: π_k ∝ ρ^k.
    #[test]
    fn mm1k_queue() {
        let (lambda, mu, k) = (0.7, 1.0, 6usize);
        let rows: Vec<Vec<(f64, u32)>> = (0..=k)
            .map(|i| {
                let mut row = Vec::new();
                if i < k {
                    row.push((lambda, (i + 1) as u32));
                }
                if i > 0 {
                    row.push((mu, (i - 1) as u32));
                }
                row
            })
            .collect();
        let c = Ctmc::new(rows, vec![0; k + 1], 0).unwrap();
        let pi = steady_state(&c);
        let rho: f64 = lambda / mu;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for (i, &p) in pi.iter().enumerate() {
            let expected = rho.powi(i as i32) / norm;
            assert!((p - expected).abs() < 1e-12, "state {i}: {p} vs {expected}");
        }
    }

    /// A stiff repairable system (rates spanning 7 orders of magnitude).
    #[test]
    fn stiff_chain() {
        let (l, m) = (1e-7, 0.1);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = steady_state(&c);
        let expected = l / (l + m);
        assert!((pi[1] - expected).abs() / expected < 1e-10);
    }

    /// Gauss–Seidel path agrees with the dense path.
    #[test]
    fn gs_matches_dense() {
        let (lambda, mu, k) = (0.3, 1.0, 9usize);
        let rows: Vec<Vec<(f64, u32)>> = (0..=k)
            .map(|i| {
                let mut row = Vec::new();
                if i < k {
                    row.push((lambda, (i + 1) as u32));
                }
                if i > 0 {
                    row.push((mu, (i - 1) as u32));
                }
                row
            })
            .collect();
        let c = Ctmc::new(rows, vec![0; k + 1], 0).unwrap();
        let dense = dense_solve(&c);
        let gs = gauss_seidel(&c);
        for (a, b) in dense.iter().zip(&gs) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn single_state_is_trivial() {
        let c = Ctmc::new(vec![vec![]], vec![0], 0).unwrap();
        assert_eq!(steady_state(&c), vec![1.0]);
    }
}
