//! CSL-style probabilistic queries.
//!
//! The Arcade paper's future-work section (§6) plans "CSL-type expressions,
//! thus querying more complex measures than system reliability or
//! availability" — this module implements that extension: the
//! continuous-stochastic-logic operators over a labelled CTMC, with atomic
//! propositions given by label-bit formulas.
//!
//! Supported:
//!
//! * [`StateFormula`] — boolean combinations of label bits,
//! * `P[Φ U≤t Ψ]` ([`until_bounded`]) — time-bounded until,
//! * `P[◇≤t Φ]` ([`eventually_bounded`]) — bounded reachability
//!   (unreliability when Φ = down),
//! * `P[□≤t Φ]` ([`always_bounded`]) — bounded invariance (reliability),
//! * `S[Φ]` ([`steady_state_probability`]) — long-run probability,
//! * expected interval availability ([`interval_down_fraction`]).

use crate::chain::Ctmc;
use crate::context::{MeasureContext, SolveCounters};
use crate::poisson::PoissonCache;
use crate::solver::{SolverOptions, TransientOptions};
use crate::steady::steady_state_with;
use crate::transient::{transient_many_from_cached, transient_many_from_ctx, GridSolver};

/// A boolean state formula over label bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateFormula {
    /// True everywhere.
    True,
    /// True iff all bits of the mask are set in the state label.
    Label(u64),
    /// Negation.
    Not(Box<StateFormula>),
    /// Conjunction.
    And(Box<StateFormula>, Box<StateFormula>),
    /// Disjunction.
    Or(Box<StateFormula>, Box<StateFormula>),
}

impl StateFormula {
    /// The proposition "label bit 0 is set" — Arcade's "system down".
    pub fn down() -> Self {
        Self::Label(1)
    }

    /// The proposition "system up".
    pub fn up() -> Self {
        Self::Not(Box::new(Self::down()))
    }

    /// Negation (builder style).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Self::Not(Box::new(self))
    }

    /// Conjunction (builder style).
    pub fn and(self, other: Self) -> Self {
        Self::And(Box::new(self), Box::new(other))
    }

    /// Disjunction (builder style).
    pub fn or(self, other: Self) -> Self {
        Self::Or(Box::new(self), Box::new(other))
    }

    /// Evaluates the formula on a state label.
    pub fn holds(&self, label: u64) -> bool {
        match self {
            Self::True => true,
            Self::Label(mask) => label & mask == *mask,
            Self::Not(f) => !f.holds(label),
            Self::And(a, b) => a.holds(label) && b.holds(label),
            Self::Or(a, b) => a.holds(label) || b.holds(label),
        }
    }

    /// The satisfying states of `ctmc`.
    pub fn states(&self, ctmc: &Ctmc) -> Vec<u32> {
        (0..ctmc.num_states() as u32)
            .filter(|&s| self.holds(ctmc.label(s)))
            .collect()
    }
}

/// `P[Φ U≤t Ψ]` from the initial state: the probability that a Ψ-state is
/// reached within `t` while only passing through Φ-states.
///
/// Computed with the standard CSL transformation: Ψ-states are made
/// absorbing (reaching them is success), ¬Φ∧¬Ψ-states are made absorbing
/// too (entering them is failure), then one transient analysis gives the
/// success mass.
///
/// # Panics
///
/// Panics if `t` is negative or not finite.
pub fn until_bounded(ctmc: &Ctmc, phi: &StateFormula, psi: &StateFormula, t: f64) -> f64 {
    until_bounded_with(
        ctmc,
        phi,
        psi,
        t,
        &TransientOptions::default(),
        &PoissonCache::new(),
    )
}

/// [`until_bounded`] with explicit uniformization engine configuration
/// and a shared Poisson weight memo (the transient solve dominates this
/// query on large chains; batches of until queries over one grid reuse
/// each `Λ·Δt` expansion through the cache). With the default adaptive
/// windowed engine the answer deviates from the exact expansion by at
/// most [`TransientOptions::support_tol`] (one segment is stepped), on
/// top of the shared `~1e-15` Poisson truncation.
///
/// # Panics
///
/// Panics if `t` is negative or not finite.
pub fn until_bounded_with(
    ctmc: &Ctmc,
    phi: &StateFormula,
    psi: &StateFormula,
    t: f64,
    opts: &TransientOptions,
    cache: &PoissonCache,
) -> f64 {
    until_bounded_inner(ctmc, phi, psi, t, |transformed, pi0| {
        transient_many_from_cached(transformed, pi0, &[t], opts, cache)
    })
}

/// [`until_bounded_with`] driven through a [`MeasureContext`]: the
/// context's Poisson memo answers the weight lookups and the context's
/// [`crate::SolveCounters`] record the transient solve's work, scoped to
/// the session instead of the whole process.
///
/// # Panics
///
/// Panics if `t` is negative or not finite.
pub fn until_bounded_ctx(
    ctmc: &Ctmc,
    phi: &StateFormula,
    psi: &StateFormula,
    t: f64,
    opts: &TransientOptions,
    ctx: &MeasureContext,
) -> f64 {
    until_bounded_inner(ctmc, phi, psi, t, |transformed, pi0| {
        transient_many_from_ctx(transformed, pi0, &[t], opts, ctx)
    })
}

fn until_bounded_inner(
    ctmc: &Ctmc,
    phi: &StateFormula,
    psi: &StateFormula,
    _t: f64,
    solve: impl FnOnce(&Ctmc, &[f64]) -> Vec<Vec<f64>>,
) -> f64 {
    let absorbing: Vec<u32> = (0..ctmc.num_states() as u32)
        .filter(|&s| {
            let l = ctmc.label(s);
            psi.holds(l) || !phi.holds(l)
        })
        .collect();
    let transformed = ctmc.make_absorbing(absorbing.iter().copied());
    // Success = sitting in a Ψ-state at time t of the transformed chain;
    // since Ψ-states are absorbing, that equals "reached Ψ by t via Φ".
    // A failure state (¬Φ∧¬Ψ) is absorbing and not Ψ, so it contributes 0.
    let pi = solve(&transformed, &transformed.initial_distribution())
        .pop()
        .expect("one grid point");
    (0..ctmc.num_states() as u32)
        .filter(|&s| psi.holds(ctmc.label(s)))
        .map(|s| pi[s as usize])
        .sum::<f64>()
        .clamp(0.0, 1.0)
}

/// `P[◇≤t Φ]`: bounded reachability (with Φ = down this is the system
/// unreliability in the first-passage sense of §5.2.2).
pub fn eventually_bounded(ctmc: &Ctmc, phi: &StateFormula, t: f64) -> f64 {
    until_bounded(ctmc, &StateFormula::True, phi, t)
}

/// `P[□≤t Φ]`: the probability of staying in Φ-states for all of `[0, t]`.
pub fn always_bounded(ctmc: &Ctmc, phi: &StateFormula, t: f64) -> f64 {
    1.0 - eventually_bounded(ctmc, &phi.clone().not(), t)
}

/// `S[Φ]`: long-run probability of Φ.
pub fn steady_state_probability(ctmc: &Ctmc, phi: &StateFormula) -> f64 {
    steady_state_probability_with(ctmc, phi, &SolverOptions::default())
}

/// [`steady_state_probability`] with explicit solver configuration (the
/// steady-state solve dominates this query on large chains).
pub fn steady_state_probability_with(ctmc: &Ctmc, phi: &StateFormula, opts: &SolverOptions) -> f64 {
    let pi = steady_state_with(ctmc, opts);
    phi.states(ctmc)
        .into_iter()
        .map(|s| pi[s as usize])
        .sum::<f64>()
        .clamp(0.0, 1.0)
}

/// Expected fraction of `[0, t]` spent in Φ-states (interval availability
/// when Φ = up): `(1/t) ∫₀ᵗ P(Φ at u) du`, evaluated by numerically
/// integrating the transient distribution with Simpson's rule on a grid
/// fine enough for the chain's dynamics.
///
/// # Panics
///
/// Panics if `t` is not strictly positive and finite.
pub fn interval_down_fraction(ctmc: &Ctmc, phi: &StateFormula, t: f64) -> f64 {
    interval_down_fraction_with(
        ctmc,
        phi,
        t,
        &TransientOptions::default(),
        &PoissonCache::new(),
    )
}

/// [`interval_down_fraction`] with explicit uniformization engine
/// configuration. The Simpson grid is evaluated in chunked batched
/// sweeps over **one** reused grid solver — the adaptive engine's
/// locality reordering and operator are built once for the whole
/// integration, and the constant step width means every chunk whose
/// support (and hence `Λ_seg`) has stabilized answers its Poisson
/// weights from the shared [`PoissonCache`] memo. Error budget: each of
/// the `steps` grid segments truncates at most
/// [`TransientOptions::support_tol`] of mass, so the integrand is
/// pointwise within `steps · support_tol` of exact — at the default
/// `1e-14` budget that is dwarfed by the `O(h⁴)` Simpson error this
/// grid resolution targets.
///
/// # Panics
///
/// Panics if `t` is not strictly positive and finite.
pub fn interval_down_fraction_with(
    ctmc: &Ctmc,
    phi: &StateFormula,
    t: f64,
    opts: &TransientOptions,
    cache: &PoissonCache,
) -> f64 {
    interval_down_fraction_inner(ctmc, phi, t, opts, cache, None)
}

/// [`interval_down_fraction_with`] driven through a [`MeasureContext`]
/// (session-scoped Poisson memo and work counters).
///
/// # Panics
///
/// Panics if `t` is not strictly positive and finite.
pub fn interval_down_fraction_ctx(
    ctmc: &Ctmc,
    phi: &StateFormula,
    t: f64,
    opts: &TransientOptions,
    ctx: &MeasureContext,
) -> f64 {
    interval_down_fraction_inner(ctmc, phi, t, opts, &ctx.poisson, Some(&ctx.counters))
}

fn interval_down_fraction_inner(
    ctmc: &Ctmc,
    phi: &StateFormula,
    t: f64,
    opts: &TransientOptions,
    cache: &PoissonCache,
    counters: Option<&SolveCounters>,
) -> f64 {
    assert!(
        t.is_finite() && t > 0.0,
        "horizon must be positive, got {t}"
    );
    // Grid resolution: several points per fastest transition, bounded.
    let max_rate = ctmc.max_exit_rate();
    let steps = ((t * max_rate * 8.0).ceil() as usize).clamp(64, 4096);
    let steps = steps + steps % 2; // Simpson needs an even count
    let h = t / steps as f64;
    let mut pi = ctmc.initial_distribution();
    let phi_states = phi.states(ctmc);
    let mass = |pi: &[f64]| -> f64 { phi_states.iter().map(|&s| pi[s as usize]).sum() };
    let mut integral = mass(&pi); // f(0), weight 1

    // Chunked batching bounds the resident distributions (the grid can be
    // thousands of points on a large chain) while one GridSolver + one
    // PoissonCache amortize the stepping engine (prescaled transposed
    // CSR) and the weight vectors across all chunks.
    const CHUNK: usize = 64;
    let mut solver = GridSolver::new(ctmc, opts, cache);
    if let Some(c) = counters {
        solver = solver.with_counters(c);
    }
    let mut k = 1usize;
    while k <= steps {
        let m = CHUNK.min(steps - k + 1);
        let grid: Vec<f64> = (1..=m).map(|j| j as f64 * h).collect();
        let pis = solver.solve_from(&pi, &grid);
        for (j, p) in pis.iter().enumerate() {
            let idx = k + j;
            let w = if idx == steps {
                1.0
            } else if idx % 2 == 1 {
                4.0
            } else {
                2.0
            };
            integral += w * mass(p);
        }
        pi = pis.into_iter().next_back().expect("non-empty chunk");
        k += m;
    }
    (integral * h / 3.0 / t).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Up(0) -λ-> Down(1) -µ-> Up, plus a "degraded" bit on a middle state.
    fn machine(l: f64, m: f64) -> Ctmc {
        Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap()
    }

    #[test]
    fn formula_evaluation() {
        let down = StateFormula::down();
        let up = StateFormula::up();
        assert!(down.holds(1));
        assert!(!down.holds(0));
        assert!(up.holds(0));
        assert!(StateFormula::True.holds(123));
        let both = StateFormula::Label(0b10).and(StateFormula::down());
        assert!(both.holds(0b11));
        assert!(!both.holds(0b01));
        let either = StateFormula::Label(0b10).or(StateFormula::down());
        assert!(either.holds(0b10));
    }

    #[test]
    fn eventually_matches_first_passage() {
        let c = machine(0.1, 5.0);
        let t = 7.0;
        let p = eventually_bounded(&c, &StateFormula::down(), t);
        let expected = 1.0 - (-0.1f64 * t).exp();
        assert!((p - expected).abs() < 1e-10, "{p} vs {expected}");
    }

    #[test]
    fn always_is_complement_of_eventually_not() {
        let c = machine(0.3, 1.0);
        let t = 2.0;
        let r = always_bounded(&c, &StateFormula::up(), t);
        let u = eventually_bounded(&c, &StateFormula::down(), t);
        assert!((r + u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn until_respects_the_path_constraint() {
        // 0(up) -> 1(degraded) -> 2(down); query up U≤t down must be 0
        // because the path leaves "up" before reaching "down".
        let c = Ctmc::new(
            vec![vec![(1.0, 1)], vec![(1.0, 2)], vec![]],
            vec![0, 0b10, 0b1],
            0,
        )
        .unwrap();
        let up = StateFormula::Label(0b10)
            .not()
            .and(StateFormula::down().not());
        let down = StateFormula::down();
        let p_strict = until_bounded(&c, &up, &down, 10.0);
        assert!(
            p_strict < 1e-12,
            "blocked path must have probability 0, got {p_strict}"
        );
        // allowing degraded on the way makes it reachable
        let p_relaxed = until_bounded(&c, &StateFormula::down().not(), &down, 10.0);
        assert!(p_relaxed > 0.9);
    }

    #[test]
    fn steady_state_probability_matches_measures() {
        let c = machine(0.01, 1.0);
        let s = steady_state_probability(&c, &StateFormula::down());
        assert!((s - 0.01 / 1.01).abs() < 1e-12);
    }

    #[test]
    fn interval_availability_between_point_and_steady() {
        let c = machine(0.5, 1.0);
        let t = 10.0;
        let frac = interval_down_fraction(&c, &StateFormula::down(), t);
        // starts up, so the average down-fraction is below the steady value
        let steady = 0.5 / 1.5;
        assert!(frac > 0.0 && frac < steady);
        // closed form: (1/t)∫ u(s) ds with u(s) = q(1 - e^{-(λ+µ)s}),
        // q = λ/(λ+µ): integral = q(t - (1-e^{-(λ+µ)t})/(λ+µ))
        let rate = 1.5;
        let q: f64 = 0.5 / 1.5;
        let expected = q * (t - (1.0 - (-rate * t).exp()) / rate) / t;
        assert!((frac - expected).abs() < 1e-5, "{frac} vs {expected}");
    }

    #[test]
    fn interval_fraction_converges_to_steady_state() {
        let c = machine(0.5, 1.0);
        let frac = interval_down_fraction(&c, &StateFormula::down(), 500.0);
        assert!((frac - 1.0 / 3.0).abs() < 1e-3);
    }
}
