//! Transient analysis by uniformization — sharded, steady-state-aware.
//!
//! The distribution at time `t` is
//! `π(t) = Σ_k Poisson(Λt)[k] · π(0) Pᵏ` where `P = I + Q/Λ` is the
//! uniformized DTMC and `Λ ≥ max exit rate`. Poisson weights come from
//! [`crate::poisson::poisson_weights`], memoized per `Λ·Δt` through a
//! [`PoissonCache`] (uniform grids step by the same `Δt` every segment).
//!
//! # The sharded DTMC step
//!
//! The hot kernel is the DTMC matrix-vector product `π ← π P`. It is
//! computed as a **gather** over the transposed CSR adjacency: state `i`'s
//! next mass is `π[i]·stay[i] + Σ_{j→i} π[j]·q_{ji}/Λ`, one contiguous
//! slice per state with the transition probabilities prescaled once per
//! solve. Because every row is computed independently from the previous
//! vector, the rows can be partitioned into contiguous shards (balanced
//! by transition count) and fanned out over [`ioimc::par`] scoped worker
//! threads with double-buffered per-shard writes — and the result is
//! **bitwise identical** for every thread count and shard size: each row
//! runs exactly the per-row code of the serial path, and the shard-wise
//! maximum used for steady-state detection reduces to the same global
//! maximum. Configure via [`TransientOptions`] (reachable from
//! [`crate::SolverOptions::transient`]).
//!
//! # Steady-state detection
//!
//! When the projected total remaining drift of the uniformized chain —
//! the sup-norm step delta `‖πP − π‖∞` divided by the spectral headroom
//! `1 − ρ̂` estimated from the recent delta history (see
//! `SteadyDetector`) — falls below [`TransientOptions::steady_tol`], the
//! chain has converged: the remaining Poisson tail mass is assigned to
//! the converged vector and the sweep stops early. The batched entry
//! points additionally answer **all later grid points** from that
//! vector, so long-horizon grids cost only as many DTMC steps as the
//! chain's mixing time. Detection is disabled with `steady_tol = 0.0`.
//!
//! # Batching
//!
//! Curve-shaped workloads should use [`transient_many`]: it evaluates a
//! whole time grid in **one** incremental uniformization sweep (the chain
//! is stepped from each grid point to the next by the Markov property)
//! instead of one independent sweep per point, turning the
//! `O(Λ·Σtᵢ)` cost of the scalar loop into `O(Λ·max tᵢ)` — and less than
//! that once steady-state detection kicks in.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, RwLock};

use crate::chain::Ctmc;
use crate::poisson::{PoissonCache, PoissonWeights};
use crate::solver::{TransientOptions, UNIF_HEADROOM};

/// Instrumentation: DTMC matrix-vector products performed process-wide
/// (see [`dtmc_steps_performed`]). A sharded step counts once — it is one
/// matrix-vector product no matter how many workers computed it.
static DTMC_STEPS: AtomicU64 = AtomicU64::new(0);
/// Instrumentation: uniformization sweeps started process-wide.
static SWEEPS: AtomicU64 = AtomicU64::new(0);

/// Total DTMC matrix-vector products performed **process-wide** since the
/// last [`reset_solver_counters`]. One product is the unit of transient
/// solver work, so batching and steady-state-detection wins show up
/// directly in this counter; it exists for benchmarks and regression
/// tests, not for control flow.
///
/// The counters are atomics so sweeps running on worker threads (sharded
/// steps, parallel `Session` prefetches, modular analyses) are neither
/// lost nor raced; tests that assert on deltas must serialize against
/// other counter-touching tests in the same process.
pub fn dtmc_steps_performed() -> u64 {
    DTMC_STEPS.load(Ordering::Relaxed)
}

/// Total uniformization sweeps (scalar solves or batched grid segments)
/// started process-wide since the last [`reset_solver_counters`].
pub fn sweeps_performed() -> u64 {
    SWEEPS.load(Ordering::Relaxed)
}

/// Resets the process-wide [`dtmc_steps_performed`]/[`sweeps_performed`]
/// counters to zero.
pub fn reset_solver_counters() {
    DTMC_STEPS.store(0, Ordering::Relaxed);
    SWEEPS.store(0, Ordering::Relaxed);
}

/// Computes the state distribution at time `t` starting from the chain's
/// initial state.
///
/// # Panics
///
/// Panics if `t` is negative or not finite.
pub fn transient(ctmc: &Ctmc, t: f64) -> Vec<f64> {
    transient_from(ctmc, &ctmc.initial_distribution(), t)
}

/// [`transient`] with explicit engine configuration.
///
/// # Panics
///
/// Panics if `t` is negative or not finite.
pub fn transient_with(ctmc: &Ctmc, t: f64, opts: &TransientOptions) -> Vec<f64> {
    transient_from_with(ctmc, &ctmc.initial_distribution(), t, opts)
}

/// Computes the state distribution at time `t` from an arbitrary initial
/// distribution `pi0`.
///
/// # Panics
///
/// Panics if `t` is negative or not finite, or if `pi0` has the wrong
/// length.
pub fn transient_from(ctmc: &Ctmc, pi0: &[f64], t: f64) -> Vec<f64> {
    transient_from_with(ctmc, pi0, t, &TransientOptions::default())
}

/// [`transient_from`] with explicit engine configuration.
///
/// # Panics
///
/// Panics if `t` is negative or not finite, or if `pi0` has the wrong
/// length.
pub fn transient_from_with(ctmc: &Ctmc, pi0: &[f64], t: f64, opts: &TransientOptions) -> Vec<f64> {
    grid_solve(ctmc, pi0, &[t], opts, None)
        .pop()
        .expect("one grid point")
}

/// Computes the state distributions at every time in `ts` (any order,
/// duplicates allowed) starting from the chain's initial state, sharing
/// one incremental uniformization sweep across the whole grid.
///
/// Returns one distribution per entry of `ts`, in the order given.
///
/// # Panics
///
/// Panics if any time is negative or not finite.
pub fn transient_many(ctmc: &Ctmc, ts: &[f64]) -> Vec<Vec<f64>> {
    transient_many_from(ctmc, &ctmc.initial_distribution(), ts)
}

/// [`transient_many`] with explicit engine configuration.
///
/// # Panics
///
/// Panics if any time is negative or not finite.
pub fn transient_many_with(ctmc: &Ctmc, ts: &[f64], opts: &TransientOptions) -> Vec<Vec<f64>> {
    transient_many_from_with(ctmc, &ctmc.initial_distribution(), ts, opts)
}

/// Computes the state distributions at every time in `ts` from an
/// arbitrary initial distribution `pi0` in one incremental sweep: the grid
/// is visited in ascending order and the chain is advanced from each grid
/// point to the next (exact by the Markov property), so the total work is
/// proportional to `Λ·max(ts)` plus a per-point truncation overhead,
/// instead of the scalar loop's `Λ·Σts` — or less, once steady-state
/// detection answers the tail of the grid from the converged vector.
///
/// # Panics
///
/// Panics if any time is negative or not finite, or if `pi0` has the
/// wrong length.
pub fn transient_many_from(ctmc: &Ctmc, pi0: &[f64], ts: &[f64]) -> Vec<Vec<f64>> {
    transient_many_from_with(ctmc, pi0, ts, &TransientOptions::default())
}

/// [`transient_many_from`] with explicit engine configuration.
///
/// # Panics
///
/// Panics if any time is negative or not finite, or if `pi0` has the
/// wrong length.
pub fn transient_many_from_with(
    ctmc: &Ctmc,
    pi0: &[f64],
    ts: &[f64],
    opts: &TransientOptions,
) -> Vec<Vec<f64>> {
    grid_solve(ctmc, pi0, ts, opts, None)
}

/// [`transient_many_from_with`] with a caller-provided [`PoissonCache`],
/// so repeated solves over the same grid (several measures of one batched
/// query, Simpson integration, repeated sessions) expand each distinct
/// `Λ·Δt` weight vector once.
///
/// # Panics
///
/// Panics if any time is negative or not finite, or if `pi0` has the
/// wrong length.
pub fn transient_many_from_cached(
    ctmc: &Ctmc,
    pi0: &[f64],
    ts: &[f64],
    opts: &TransientOptions,
    cache: &PoissonCache,
) -> Vec<Vec<f64>> {
    grid_solve(ctmc, pi0, ts, opts, Some(cache))
}

/// The shared grid driver: one [`GridSolver`] per call.
fn grid_solve(
    ctmc: &Ctmc,
    pi0: &[f64],
    ts: &[f64],
    opts: &TransientOptions,
    cache: Option<&PoissonCache>,
) -> Vec<Vec<f64>> {
    let local_cache;
    let cache = match cache {
        Some(c) => c,
        None => {
            local_cache = PoissonCache::new();
            &local_cache
        }
    };
    GridSolver::new(ctmc, opts, cache).solve_from(pi0, ts)
}

/// A reusable grid driver over one chain: validates inputs, visits each
/// grid in ascending order, and advances the chain segment by segment
/// through a lazily built (and then reused) [`Stepper`]. Crate-internal
/// so long chunked integrations (`csl::interval_down_fraction_with`) can
/// amortize the stepping engine across chunks instead of rebuilding the
/// prescaled transposed CSR per call.
///
/// Successive [`GridSolver::solve_from`] calls are treated as **one
/// trajectory** continued piecewise (each call's `pi0` is the previous
/// call's last result): once a segment reports steady-state convergence,
/// all later grid points — in this call *and* in later calls — are
/// answered from the converged vector.
pub(crate) struct GridSolver<'a> {
    ctmc: &'a Ctmc,
    opts: &'a TransientOptions,
    cache: &'a PoissonCache,
    stepper: Option<Stepper>,
    max_exit: f64,
    unif: f64,
    converged: bool,
}

impl<'a> GridSolver<'a> {
    pub(crate) fn new(ctmc: &'a Ctmc, opts: &'a TransientOptions, cache: &'a PoissonCache) -> Self {
        let max_exit = ctmc.max_exit_rate();
        Self {
            ctmc,
            opts,
            cache,
            stepper: None,
            max_exit,
            unif: max_exit * UNIF_HEADROOM,
            converged: false,
        }
    }

    pub(crate) fn solve_from(&mut self, pi0: &[f64], ts: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(
            pi0.len(),
            self.ctmc.num_states(),
            "distribution length mismatch"
        );
        for &t in ts {
            assert!(
                t.is_finite() && t >= 0.0,
                "time must be non-negative, got {t}"
            );
        }
        let mut order: Vec<usize> = (0..ts.len()).collect();
        order.sort_by(|&a, &b| ts[a].total_cmp(&ts[b]));

        let mut results: Vec<Vec<f64>> = vec![Vec::new(); ts.len()];
        let mut cur = pi0.to_vec();
        let mut cur_t = 0.0f64;
        for &i in &order {
            let dt = ts[i] - cur_t;
            if dt > 0.0 && self.max_exit > 0.0 && !self.converged {
                let (ctmc, unif, opts) = (self.ctmc, self.unif, self.opts);
                let st = self
                    .stepper
                    .get_or_insert_with(|| Stepper::new(ctmc, unif, opts));
                let pw = self.cache.get(self.unif * dt);
                SWEEPS.fetch_add(1, Ordering::Relaxed);
                let (res, conv) = st.sweep(&cur, &pw, self.opts.steady_tol);
                cur = res;
                cur_t = ts[i];
                self.converged = conv;
            }
            results[i] = cur.clone();
        }
        results
    }
}

/// The steady-state detector fed one sup-norm step delta per DTMC step.
///
/// A small step delta alone does **not** mean the iterates are near the
/// invariant vector: a slow mode with per-step contraction `ρ` close to 1
/// still has `‖π_k − π_∞‖ ≈ δ_k / (1 − ρ)` left to travel, which can be
/// orders of magnitude above `δ_k` on nearly-decoupled chains (rare
/// failure rates next to fast repair rates — exactly the dependability
/// regime). The detector therefore estimates the contraction from the
/// recent delta history (`ρ̂` = the largest of the last 8 step-to-step
/// ratios) and fires only when the **projected total remaining drift**
/// `δ / (1 − ρ̂)` is within tolerance. When one mode dominates, the
/// projection is tight; a fast-decaying transient cannot fake it because
/// the ratio window has to see eight consecutive small ratios first.
///
/// The decision consumes only the global (order-independent) sup-norm
/// delta, so the serial and sharded sweeps reach bitwise-identical
/// verdicts.
struct SteadyDetector {
    tol: f64,
    /// Last step-to-step delta ratios, clamped to `[0, 1]`; seeded with
    /// the conservative 1.0 so no verdict fires before a full window.
    ratios: [f64; 8],
    idx: usize,
    prev_delta: f64,
}

impl SteadyDetector {
    fn new(tol: f64) -> Self {
        Self {
            tol,
            ratios: [1.0; 8],
            idx: 0,
            prev_delta: f64::INFINITY,
        }
    }

    /// Feeds the sup-norm delta of one step; returns whether the chain
    /// is steady to within the tolerance.
    fn feed(&mut self, delta: f64) -> bool {
        if self.tol <= 0.0 {
            return false;
        }
        if delta == 0.0 {
            return true; // the iterate is exactly invariant
        }
        let ratio = if self.prev_delta.is_finite() && self.prev_delta > 0.0 {
            (delta / self.prev_delta).min(1.0)
        } else {
            1.0
        };
        self.ratios[self.idx] = ratio;
        self.idx = (self.idx + 1) % self.ratios.len();
        self.prev_delta = delta;
        let rho = self.ratios.iter().fold(0.0f64, |a, &b| a.max(b));
        rho < 1.0 && delta <= self.tol * (1.0 - rho)
    }
}

/// The uniformization stepping engine for one chain and one `Λ`: the
/// prescaled transposed adjacency (`p = rate/Λ` per incoming transition),
/// the per-state self-loop probabilities, and the shard partition.
struct Stepper {
    n: usize,
    /// Self-loop probability `1 - exit/Λ` per state.
    stay: Vec<f64>,
    /// Transposed CSR offsets (`n + 1` entries).
    inc_off: Vec<u32>,
    /// Prescaled incoming transition probabilities, row-major.
    inc_p: Vec<f64>,
    /// Incoming transition sources, parallel to `inc_p`.
    inc_src: Vec<u32>,
    /// Contiguous row ranges, one per worker, balanced by transition
    /// count. `len() == 1` selects the serial path.
    shards: Vec<std::ops::Range<usize>>,
}

impl Stepper {
    fn new(ctmc: &Ctmc, unif: f64, opts: &TransientOptions) -> Self {
        let n = ctmc.num_states();
        let (stay, inc_off, inc_p, inc_src) = prescaled_transpose(ctmc, unif);
        let workers = ioimc::par::effective_threads(opts.threads);
        let max_shards = (n / opts.shard_min.max(1)).max(1);
        let shards = balanced_ranges(&inc_off, workers.min(max_shards));
        Self {
            n,
            stay,
            inc_off,
            inc_p,
            inc_src,
            shards,
        }
    }

    /// One state's next mass: `π[i]·stay[i] + Σ p·π[src]` over the
    /// state's contiguous incoming slice. This is the **only** place a
    /// row is computed — the serial and sharded paths both call it, which
    /// is what makes their results bitwise identical.
    #[inline]
    fn row_value(&self, cur: &[f64], i: usize) -> f64 {
        let lo = self.inc_off[i] as usize;
        let hi = self.inc_off[i + 1] as usize;
        let mut acc = cur[i] * self.stay[i];
        for (&p, &j) in self.inc_p[lo..hi].iter().zip(&self.inc_src[lo..hi]) {
            acc += p * cur[j as usize];
        }
        acc
    }

    /// One uniformization sweep: `π(Δt)` from `pi0` with the given
    /// Poisson weights; returns the result and whether the **result** is
    /// steady: detection fired (`tol > 0` and the step delta dropped
    /// below it) *and* the Poisson mixture it produced is itself within
    /// `tol` of the invariant iterate. The second condition is what lets
    /// the grid driver answer later points from the result — the DTMC
    /// iterates converging mid-sweep is not enough, because early
    /// (pre-convergence) iterates still carry Poisson weight in the
    /// mixture.
    fn sweep(&self, pi0: &[f64], pw: &PoissonWeights, tol: f64) -> (Vec<f64>, bool) {
        if self.shards.len() <= 1 {
            self.sweep_serial(pi0, pw, tol)
        } else {
            self.sweep_sharded(pi0, pw, tol)
        }
    }

    fn sweep_serial(&self, pi0: &[f64], pw: &PoissonWeights, tol: f64) -> (Vec<f64>, bool) {
        let n = self.n;
        let total = pw.left + pw.weights.len();
        // Double-buffered stepping: `cur` and `nxt` swap roles each step,
        // so the whole sweep costs two distribution buffers total.
        let mut cur = pi0.to_vec();
        let mut nxt = vec![0.0f64; n];
        let mut result = vec![0.0f64; n];
        let mut cum = 0.0f64;
        let mut detector = SteadyDetector::new(tol);
        // Steps 0..left-1 only advance the power; steps left.. accumulate.
        for step in 0..total {
            if step >= pw.left {
                let w = pw.weights[step - pw.left];
                for i in 0..n {
                    result[i] += w * cur[i];
                }
                cum += w;
            }
            if step + 1 == total {
                break;
            }
            DTMC_STEPS.fetch_add(1, Ordering::Relaxed);
            let mut delta = 0.0f64;
            for i in 0..n {
                let v = self.row_value(&cur, i);
                delta = delta.max((v - cur[i]).abs());
                nxt[i] = v;
            }
            std::mem::swap(&mut cur, &mut nxt);
            if detector.feed(delta) {
                // Converged: the remaining Poisson tail all sits on the
                // (now invariant) current vector.
                let tail = 1.0 - cum;
                let mut res_diff = 0.0f64;
                for i in 0..n {
                    result[i] += tail * cur[i];
                    res_diff = res_diff.max((result[i] - cur[i]).abs());
                }
                return (result, res_diff <= tol);
            }
        }
        (result, false)
    }

    /// The sharded sweep: one scoped worker per shard, lockstep-stepped
    /// with a [`Barrier`]. Each step has two phases — every worker gathers
    /// its shard's rows from the shared previous vector into its private
    /// out-buffer (and accumulates its shard of the weighted result), then
    /// worker 0 alone copies the shard buffers back into the shared
    /// vector, bumps the step counter and reduces the shard deltas for
    /// steady-state detection. All workers take identical branches, so
    /// the barrier stays aligned and the result is bitwise identical to
    /// [`Stepper::sweep_serial`].
    fn sweep_sharded(&self, pi0: &[f64], pw: &PoissonWeights, tol: f64) -> (Vec<f64>, bool) {
        let nshards = self.shards.len();
        let total = pw.left + pw.weights.len();
        let cur = RwLock::new(pi0.to_vec());
        let outs: Vec<Mutex<Vec<f64>>> = self
            .shards
            .iter()
            .map(|r| Mutex::new(vec![0.0; r.len()]))
            .collect();
        let results: Vec<Mutex<Vec<f64>>> = self
            .shards
            .iter()
            .map(|r| Mutex::new(vec![0.0; r.len()]))
            .collect();
        let deltas: Vec<Mutex<f64>> = (0..nshards).map(|_| Mutex::new(0.0)).collect();
        // Sup-distance between each shard's final result and the
        // converged iterate, filled in the early-stop branch only.
        let res_diffs: Vec<Mutex<f64>> = (0..nshards).map(|_| Mutex::new(f64::INFINITY)).collect();
        let barrier = Barrier::new(nshards);
        let stop = AtomicBool::new(false);
        // Fed only by worker 0 in the assembly phase, from the same
        // global delta sequence the serial path sees.
        let detector = Mutex::new(SteadyDetector::new(tol));
        ioimc::par::run_workers(nshards, |w| {
            let range = self.shards[w].clone();
            let mut cum = 0.0f64;
            for step in 0..total {
                let last = step + 1 == total;
                {
                    let cur_g = cur.read().expect("no poisoned buffer");
                    if step >= pw.left {
                        let wt = pw.weights[step - pw.left];
                        let mut res = results[w].lock().expect("no poisoned shard");
                        for (k, i) in range.clone().enumerate() {
                            res[k] += wt * cur_g[i];
                        }
                        cum += wt;
                    }
                    if !last {
                        let mut out = outs[w].lock().expect("no poisoned shard");
                        let mut dmax = 0.0f64;
                        for (k, i) in range.clone().enumerate() {
                            let v = self.row_value(&cur_g, i);
                            dmax = dmax.max((v - cur_g[i]).abs());
                            out[k] = v;
                        }
                        *deltas[w].lock().expect("no poisoned shard") = dmax;
                    }
                }
                barrier.wait();
                if !last && w == 0 {
                    // Assembly phase: the other workers are parked on the
                    // second barrier, so the write lock is uncontended.
                    let mut cur_g = cur.write().expect("no poisoned buffer");
                    for (s, r) in self.shards.iter().enumerate() {
                        cur_g[r.clone()]
                            .copy_from_slice(&outs[s].lock().expect("no poisoned shard"));
                    }
                    DTMC_STEPS.fetch_add(1, Ordering::Relaxed);
                    let delta = deltas
                        .iter()
                        .fold(0.0f64, |a, d| a.max(*d.lock().expect("no poisoned shard")));
                    if detector.lock().expect("no poisoned detector").feed(delta) {
                        stop.store(true, Ordering::SeqCst);
                    }
                }
                barrier.wait();
                if last {
                    break;
                }
                if stop.load(Ordering::SeqCst) {
                    let cur_g = cur.read().expect("no poisoned buffer");
                    let tail = 1.0 - cum;
                    let mut res = results[w].lock().expect("no poisoned shard");
                    let mut dmax = 0.0f64;
                    for (k, i) in range.clone().enumerate() {
                        res[k] += tail * cur_g[i];
                        dmax = dmax.max((res[k] - cur_g[i]).abs());
                    }
                    *res_diffs[w].lock().expect("no poisoned shard") = dmax;
                    break;
                }
            }
        });
        let mut result = vec![0.0f64; self.n];
        for (s, r) in self.shards.iter().enumerate() {
            result[r.clone()].copy_from_slice(&results[s].lock().expect("no poisoned shard"));
        }
        let steady = stop.load(Ordering::SeqCst)
            && res_diffs
                .iter()
                .fold(0.0f64, |a, d| a.max(*d.lock().expect("no poisoned shard")))
                <= tol;
        (result, steady)
    }
}

/// The uniformized DTMC `P = I + Q/Λ` in gather-friendly form: per-state
/// self-loop probabilities (`stay = 1 − exit/Λ`) plus the transposed CSR
/// adjacency with transition probabilities prescaled to `p = rate/Λ`
/// (offsets / probabilities / sources as flat SoA arrays). Shared by the
/// transient [`Stepper`] and the steady-state Krylov matvec so the two
/// kernels cannot drift apart.
pub(crate) fn prescaled_transpose(
    ctmc: &Ctmc,
    unif: f64,
) -> (Vec<f64>, Vec<u32>, Vec<f64>, Vec<u32>) {
    let n = ctmc.num_states();
    let stay: Vec<f64> = ctmc.exit_rates().iter().map(|&e| 1.0 - e / unif).collect();
    let incoming = ctmc.incoming();
    let m = ctmc.num_transitions();
    let mut inc_off = Vec::with_capacity(n + 1);
    let mut inc_p = Vec::with_capacity(m);
    let mut inc_src = Vec::with_capacity(m);
    inc_off.push(0u32);
    for i in 0..n as u32 {
        for &(r, j) in incoming.row(i) {
            inc_p.push(r / unif);
            inc_src.push(j);
        }
        inc_off.push(inc_p.len() as u32);
    }
    (stay, inc_off, inc_p, inc_src)
}

/// Splits the rows `0..n` into at most `shards` contiguous non-empty
/// ranges with balanced work, where a row's work is `1 +` its incoming
/// transition count.
fn balanced_ranges(inc_off: &[u32], shards: usize) -> Vec<std::ops::Range<usize>> {
    let n = inc_off.len() - 1;
    if shards <= 1 || n <= 1 {
        return std::iter::once(0..n).collect();
    }
    let shards = shards.min(n);
    let total = n as u64 + u64::from(inc_off[n]);
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut acc = 0u64;
    for i in 0..n {
        acc += 1 + u64::from(inc_off[i + 1] - inc_off[i]);
        let closed = out.len();
        let remaining = shards - closed - 1;
        if remaining > 0
            && acc * shards as u64 >= total * (closed as u64 + 1)
            && n - (i + 1) >= remaining
        {
            out.push(start..i + 1);
            start = i + 1;
        }
    }
    out.push(start..n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state machine point availability:
    /// A(t) = µ/(λ+µ) + λ/(λ+µ)·e^{-(λ+µ)t}.
    #[test]
    fn two_state_transient_matches_closed_form() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        for &t in &[0.0, 0.1, 1.0, 5.0, 50.0] {
            let pi = transient(&c, t);
            let a = m / (l + m) + l / (l + m) * (-(l + m) * t).exp();
            assert!((pi[0] - a).abs() < 1e-10, "t={t}: {} vs {a}", pi[0]);
        }
    }

    /// Pure death process: P(absorbed by t) = 1 - e^{-λt}.
    #[test]
    fn exponential_absorption() {
        let l = 0.37;
        let c = Ctmc::new(vec![vec![(l, 1)], vec![]], vec![0, 1], 0).unwrap();
        let pi = transient(&c, 2.0);
        assert!((pi[1] - (1.0 - (-l * 2.0f64).exp())).abs() < 1e-12);
    }

    /// Erlang-3 absorption time: P(done by t) follows the Erlang CDF.
    #[test]
    fn erlang_chain() {
        let r = 2.0;
        let c = Ctmc::new(
            vec![vec![(r, 1)], vec![(r, 2)], vec![(r, 3)], vec![]],
            vec![0, 0, 0, 1],
            0,
        )
        .unwrap();
        let t = 1.3;
        let pi = transient(&c, t);
        // Erlang-3 CDF = 1 - e^{-rt}(1 + rt + (rt)^2/2)
        let x = r * t;
        let expected = 1.0 - (-x).exp() * (1.0 + x + x * x / 2.0);
        assert!((pi[3] - expected).abs() < 1e-10);
    }

    #[test]
    fn long_horizon_converges_to_steady_state() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = transient(&c, 1e4);
        let steady = crate::steady::steady_state(&c);
        assert!((pi[0] - steady[0]).abs() < 1e-9);
    }

    #[test]
    fn distribution_stays_normalized() {
        let c = Ctmc::new(
            vec![vec![(1.0, 1), (2.0, 2)], vec![(0.5, 2)], vec![(3.0, 0)]],
            vec![0, 0, 0],
            0,
        )
        .unwrap();
        for &t in &[0.3, 3.0, 30.0] {
            let pi = transient(&c, t);
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        let c = Ctmc::new(vec![vec![]], vec![0], 0).unwrap();
        let _ = transient(&c, -1.0);
    }

    #[test]
    fn batched_grid_matches_closed_form_in_input_order() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        // deliberately unsorted, with a duplicate and a zero
        let ts = [5.0, 0.1, 0.0, 1.0, 1.0, 50.0];
        let pis = transient_many(&c, &ts);
        assert_eq!(pis.len(), ts.len());
        for (&t, pi) in ts.iter().zip(&pis) {
            let a = m / (l + m) + l / (l + m) * (-(l + m) * t).exp();
            assert!((pi[0] - a).abs() < 1e-10, "t={t}: {} vs {a}", pi[0]);
        }
    }

    #[test]
    fn rateless_chain_grid_is_constant() {
        let c = Ctmc::new(vec![vec![]], vec![0], 0).unwrap();
        let pis = transient_many(&c, &[0.0, 1.0, 10.0]);
        for pi in pis {
            assert_eq!(pi, vec![1.0]);
        }
    }

    /// A multi-state chain with no transitions at all (`max_exit == 0.0`)
    /// must return the starting distribution verbatim at every grid point,
    /// including from a non-initial `pi0`.
    #[test]
    fn zero_exit_rate_chain_keeps_pi0_on_grid() {
        let c = Ctmc::new(vec![vec![], vec![], vec![]], vec![0, 0, 1], 0).unwrap();
        assert_eq!(c.max_exit_rate(), 0.0);
        let pi0 = [0.25, 0.5, 0.25];
        let pis = transient_many_from(&c, &pi0, &[0.0, 2.5, 100.0]);
        for pi in pis {
            assert_eq!(pi, pi0.to_vec());
        }
    }

    /// `t = 0` grid points must return `pi0` exactly, even when mixed with
    /// positive times (the incremental sweep must not step before them).
    #[test]
    fn zero_time_points_return_pi0_exactly() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi0 = [0.0, 1.0];
        let pis = transient_many_from(&c, &pi0, &[3.0, 0.0, 7.0, 0.0]);
        assert_eq!(pis[1], pi0.to_vec());
        assert_eq!(pis[3], pi0.to_vec());
        // and the positive points still match the closed form from pi0
        for &(i, t) in &[(0usize, 3.0f64), (2, 7.0)] {
            let a = m / (l + m) - m / (l + m) * (-(l + m) * t).exp();
            assert!((pis[i][0] - a).abs() < 1e-10, "t={t}");
        }
    }

    /// Duplicate and unsorted grid entries answer from one shared sweep
    /// and must agree with independent scalar solves bitwise-closely.
    #[test]
    fn from_distribution_handles_duplicate_unsorted_grid() {
        let c = Ctmc::new(
            vec![vec![(1.0, 1), (2.0, 2)], vec![(0.5, 2)], vec![(3.0, 0)]],
            vec![0, 0, 0],
            0,
        )
        .unwrap();
        let pi0 = [0.2, 0.3, 0.5];
        let ts = [4.0, 1.0, 4.0, 0.5, 1.0];
        let pis = transient_many_from(&c, &pi0, &ts);
        assert_eq!(pis[0], pis[2], "duplicate grid points must agree");
        assert_eq!(pis[1], pis[4]);
        for (&t, pi) in ts.iter().zip(&pis) {
            let scalar = transient_from(&c, &pi0, t);
            for (a, b) in pi.iter().zip(&scalar) {
                assert!((a - b).abs() < 1e-10, "t={t}: {a} vs {b}");
            }
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-10);
        }
    }

    /// The sharded sweep is bitwise identical to the serial sweep for
    /// every worker count and shard granularity (each row runs the same
    /// per-row code either way).
    #[test]
    fn sharded_sweep_is_bitwise_identical_to_serial() {
        // A chain with irregular in-degrees so shard boundaries differ by
        // granularity: a star plus a ring.
        let n = 97usize;
        let rows: Vec<Vec<(f64, u32)>> = (0..n)
            .map(|i| {
                let mut row = vec![(0.3 + (i as f64) * 0.01, ((i + 1) % n) as u32)];
                if i != 0 {
                    row.push((0.7, 0)); // everyone feeds the hub
                }
                if i == 0 {
                    for j in 1..n {
                        row.push((0.05, j as u32));
                    }
                }
                row
            })
            .collect();
        let c = Ctmc::new(rows, vec![0; n], 0).unwrap();
        let ts = [0.4, 1.7, 6.0, 6.0, 0.0];
        let serial = transient_many_with(&c, &ts, &TransientOptions::default());
        for threads in [2usize, 3, 4, 8] {
            for shard_min in [1usize, 7, 24] {
                let opts = TransientOptions::default()
                    .with_threads(threads)
                    .with_shard_min(shard_min);
                let sharded = transient_many_with(&c, &ts, &opts);
                assert_eq!(
                    sharded, serial,
                    "threads={threads} shard_min={shard_min}: not bitwise identical"
                );
            }
        }
    }

    /// Shard ranges cover `0..n` contiguously, are non-empty, and respect
    /// the requested count.
    #[test]
    fn balanced_ranges_partition_rows() {
        // in-degrees 0,3,0,1,5,1 → offsets
        let off = [0u32, 0, 3, 3, 4, 9, 10];
        for shards in 1..=6 {
            let ranges = balanced_ranges(&off, shards);
            assert!(!ranges.is_empty() && ranges.len() <= shards);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, 6);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                assert!(!w[1].is_empty());
            }
            assert!(!ranges[0].is_empty());
        }
    }

    /// Steady-state detection answers long-horizon grids from the
    /// converged vector: the detected run needs far fewer steps, agrees
    /// with the undetected run to well below 1e-10, and still matches the
    /// closed form.
    #[test]
    fn steady_detection_matches_undetected_sweep() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let grid: Vec<f64> = (1..=20).map(|k| f64::from(k) * 50.0).collect();
        let detected = transient_many_with(&c, &grid, &TransientOptions::default());
        let exact =
            transient_many_with(&c, &grid, &TransientOptions::default().with_steady_tol(0.0));
        for (i, &t) in grid.iter().enumerate() {
            let a = m / (l + m) + l / (l + m) * (-(l + m) * t).exp();
            assert!((detected[i][0] - exact[i][0]).abs() < 1e-11, "t={t}");
            assert!((detected[i][0] - a).abs() < 1e-10, "t={t}");
        }
    }

    /// A nearly-decoupled chain — two fast clusters bridged by one rare
    /// transition — must not trigger premature detection: the raw step
    /// delta is tiny long before the slow mode has equilibrated (the
    /// remaining distance is `δ / spectral gap`), so a plain
    /// `δ ≤ steady_tol` check would freeze the grid on a vector still
    /// far from steady. The projected-drift criterion has to see
    /// through it and keep the long-horizon point at the true steady
    /// state.
    #[test]
    fn detection_resists_nearly_decoupled_chains() {
        let c = Ctmc::new(
            vec![
                vec![(1.0, 1), (1e-4, 2)], // fast cluster A, rare escape
                vec![(1.0, 0)],
                vec![(1.0, 3)], // fast cluster B
                vec![(1.0, 2)],
            ],
            vec![0, 0, 1, 1],
            0,
        )
        .unwrap();
        // t1 sits where the raw step delta has already dropped below the
        // default steady_tol while ~1e-9 of slow-mode mass is still in
        // flight; t2 is far past mixing.
        let grid = [4.2e5, 1e8];
        let pis = transient_many_with(&c, &grid, &TransientOptions::default());
        let steady = crate::steady::steady_state(&c);
        for (a, b) in pis[1].iter().zip(&steady) {
            assert!(
                (a - b).abs() < 1e-10,
                "long-horizon point frozen before steady state: {a} vs {b}"
            );
        }
    }

    /// An absorbing chain converges once all mass is absorbed; detection
    /// must stop the sweep and keep the absorbed mass exact.
    #[test]
    fn steady_detection_on_absorbing_chain() {
        let l = 2.5;
        let c = Ctmc::new(vec![vec![(l, 1)], vec![]], vec![0, 1], 0).unwrap();
        let grid = [5.0, 50.0, 500.0];
        let pis = transient_many_with(&c, &grid, &TransientOptions::default());
        for (&t, pi) in grid.iter().zip(&pis) {
            let expected = 1.0 - (-l * t).exp();
            assert!((pi[1] - expected).abs() < 1e-10, "t={t}: {}", pi[1]);
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }
}
