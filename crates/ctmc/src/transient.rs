//! Transient analysis by uniformization.
//!
//! The distribution at time `t` is
//! `π(t) = Σ_k Poisson(Λt)[k] · π(0) Pᵏ` where `P = I + Q/Λ` is the
//! uniformized DTMC and `Λ ≥ max exit rate`. Poisson weights come from
//! [`crate::poisson::poisson_weights`].

use crate::chain::Ctmc;
use crate::poisson::poisson_weights;

/// Computes the state distribution at time `t` starting from the chain's
/// initial state.
///
/// # Panics
///
/// Panics if `t` is negative or not finite.
pub fn transient(ctmc: &Ctmc, t: f64) -> Vec<f64> {
    transient_from(ctmc, &ctmc.initial_distribution(), t)
}

/// Computes the state distribution at time `t` from an arbitrary initial
/// distribution `pi0`.
///
/// # Panics
///
/// Panics if `t` is negative or not finite, or if `pi0` has the wrong
/// length.
pub fn transient_from(ctmc: &Ctmc, pi0: &[f64], t: f64) -> Vec<f64> {
    assert!(t.is_finite() && t >= 0.0, "time must be non-negative, got {t}");
    assert_eq!(pi0.len(), ctmc.num_states(), "distribution length mismatch");
    if t == 0.0 {
        return pi0.to_vec();
    }
    let max_exit = ctmc.max_exit_rate();
    if max_exit == 0.0 {
        return pi0.to_vec(); // no transitions at all
    }
    // A little head-room keeps the DTMC aperiodic (self-loop mass > 0).
    let unif = max_exit * 1.02;
    let (left, weights) = poisson_weights(unif * t);

    let n = ctmc.num_states();
    let mut cur = pi0.to_vec();
    let mut result = vec![0.0f64; n];
    // Steps 0..left-1: only advance the power; steps left..: accumulate.
    for (k, _) in weights.iter().enumerate().take(0) {
        let _ = k; // (loop retained for clarity; accumulation happens below)
    }
    let mut step = 0usize;
    let total_steps = left + weights.len();
    while step < total_steps {
        if step >= left {
            let w = weights[step - left];
            for i in 0..n {
                result[i] += w * cur[i];
            }
        }
        step += 1;
        if step < total_steps {
            cur = dtmc_step(ctmc, &cur, unif);
        }
    }
    result
}

/// One step of the uniformized DTMC: `out = cur · (I + Q/Λ)`.
fn dtmc_step(ctmc: &Ctmc, cur: &[f64], unif: f64) -> Vec<f64> {
    let n = ctmc.num_states();
    let mut out = vec![0.0f64; n];
    for s in 0..n as u32 {
        let mass = cur[s as usize];
        if mass == 0.0 {
            continue;
        }
        let exit = ctmc.exit_rate(s);
        out[s as usize] += mass * (1.0 - exit / unif);
        for &(r, tgt) in ctmc.row(s) {
            out[tgt as usize] += mass * r / unif;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state machine point availability:
    /// A(t) = µ/(λ+µ) + λ/(λ+µ)·e^{-(λ+µ)t}.
    #[test]
    fn two_state_transient_matches_closed_form() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        for &t in &[0.0, 0.1, 1.0, 5.0, 50.0] {
            let pi = transient(&c, t);
            let a = m / (l + m) + l / (l + m) * (-(l + m) * t).exp();
            assert!((pi[0] - a).abs() < 1e-10, "t={t}: {} vs {a}", pi[0]);
        }
    }

    /// Pure death process: P(absorbed by t) = 1 - e^{-λt}.
    #[test]
    fn exponential_absorption() {
        let l = 0.37;
        let c = Ctmc::new(vec![vec![(l, 1)], vec![]], vec![0, 1], 0).unwrap();
        let pi = transient(&c, 2.0);
        assert!((pi[1] - (1.0 - (-l * 2.0f64).exp())).abs() < 1e-12);
    }

    /// Erlang-3 absorption time: P(done by t) follows the Erlang CDF.
    #[test]
    fn erlang_chain() {
        let r = 2.0;
        let c = Ctmc::new(
            vec![vec![(r, 1)], vec![(r, 2)], vec![(r, 3)], vec![]],
            vec![0, 0, 0, 1],
            0,
        )
        .unwrap();
        let t = 1.3;
        let pi = transient(&c, t);
        // Erlang-3 CDF = 1 - e^{-rt}(1 + rt + (rt)^2/2)
        let x = r * t;
        let expected = 1.0 - (-x).exp() * (1.0 + x + x * x / 2.0);
        assert!((pi[3] - expected).abs() < 1e-10);
    }

    #[test]
    fn long_horizon_converges_to_steady_state() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = transient(&c, 1e4);
        let steady = crate::steady::steady_state(&c);
        assert!((pi[0] - steady[0]).abs() < 1e-9);
    }

    #[test]
    fn distribution_stays_normalized() {
        let c = Ctmc::new(
            vec![vec![(1.0, 1), (2.0, 2)], vec![(0.5, 2)], vec![(3.0, 0)]],
            vec![0, 0, 0],
            0,
        )
        .unwrap();
        for &t in &[0.3, 3.0, 30.0] {
            let pi = transient(&c, t);
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        let c = Ctmc::new(vec![vec![]], vec![0], 0).unwrap();
        let _ = transient(&c, -1.0);
    }
}
