//! Transient analysis by uniformization — adaptive, support-windowed,
//! sharded and steady-state-aware.
//!
//! The distribution at time `t` is
//! `π(t) = Σ_k Poisson(Λt)[k] · π(0) Pᵏ` where `P = I + Q/Λ` is the
//! uniformized DTMC and `Λ ≥ max exit rate`. Poisson weights come from
//! [`crate::poisson::poisson_weights`], memoized per `Λ·Δt` through a
//! [`PoissonCache`] (uniform grids step by the same `Δt` every segment).
//!
//! Two engines implement the DTMC stepping, selected by
//! [`TransientOptions::adaptive`]:
//!
//! # The adaptive windowed engine (default)
//!
//! The default engine attacks the two costs the classical scheme pays on
//! dependability chains: a step count proportional to the **global**
//! maximum exit rate even when all probability mass sits on low-rate
//! states (stiff chains: repair rates dwarf failure rates), and a full
//! `n`-row traversal per step even when the mass occupies a handful of
//! states (early horizons).
//!
//! * **Locality reordering.** Once per solve the states are renumbered
//!   breadth-first from the initial support ([`Ctmc::bfs_order`]), and
//!   the transposed operator is stored with **raw** rates in that order
//!   (a `WindowedOp`). BFS levels make the set of rows reachable from
//!   any level prefix a contiguous, cache-resident row range. The
//!   permutation is applied at operator build and undone on output.
//! * **Support windowing.** The distribution's ε-support is tracked as a
//!   level frontier; each step gathers only the window `0..hi` of rows
//!   reachable from it. The frontier expands one level when the mass
//!   that could escape it in one step exceeds the per-step budget, and
//!   is otherwise frozen with the (bounded) escape mass accounted as
//!   truncation. Trailing levels whose total mass is below budget are
//!   zeroed between segments so the window can shrink again.
//! * **Per-segment Λ (adaptive uniformization).** Because rates are
//!   stored raw and `1/Λ` is folded into the gather as a scalar, `Λ` is
//!   switchable per grid segment with zero rebuild cost: each segment
//!   uniformizes at `Λ_seg = headroom · max exit over the ε-mass
//!   support` (the window states actually carrying more than a
//!   per-state share of the budget), which on stiff chains is orders of
//!   magnitude below the global rate — and the DTMC step count is
//!   proportional to `Λ_seg`. Window states hotter than `Λ_seg` (the
//!   uniformized step is undefined for them) are **exit-capped**: they
//!   carry only truncation-grade dust, and are zeroed after every step
//!   with the gross inflow charged against the budget. If real mass
//!   heads their way the budget trips and the segment restarts from its
//!   entry distribution with `Λ` doubled (capped at the global rate), so
//!   restarts are logarithmically bounded.
//!
//! ## Error budget
//!
//! The engine's deviation from the exact expansion is the sum of
//!
//! * the Poisson truncation of [`crate::poisson::poisson_weights`]
//!   (relative tail cutoff `1e-18`, total mass error well below `1e-15`),
//!   paid by both engines, and
//! * the support truncation: per grid segment, the mass dropped across
//!   the four truncation channels — trailing-level shrinking between
//!   segments, up-front zeroing of dust sitting on states hotter than
//!   `Λ_seg`, frozen-frontier escape, and the per-step inflow into
//!   exit-capped states — is bounded by
//!   [`TransientOptions::support_tol`], a quarter of the budget per
//!   channel. A grid visited in `k` segments therefore answers within
//!   `k · support_tol + O(1e-15)` (sup-norm) of the exact engine; the
//!   default `support_tol = 1e-14` keeps a 50-point grid at `≤ 5e-13` —
//!   comfortably inside the `1e-10` cross-engine gates. With
//!   `support_tol = 0` the windowing is lossless (the window expands
//!   whenever any mass could escape it, and `Λ_seg` covers every state
//!   carrying mass).
//!
//! Within the adaptive engine, results are **bitwise identical for every
//! thread count**: the sharded and serial paths are literally the same
//! code (a worker gang of size 1 collapses to the serial loop), every
//! window row is computed by the same per-row kernel, and all control
//! decisions (frontier expansion, Λ restarts, steady-state detection) are
//! taken by one worker from the assembled vector.
//!
//! # The exact global-Λ engine (`adaptive: false`)
//!
//! The reference engine: the hot kernel is the DTMC matrix-vector product
//! `π ← π P`, computed as a **gather** over the transposed CSR adjacency:
//! state `i`'s next mass is `π[i]·stay[i] + Σ_{j→i} π[j]·q_{ji}/Λ`, one
//! contiguous slice per state with the transition probabilities prescaled
//! once per solve, over **all** rows at the **global** uniformization
//! rate. Because every row is computed independently from the previous
//! vector, the rows can be partitioned into contiguous shards (balanced
//! by transition count) and fanned out over [`ioimc::par`] scoped worker
//! threads with double-buffered per-shard writes — and the result is
//! **bitwise identical** for every thread count and shard size: each row
//! runs exactly the per-row code of the serial path, and the shard-wise
//! maximum used for steady-state detection reduces to the same global
//! maximum. Configure via [`TransientOptions`] (reachable from
//! [`crate::SolverOptions::transient`]).
//!
//! # Steady-state detection
//!
//! When the projected total remaining drift of the uniformized chain —
//! the sup-norm step delta `‖πP − π‖∞` divided by the spectral headroom
//! `1 − ρ̂` estimated from the recent delta history (see
//! `SteadyDetector`) — falls below [`TransientOptions::steady_tol`], the
//! chain has converged: the remaining Poisson tail mass is assigned to
//! the converged vector and the sweep stops early. The batched entry
//! points additionally answer **all later grid points** from that
//! vector, so long-horizon grids cost only as many DTMC steps as the
//! chain's mixing time. Detection is disabled with `steady_tol = 0.0`.
//!
//! # Batching
//!
//! Curve-shaped workloads should use [`transient_many`]: it evaluates a
//! whole time grid in **one** incremental uniformization sweep (the chain
//! is stepped from each grid point to the next by the Markov property)
//! instead of one independent sweep per point, turning the
//! `O(Λ·Σtᵢ)` cost of the scalar loop into `O(Λ·max tᵢ)` — and less than
//! that once steady-state detection kicks in.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, RwLock};

use crate::chain::Ctmc;
use crate::context::{MeasureContext, SolveCounters};
use crate::poisson::{PoissonCache, PoissonWeights};
use crate::solver::{TransientOptions, UNIF_HEADROOM};

/// Instrumentation: DTMC matrix-vector products performed process-wide
/// (see [`dtmc_steps_performed`]). A sharded step counts once — it is one
/// matrix-vector product no matter how many workers computed it.
static DTMC_STEPS: AtomicU64 = AtomicU64::new(0);
/// Instrumentation: uniformization sweeps started process-wide.
static SWEEPS: AtomicU64 = AtomicU64::new(0);

/// Total DTMC matrix-vector products performed **process-wide** since the
/// last [`reset_solver_counters`]. One product is the unit of transient
/// solver work, so batching and steady-state-detection wins show up
/// directly in this counter; it exists for benchmarks and regression
/// tests, not for control flow.
///
/// The counters are atomics so sweeps running on worker threads (sharded
/// steps, parallel `Session` prefetches, modular analyses) are neither
/// lost nor raced; tests that assert on deltas must serialize against
/// other counter-touching tests in the same process.
pub fn dtmc_steps_performed() -> u64 {
    DTMC_STEPS.load(Ordering::Relaxed)
}

/// Total uniformization sweeps (scalar solves or batched grid segments)
/// started process-wide since the last [`reset_solver_counters`].
pub fn sweeps_performed() -> u64 {
    SWEEPS.load(Ordering::Relaxed)
}

/// Resets the process-wide [`dtmc_steps_performed`]/[`sweeps_performed`]
/// counters to zero.
pub fn reset_solver_counters() {
    DTMC_STEPS.store(0, Ordering::Relaxed);
    SWEEPS.store(0, Ordering::Relaxed);
}

/// Records one uniformization sweep: always on the process-wide counter,
/// and additionally on the per-context sink when one is threaded through
/// (the `_ctx` entry points).
#[inline]
fn count_sweep(sink: Option<&SolveCounters>) {
    SWEEPS.fetch_add(1, Ordering::Relaxed);
    if let Some(c) = sink {
        c.count_sweep();
    }
}

/// Records one DTMC matrix-vector product (process-wide plus the optional
/// per-context sink).
#[inline]
fn count_step(sink: Option<&SolveCounters>) {
    DTMC_STEPS.fetch_add(1, Ordering::Relaxed);
    if let Some(c) = sink {
        c.count_step();
    }
}

/// Computes the state distribution at time `t` starting from the chain's
/// initial state.
///
/// # Panics
///
/// Panics if `t` is negative or not finite.
pub fn transient(ctmc: &Ctmc, t: f64) -> Vec<f64> {
    transient_from(ctmc, &ctmc.initial_distribution(), t)
}

/// [`transient`] with explicit engine configuration.
///
/// # Panics
///
/// Panics if `t` is negative or not finite.
pub fn transient_with(ctmc: &Ctmc, t: f64, opts: &TransientOptions) -> Vec<f64> {
    transient_from_with(ctmc, &ctmc.initial_distribution(), t, opts)
}

/// Computes the state distribution at time `t` from an arbitrary initial
/// distribution `pi0`.
///
/// # Panics
///
/// Panics if `t` is negative or not finite, or if `pi0` has the wrong
/// length.
pub fn transient_from(ctmc: &Ctmc, pi0: &[f64], t: f64) -> Vec<f64> {
    transient_from_with(ctmc, pi0, t, &TransientOptions::default())
}

/// [`transient_from`] with explicit engine configuration.
///
/// # Panics
///
/// Panics if `t` is negative or not finite, or if `pi0` has the wrong
/// length.
pub fn transient_from_with(ctmc: &Ctmc, pi0: &[f64], t: f64, opts: &TransientOptions) -> Vec<f64> {
    grid_solve(ctmc, pi0, &[t], opts, None)
        .pop()
        .expect("one grid point")
}

/// Computes the state distributions at every time in `ts` (any order,
/// duplicates allowed) starting from the chain's initial state, sharing
/// one incremental uniformization sweep across the whole grid.
///
/// Returns one distribution per entry of `ts`, in the order given.
///
/// # Panics
///
/// Panics if any time is negative or not finite.
pub fn transient_many(ctmc: &Ctmc, ts: &[f64]) -> Vec<Vec<f64>> {
    transient_many_from(ctmc, &ctmc.initial_distribution(), ts)
}

/// [`transient_many`] with explicit engine configuration.
///
/// # Panics
///
/// Panics if any time is negative or not finite.
pub fn transient_many_with(ctmc: &Ctmc, ts: &[f64], opts: &TransientOptions) -> Vec<Vec<f64>> {
    transient_many_from_with(ctmc, &ctmc.initial_distribution(), ts, opts)
}

/// Computes the state distributions at every time in `ts` from an
/// arbitrary initial distribution `pi0` in one incremental sweep: the grid
/// is visited in ascending order and the chain is advanced from each grid
/// point to the next (exact by the Markov property), so the total work is
/// proportional to `Λ·max(ts)` plus a per-point truncation overhead,
/// instead of the scalar loop's `Λ·Σts` — or less, once steady-state
/// detection answers the tail of the grid from the converged vector.
///
/// # Panics
///
/// Panics if any time is negative or not finite, or if `pi0` has the
/// wrong length.
pub fn transient_many_from(ctmc: &Ctmc, pi0: &[f64], ts: &[f64]) -> Vec<Vec<f64>> {
    transient_many_from_with(ctmc, pi0, ts, &TransientOptions::default())
}

/// [`transient_many_from`] with explicit engine configuration.
///
/// # Panics
///
/// Panics if any time is negative or not finite, or if `pi0` has the
/// wrong length.
pub fn transient_many_from_with(
    ctmc: &Ctmc,
    pi0: &[f64],
    ts: &[f64],
    opts: &TransientOptions,
) -> Vec<Vec<f64>> {
    grid_solve(ctmc, pi0, ts, opts, None)
}

/// [`transient_many_from_with`] with a caller-provided [`PoissonCache`],
/// so repeated solves over the same grid (several measures of one batched
/// query, Simpson integration, repeated sessions) expand each distinct
/// `Λ·Δt` weight vector once.
///
/// # Panics
///
/// Panics if any time is negative or not finite, or if `pi0` has the
/// wrong length.
pub fn transient_many_from_cached(
    ctmc: &Ctmc,
    pi0: &[f64],
    ts: &[f64],
    opts: &TransientOptions,
    cache: &PoissonCache,
) -> Vec<Vec<f64>> {
    grid_solve(ctmc, pi0, ts, opts, Some(cache))
}

/// [`transient_many_from_cached`] driven through a full
/// [`MeasureContext`]: the context's Poisson memo answers the weight
/// lookups and the context's [`SolveCounters`] record the sweeps and
/// DTMC steps this solve performs — in addition to (never instead of)
/// the process-wide instrumentation counters. This is the entry point
/// for hosts running several analysis sessions in one process, where
/// the process-wide counters cross-contaminate.
///
/// # Panics
///
/// Panics if any time is negative or not finite, or if `pi0` has the
/// wrong length.
pub fn transient_many_from_ctx(
    ctmc: &Ctmc,
    pi0: &[f64],
    ts: &[f64],
    opts: &TransientOptions,
    ctx: &MeasureContext,
) -> Vec<Vec<f64>> {
    GridSolver::new(ctmc, opts, &ctx.poisson)
        .with_counters(&ctx.counters)
        .solve_from(pi0, ts)
}

/// The shared grid driver: one [`GridSolver`] per call.
fn grid_solve(
    ctmc: &Ctmc,
    pi0: &[f64],
    ts: &[f64],
    opts: &TransientOptions,
    cache: Option<&PoissonCache>,
) -> Vec<Vec<f64>> {
    let local_cache;
    let cache = match cache {
        Some(c) => c,
        None => {
            local_cache = PoissonCache::new();
            &local_cache
        }
    };
    GridSolver::new(ctmc, opts, cache).solve_from(pi0, ts)
}

/// A reusable grid driver over one chain: validates inputs, visits each
/// grid in ascending order, and advances the chain segment by segment
/// through a lazily built (and then reused) [`Stepper`]. Crate-internal
/// so long chunked integrations (`csl::interval_down_fraction_with`) can
/// amortize the stepping engine across chunks instead of rebuilding the
/// prescaled transposed CSR per call.
///
/// Successive [`GridSolver::solve_from`] calls are treated as **one
/// trajectory** continued piecewise (each call's `pi0` is the previous
/// call's last result): once a segment reports steady-state convergence,
/// all later grid points — in this call *and* in later calls — are
/// answered from the converged vector.
pub(crate) struct GridSolver<'a> {
    ctmc: &'a Ctmc,
    opts: &'a TransientOptions,
    cache: &'a PoissonCache,
    /// Per-context counter sink; the process-wide statics are always fed.
    counters: Option<&'a SolveCounters>,
    stepper: Option<Stepper>,
    adaptive: Option<AdaptiveEngine>,
    max_exit: f64,
    unif: f64,
    converged: bool,
}

impl<'a> GridSolver<'a> {
    pub(crate) fn new(ctmc: &'a Ctmc, opts: &'a TransientOptions, cache: &'a PoissonCache) -> Self {
        let max_exit = ctmc.max_exit_rate();
        Self {
            ctmc,
            opts,
            cache,
            counters: None,
            stepper: None,
            adaptive: None,
            max_exit,
            unif: max_exit * UNIF_HEADROOM,
            converged: false,
        }
    }

    /// Routes this solver's work counts into a per-context sink as well.
    pub(crate) fn with_counters(mut self, counters: &'a SolveCounters) -> Self {
        self.counters = Some(counters);
        self
    }

    pub(crate) fn solve_from(&mut self, pi0: &[f64], ts: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(
            pi0.len(),
            self.ctmc.num_states(),
            "distribution length mismatch"
        );
        for &t in ts {
            assert!(
                t.is_finite() && t >= 0.0,
                "time must be non-negative, got {t}"
            );
        }
        if self.opts.adaptive && self.max_exit > 0.0 {
            return self.solve_from_adaptive(pi0, ts);
        }
        let mut order: Vec<usize> = (0..ts.len()).collect();
        order.sort_by(|&a, &b| ts[a].total_cmp(&ts[b]));

        let mut results: Vec<Vec<f64>> = vec![Vec::new(); ts.len()];
        let mut cur = pi0.to_vec();
        let mut cur_t = 0.0f64;
        for &i in &order {
            let dt = ts[i] - cur_t;
            if dt > 0.0 && self.max_exit > 0.0 && !self.converged {
                // Segment boundary: poll the ambient budget on the
                // control thread (no sweep workers are in flight here).
                ioimc::budget::checkpoint();
                let (ctmc, unif, opts) = (self.ctmc, self.unif, self.opts);
                let st = self
                    .stepper
                    .get_or_insert_with(|| Stepper::new(ctmc, unif, opts));
                let pw = self.cache.get(self.unif * dt);
                count_sweep(self.counters);
                let (res, conv) = st.sweep(&cur, &pw, self.opts.steady_tol, self.counters);
                cur = res;
                cur_t = ts[i];
                self.converged = conv;
            }
            results[i] = cur.clone();
        }
        results
    }

    /// The adaptive-engine grid loop: the working distribution lives in
    /// the engine's permuted space across segments (and across
    /// [`GridSolver::solve_from`] calls); each grid point un-permutes a
    /// snapshot into original state order.
    fn solve_from_adaptive(&mut self, pi0: &[f64], ts: &[f64]) -> Vec<Vec<f64>> {
        let mut order: Vec<usize> = (0..ts.len()).collect();
        order.sort_by(|&a, &b| ts[a].total_cmp(&ts[b]));
        let rebuild = match &mut self.adaptive {
            // `load` adopts `pi0` unless it carries mass the stored
            // ordering considers unreachable (possible only when a caller
            // continues one solver with an unrelated distribution).
            Some(e) => !e.load(pi0),
            None => true,
        };
        if rebuild {
            self.adaptive = Some(AdaptiveEngine::new(self.ctmc, pi0, self.opts));
        }
        let engine = self.adaptive.as_mut().expect("just ensured");
        let mut results: Vec<Vec<f64>> = vec![Vec::new(); ts.len()];
        let mut cur_t = 0.0f64;
        for &i in &order {
            let dt = ts[i] - cur_t;
            if dt > 0.0 && !self.converged {
                ioimc::budget::checkpoint();
                self.converged = engine.advance(dt, self.cache, self.opts, self.counters);
                cur_t = ts[i];
            }
            results[i] = engine.output();
        }
        results
    }
}

/// The steady-state detector fed one sup-norm step delta per DTMC step.
///
/// A small step delta alone does **not** mean the iterates are near the
/// invariant vector: a slow mode with per-step contraction `ρ` close to 1
/// still has `‖π_k − π_∞‖ ≈ δ_k / (1 − ρ)` left to travel, which can be
/// orders of magnitude above `δ_k` on nearly-decoupled chains (rare
/// failure rates next to fast repair rates — exactly the dependability
/// regime). The detector therefore estimates the contraction from the
/// recent delta history (`ρ̂` = the largest of the last 8 step-to-step
/// ratios) and fires only when the **projected total remaining drift**
/// `δ / (1 − ρ̂)` is within tolerance. When one mode dominates, the
/// projection is tight; a fast-decaying transient cannot fake it because
/// the ratio window has to see eight consecutive small ratios first.
///
/// The decision consumes only the global (order-independent) sup-norm
/// delta, so the serial and sharded sweeps reach bitwise-identical
/// verdicts.
struct SteadyDetector {
    tol: f64,
    /// Last step-to-step delta ratios, clamped to `[0, 1]`; seeded with
    /// the conservative 1.0 so no verdict fires before a full window.
    ratios: [f64; 8],
    idx: usize,
    prev_delta: f64,
}

impl SteadyDetector {
    fn new(tol: f64) -> Self {
        Self {
            tol,
            ratios: [1.0; 8],
            idx: 0,
            prev_delta: f64::INFINITY,
        }
    }

    /// Feeds the sup-norm delta of one step; returns whether the chain
    /// is steady to within the tolerance.
    fn feed(&mut self, delta: f64) -> bool {
        if self.tol <= 0.0 {
            return false;
        }
        if delta == 0.0 {
            return true; // the iterate is exactly invariant
        }
        let ratio = if self.prev_delta.is_finite() && self.prev_delta > 0.0 {
            (delta / self.prev_delta).min(1.0)
        } else {
            1.0
        };
        self.ratios[self.idx] = ratio;
        self.idx = (self.idx + 1) % self.ratios.len();
        self.prev_delta = delta;
        let rho = self.ratios.iter().fold(0.0f64, |a, &b| a.max(b));
        rho < 1.0 && delta <= self.tol * (1.0 - rho)
    }
}

/// The uniformization stepping engine for one chain and one `Λ`: the
/// prescaled transposed adjacency (`p = rate/Λ` per incoming transition),
/// the per-state self-loop probabilities, and the shard partition.
struct Stepper {
    n: usize,
    /// Self-loop probability `1 - exit/Λ` per state.
    stay: Vec<f64>,
    /// Transposed CSR offsets (`n + 1` entries).
    inc_off: Vec<u32>,
    /// Prescaled incoming transition probabilities, row-major.
    inc_p: Vec<f64>,
    /// Incoming transition sources, parallel to `inc_p`.
    inc_src: Vec<u32>,
    /// Contiguous row ranges, one per worker, balanced by transition
    /// count. `len() == 1` selects the serial path.
    shards: Vec<std::ops::Range<usize>>,
}

impl Stepper {
    fn new(ctmc: &Ctmc, unif: f64, opts: &TransientOptions) -> Self {
        let n = ctmc.num_states();
        // The solver-shard boundary: the last serial point before the
        // stepping gang exists. Chaos faults injected here (the
        // `session.shard` failpoint, via the ambient hook) unwind or
        // stall on the calling thread — never inside the barrier-synced
        // gang, where a panicking worker would deadlock its peers.
        ioimc::failpoint::hit("session.shard");
        let (stay, inc_off, inc_p, inc_src) = prescaled_transpose(ctmc, unif);
        let workers = ioimc::par::effective_threads(opts.threads);
        let max_shards = (n / opts.shard_min.max(1)).max(1);
        let shards = balanced_ranges(&inc_off, workers.min(max_shards));
        Self {
            n,
            stay,
            inc_off,
            inc_p,
            inc_src,
            shards,
        }
    }

    /// One state's next mass: `π[i]·stay[i] + Σ p·π[src]` over the
    /// state's contiguous incoming slice. This is the **only** place a
    /// row is computed — the serial and sharded paths both call it, which
    /// is what makes their results bitwise identical.
    #[inline]
    fn row_value(&self, cur: &[f64], i: usize) -> f64 {
        let lo = self.inc_off[i] as usize;
        let hi = self.inc_off[i + 1] as usize;
        let mut acc = cur[i] * self.stay[i];
        for (&p, &j) in self.inc_p[lo..hi].iter().zip(&self.inc_src[lo..hi]) {
            acc += p * cur[j as usize];
        }
        acc
    }

    /// One uniformization sweep: `π(Δt)` from `pi0` with the given
    /// Poisson weights; returns the result and whether the **result** is
    /// steady: detection fired (`tol > 0` and the step delta dropped
    /// below it) *and* the Poisson mixture it produced is itself within
    /// `tol` of the invariant iterate. The second condition is what lets
    /// the grid driver answer later points from the result — the DTMC
    /// iterates converging mid-sweep is not enough, because early
    /// (pre-convergence) iterates still carry Poisson weight in the
    /// mixture.
    fn sweep(
        &self,
        pi0: &[f64],
        pw: &PoissonWeights,
        tol: f64,
        counters: Option<&SolveCounters>,
    ) -> (Vec<f64>, bool) {
        if self.shards.len() <= 1 {
            self.sweep_serial(pi0, pw, tol, counters)
        } else {
            self.sweep_sharded(pi0, pw, tol, counters)
        }
    }

    fn sweep_serial(
        &self,
        pi0: &[f64],
        pw: &PoissonWeights,
        tol: f64,
        counters: Option<&SolveCounters>,
    ) -> (Vec<f64>, bool) {
        let n = self.n;
        let total = pw.total_steps();
        // Double-buffered stepping: `cur` and `nxt` swap roles each step,
        // so the whole sweep costs two distribution buffers total.
        let mut cur = pi0.to_vec();
        let mut nxt = vec![0.0f64; n];
        let mut result = vec![0.0f64; n];
        let mut cum = 0.0f64;
        let mut detector = SteadyDetector::new(tol);
        // Steps 0..left-1 only advance the power; steps left.. accumulate.
        for step in 0..total {
            if step >= pw.left {
                let w = pw.weights[step - pw.left];
                for i in 0..n {
                    result[i] += w * cur[i];
                }
                cum += w;
            }
            if step + 1 == total {
                break;
            }
            // Serial loop, no workers: a deadline unwind is safe at any
            // step. Gate the poll so long sweeps pay ~nothing.
            if step & 0x3FF == 0 {
                ioimc::budget::checkpoint();
            }
            count_step(counters);
            let mut delta = 0.0f64;
            for i in 0..n {
                let v = self.row_value(&cur, i);
                delta = delta.max((v - cur[i]).abs());
                nxt[i] = v;
            }
            std::mem::swap(&mut cur, &mut nxt);
            if detector.feed(delta) {
                // Converged: the remaining Poisson tail all sits on the
                // (now invariant) current vector.
                let tail = 1.0 - cum;
                let mut res_diff = 0.0f64;
                for i in 0..n {
                    result[i] += tail * cur[i];
                    res_diff = res_diff.max((result[i] - cur[i]).abs());
                }
                return (result, res_diff <= tol);
            }
        }
        (result, false)
    }

    /// The sharded sweep: one scoped worker per shard, lockstep-stepped
    /// with a [`Barrier`]. Each step has two phases — every worker gathers
    /// its shard's rows from the shared previous vector into its private
    /// out-buffer (and accumulates its shard of the weighted result), then
    /// worker 0 alone copies the shard buffers back into the shared
    /// vector, bumps the step counter and reduces the shard deltas for
    /// steady-state detection. All workers take identical branches, so
    /// the barrier stays aligned and the result is bitwise identical to
    /// [`Stepper::sweep_serial`].
    fn sweep_sharded(
        &self,
        pi0: &[f64],
        pw: &PoissonWeights,
        tol: f64,
        counters: Option<&SolveCounters>,
    ) -> (Vec<f64>, bool) {
        let nshards = self.shards.len();
        let total = pw.total_steps();
        let cur = RwLock::new(pi0.to_vec());
        let outs: Vec<Mutex<Vec<f64>>> = self
            .shards
            .iter()
            .map(|r| Mutex::new(vec![0.0; r.len()]))
            .collect();
        let results: Vec<Mutex<Vec<f64>>> = self
            .shards
            .iter()
            .map(|r| Mutex::new(vec![0.0; r.len()]))
            .collect();
        let deltas: Vec<Mutex<f64>> = (0..nshards).map(|_| Mutex::new(0.0)).collect();
        // Sup-distance between each shard's final result and the
        // converged iterate, filled in the early-stop branch only.
        let res_diffs: Vec<Mutex<f64>> = (0..nshards).map(|_| Mutex::new(f64::INFINITY)).collect();
        let barrier = Barrier::new(nshards);
        let stop = AtomicBool::new(false);
        // Fed only by worker 0 in the assembly phase, from the same
        // global delta sequence the serial path sees.
        let detector = Mutex::new(SteadyDetector::new(tol));
        ioimc::par::run_workers(nshards, |w| {
            let range = self.shards[w].clone();
            let mut cum = 0.0f64;
            for step in 0..total {
                let last = step + 1 == total;
                {
                    let cur_g = cur.read().expect("no poisoned buffer");
                    if step >= pw.left {
                        let wt = pw.weights[step - pw.left];
                        let mut res = results[w].lock().expect("no poisoned shard");
                        for (k, i) in range.clone().enumerate() {
                            res[k] += wt * cur_g[i];
                        }
                        cum += wt;
                    }
                    if !last {
                        let mut out = outs[w].lock().expect("no poisoned shard");
                        let mut dmax = 0.0f64;
                        for (k, i) in range.clone().enumerate() {
                            let v = self.row_value(&cur_g, i);
                            dmax = dmax.max((v - cur_g[i]).abs());
                            out[k] = v;
                        }
                        *deltas[w].lock().expect("no poisoned shard") = dmax;
                    }
                }
                barrier.wait();
                if !last && w == 0 {
                    // Assembly phase: the other workers are parked on the
                    // second barrier, so the write lock is uncontended.
                    let mut cur_g = cur.write().expect("no poisoned buffer");
                    for (s, r) in self.shards.iter().enumerate() {
                        cur_g[r.clone()]
                            .copy_from_slice(&outs[s].lock().expect("no poisoned shard"));
                    }
                    count_step(counters);
                    let delta = deltas
                        .iter()
                        .fold(0.0f64, |a, d| a.max(*d.lock().expect("no poisoned shard")));
                    if detector.lock().expect("no poisoned detector").feed(delta) {
                        stop.store(true, Ordering::SeqCst);
                    }
                }
                barrier.wait();
                if last {
                    break;
                }
                if stop.load(Ordering::SeqCst) {
                    let cur_g = cur.read().expect("no poisoned buffer");
                    let tail = 1.0 - cum;
                    let mut res = results[w].lock().expect("no poisoned shard");
                    let mut dmax = 0.0f64;
                    for (k, i) in range.clone().enumerate() {
                        res[k] += tail * cur_g[i];
                        dmax = dmax.max((res[k] - cur_g[i]).abs());
                    }
                    *res_diffs[w].lock().expect("no poisoned shard") = dmax;
                    break;
                }
            }
        });
        let mut result = vec![0.0f64; self.n];
        for (s, r) in self.shards.iter().enumerate() {
            result[r.clone()].copy_from_slice(&results[s].lock().expect("no poisoned shard"));
        }
        let steady = stop.load(Ordering::SeqCst)
            && res_diffs
                .iter()
                .fold(0.0f64, |a, d| a.max(*d.lock().expect("no poisoned shard")))
                <= tol;
        (result, steady)
    }
}

/// Geometric Λ escalation factor applied when a segment restart is
/// forced by mass reaching an exit-capped state faster than the budget
/// allows: doubling bounds the restarts per segment to
/// `log₂(Λ_global / Λ_initial)`.
const LAMBDA_ESCALATION: f64 = 2.0;

/// The chain's generator in the adaptive engine's working form: the
/// transposed CSR adjacency with **raw** rates (so `1/Λ` folds into the
/// gather as a per-segment scalar), permuted into the BFS locality order
/// of [`Ctmc::bfs_order`] so the ε-support's reachable row window is a
/// contiguous prefix. Built once per solve.
struct WindowedOp {
    n: usize,
    /// Row → original state id (BFS order, unreachable states last).
    perm: Vec<u32>,
    /// Original state id → row.
    inv: Vec<u32>,
    /// Exit rates in row order.
    exit: Vec<f64>,
    /// Transposed CSR offsets (`n + 1` entries).
    inc_off: Vec<u32>,
    /// Raw incoming transition rates, row-major.
    inc_rate: Vec<f64>,
    /// Incoming transition source rows, parallel to `inc_rate` and
    /// ascending within each row (so a window gather can stop at the
    /// first out-of-window source).
    inc_src: Vec<u32>,
    /// BFS level boundaries in rows (`levels + 1` entries).
    level_off: Vec<u32>,
    /// BFS level per row (reachable rows only; unreachable rows hold
    /// `levels`).
    level_of: Vec<u32>,
    /// Rows `reachable..` can never carry mass flowing out of the roots.
    reachable: usize,
    /// Per row: total outgoing rate into the **next** BFS level — the
    /// only edges that can carry mass out of a level-prefix window, so
    /// `Σ π[j]·fwd_rate[j]/Λ` over the frontier level bounds the
    /// one-step escape mass.
    fwd_rate: Vec<f64>,
    /// `headroom · global max exit` — the Λ escalation cap; at this rate
    /// every window state has a nonnegative self-loop probability and no
    /// restart can ever be needed.
    global_unif: f64,
}

impl WindowedOp {
    fn new(ctmc: &Ctmc, roots: impl IntoIterator<Item = u32>) -> Self {
        let n = ctmc.num_states();
        let order = ctmc.bfs_order(roots);
        let inv = order.inverse();
        let levels = order.num_levels();
        let exit: Vec<f64> = order.perm.iter().map(|&s| ctmc.exit_rate(s)).collect();
        let mut level_of = vec![levels as u32; n];
        for l in 0..levels {
            for row in &mut level_of[order.level_off[l] as usize..order.level_off[l + 1] as usize] {
                *row = l as u32;
            }
        }
        // Forward (next-level) rate per row, from the outgoing adjacency.
        let mut fwd_rate = vec![0.0f64; n];
        for (row, &s) in order.perm.iter().enumerate().take(order.reachable) {
            let boundary = order.level_off[level_of[row] as usize + 1];
            fwd_rate[row] = ctmc
                .row(s)
                .iter()
                .filter(|&&(_, t)| inv[t as usize] >= boundary)
                .map(|&(r, _)| r)
                .sum();
        }
        // Transposed CSR in row space. Scattering sources in ascending
        // row order leaves every row's source list sorted.
        let m = ctmc.num_transitions();
        let mut counts = vec![0u32; n + 1];
        for s in 0..n as u32 {
            for &(_, t) in ctmc.row(s) {
                counts[inv[t as usize] as usize + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let inc_off = counts.clone();
        let mut cursor = counts;
        let mut inc_rate = vec![0.0f64; m];
        let mut inc_src = vec![0u32; m];
        for (row, &s) in order.perm.iter().enumerate() {
            for &(r, t) in ctmc.row(s) {
                let dst = inv[t as usize] as usize;
                let slot = cursor[dst] as usize;
                inc_rate[slot] = r;
                inc_src[slot] = row as u32;
                cursor[dst] += 1;
            }
        }
        Self {
            n,
            perm: order.perm,
            inv,
            exit,
            inc_off,
            inc_rate,
            inc_src,
            level_off: order.level_off,
            level_of,
            reachable: order.reachable,
            fwd_rate,
            global_unif: ctmc.max_exit_rate() * UNIF_HEADROOM,
        }
    }

    /// One window row's next mass under uniformization rate `1/inv_l`:
    /// `π[i] + (Σ q_{ji}·π[j] − exit_i·π[i]) / Λ`, gathering only sources
    /// inside the window (rows `>= hi` hold exactly zero). The **only**
    /// place a window row is computed, for every worker count.
    #[inline]
    fn row_value(&self, cur: &[f64], i: usize, inv_l: f64, hi: usize) -> f64 {
        let lo = self.inc_off[i] as usize;
        let up = self.inc_off[i + 1] as usize;
        let mut acc = 0.0f64;
        for (&r, &j) in self.inc_rate[lo..up].iter().zip(&self.inc_src[lo..up]) {
            if j as usize >= hi {
                break;
            }
            acc += r * cur[j as usize];
        }
        cur[i] + inv_l * (acc - self.exit[i] * cur[i])
    }

    /// Transition-balanced contiguous chunk of the window `0..hi` for
    /// worker `w` of `workers` (a row weighs `1 +` its in-degree). Chunk
    /// boundaries depend on the worker count, but every row is computed
    /// by the same kernel regardless, so results do not.
    fn chunk(&self, hi: usize, w: usize, workers: usize) -> std::ops::Range<usize> {
        let weight = |i: usize| i as u64 + u64::from(self.inc_off[i]);
        let total = weight(hi);
        let bound = |k: usize| -> usize {
            let target = total * k as u64 / workers as u64;
            // Smallest row index whose cumulative weight reaches target.
            let (mut lo, mut up) = (0usize, hi);
            while lo < up {
                let mid = (lo + up) / 2;
                if weight(mid) < target {
                    lo = mid + 1;
                } else {
                    up = mid;
                }
            }
            lo
        };
        bound(w)..bound(w + 1)
    }
}

/// Per-segment control state of a windowed sweep. In the gang path it is
/// touched only by worker 0 between barriers; the serial path owns it
/// directly. Both paths drive it through the same helpers in the same
/// order, which is what keeps their results bitwise identical.
struct SegmentCtrl {
    /// Current frontier level (window = rows `0..level_off[lvl + 1]`).
    lvl: usize,
    /// Exit-capped rows: inside the gather window but with
    /// `exit > Λ_seg`, so the uniformized step is not defined for them —
    /// they are zeroed after every step with the (gross) inflow charged
    /// against the truncation budget. They carry only ε-support dust by
    /// construction of `Λ_seg`; if real mass heads their way the budget
    /// trips and the segment restarts with an escalated Λ.
    capped: Vec<u32>,
    /// Poisson weight mass accumulated into the result so far.
    cum: f64,
    /// Truncated mass (frozen-frontier escape bound + capped inflow).
    leaked: f64,
    detector: SteadyDetector,
    /// Whether the converged result itself is within tolerance of the
    /// invariant iterate (set by the early-stop branch).
    res_steady: bool,
}

impl SegmentCtrl {
    /// Pre-step frontier decision: expand the window one level when the
    /// mass that could escape it this step exceeds the budget (newly
    /// admitted rows with `exit > Λ` join the capped set), otherwise
    /// freeze and account the escape bound. Returns the window end.
    fn expand(&mut self, op: &WindowedOp, cur: &[f64], lambda: f64, budget: f64) -> usize {
        let inv_l = 1.0 / lambda;
        let mut hi = op.level_off[self.lvl + 1] as usize;
        if hi < op.reachable {
            let frontier = op.level_off[self.lvl] as usize..hi;
            let escape: f64 = cur[frontier.clone()]
                .iter()
                .zip(&op.fwd_rate[frontier])
                .map(|(&p, &f)| p * f)
                .sum::<f64>()
                * inv_l;
            if escape > budget {
                self.lvl += 1;
                let new_hi = op.level_off[self.lvl + 1] as usize;
                for row in hi..new_hi {
                    if op.exit[row] > lambda {
                        self.capped.push(row as u32);
                    }
                }
                hi = new_hi;
            } else {
                self.leaked += escape;
            }
        }
        hi
    }

    /// Post-step settlement of the capped rows: zero them and charge the
    /// gross inflow against the budget. Returns `true` when the inflow
    /// breaches it — the segment must restart with a larger Λ.
    fn settle_capped(&mut self, nxt: &mut [f64], budget: f64) -> bool {
        if self.capped.is_empty() {
            return false;
        }
        let mut inflow = 0.0f64;
        for &c in &self.capped {
            inflow += nxt[c as usize];
            nxt[c as usize] = 0.0;
        }
        self.leaked += inflow;
        inflow > budget
    }
}

/// The adaptive windowed uniformization engine: the locality-reordered
/// operator plus the working distribution in permuted row space,
/// persistent across grid segments (and across `GridSolver::solve_from`
/// calls) so the operator is built once per solve.
struct AdaptiveEngine {
    op: WindowedOp,
    /// Lockstep workers for the sharded window gather (clamped to the
    /// machine and to `n / shard_min`).
    workers: usize,
    /// Working distribution in row space; rows `>= window end` hold
    /// exactly zero.
    cur: Vec<f64>,
    /// Frontier level: all mass sits in levels `0..=lvl`.
    lvl: usize,
    /// Cumulative support-truncation mass (diagnostics).
    leaked: f64,
}

impl AdaptiveEngine {
    fn new(ctmc: &Ctmc, pi0: &[f64], opts: &TransientOptions) -> Self {
        // The adaptive twin of the `Stepper::new` shard boundary: serial,
        // on the control thread, before any stepping gang exists — the
        // `session.shard` failpoint fires here on the (default) adaptive
        // engine so chaos faults unwind without deadlocking workers.
        ioimc::failpoint::hit("session.shard");
        let roots = (0..pi0.len() as u32).filter(|&s| pi0[s as usize] != 0.0);
        let op = WindowedOp::new(ctmc, roots);
        let max_shards = (op.n / opts.shard_min.max(1)).max(1);
        let workers = ioimc::par::effective_threads(opts.threads).min(max_shards);
        let mut engine = Self {
            op,
            workers,
            cur: Vec::new(),
            lvl: 0,
            leaked: 0.0,
        };
        let adopted = engine.load(pi0);
        assert!(adopted, "roots cover the support by construction");
        engine
    }

    /// Adopts `pi0` as the working distribution. Returns `false` (engine
    /// must be rebuilt) if `pi0` carries mass on states unreachable from
    /// the ordering's roots.
    fn load(&mut self, pi0: &[f64]) -> bool {
        let op = &self.op;
        self.cur.clear();
        self.cur.resize(op.n, 0.0);
        let mut last = 0usize;
        for (s, &p) in pi0.iter().enumerate() {
            if p != 0.0 {
                let row = op.inv[s] as usize;
                if row >= op.reachable {
                    return false;
                }
                self.cur[row] = p;
                last = last.max(row);
            }
        }
        self.lvl = op.level_of[last] as usize;
        true
    }

    /// The working distribution in original state order.
    fn output(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.op.n];
        for (row, &s) in self.op.perm.iter().enumerate() {
            out[s as usize] = self.cur[row];
        }
        out
    }

    /// Advances the working distribution by `dt`: shrinks the trailing
    /// support within budget, picks `Λ_seg` from the ε-mass support's
    /// maximum exit rate (exit-capping the window's dust states above
    /// it), and runs windowed sweeps — restarting with an escalated Λ
    /// when capped inflow breaches the budget. Returns whether the
    /// distribution is steady (all later grid points can answer from it).
    fn advance(
        &mut self,
        dt: f64,
        cache: &PoissonCache,
        opts: &TransientOptions,
        counters: Option<&SolveCounters>,
    ) -> bool {
        let op = &self.op;
        // Trailing-support shrink: zero whole top levels while their
        // total mass fits in a quarter of the per-segment budget, so
        // long-frozen dust cannot pin the window (and Λ) forever.
        if opts.support_tol > 0.0 {
            let budget = opts.support_tol * 0.25;
            let mut zeroed = 0.0f64;
            while self.lvl > 0 {
                let rows = op.level_off[self.lvl] as usize..op.level_off[self.lvl + 1] as usize;
                let mass: f64 = self.cur[rows.clone()].iter().sum();
                if zeroed + mass > budget {
                    break;
                }
                self.cur[rows].fill(0.0);
                zeroed += mass;
                self.lvl -= 1;
            }
            self.leaked += zeroed;
        }
        let hi = op.level_off[self.lvl + 1] as usize;
        // Zero-rate segment: all mass on absorbing states — the
        // distribution is exactly invariant, now and forever.
        let active: f64 = self.cur[..hi]
            .iter()
            .zip(&op.exit[..hi])
            .map(|(&p, &e)| p * e)
            .sum();
        if active == 0.0 {
            return true;
        }
        // Λ_seg from the ε-mass support: the maximum exit rate over
        // window states carrying more than a per-state share of the
        // budget. Dust on hotter states is zeroed up front (within the
        // same quarter-budget) and the states join the capped set.
        let theta = opts.support_tol * 0.25 / op.n as f64;
        let support_max = self.cur[..hi]
            .iter()
            .zip(&op.exit[..hi])
            .filter(|&(&p, _)| p > theta)
            .map(|(_, &e)| e)
            .fold(0.0f64, f64::max);
        let mut lambda = if support_max > 0.0 {
            (support_max * UNIF_HEADROOM).min(op.global_unif)
        } else {
            op.global_unif
        };
        if opts.support_tol > 0.0 {
            let mut zeroed = 0.0f64;
            for (row, p) in self.cur[..hi].iter_mut().enumerate() {
                if *p != 0.0 && op.exit[row] > lambda {
                    zeroed += *p;
                    *p = 0.0;
                }
            }
            self.leaked += zeroed;
        }
        let global_unif = op.global_unif;
        let snapshot = self.cur.clone();
        // One sweep per segment; Λ restarts are internal retries of the
        // same sweep, not additional solver work units.
        count_sweep(counters);
        loop {
            // Before each sweep (including Λ-escalation retries) the gang
            // is parked, so a budget unwind here cannot strand a worker
            // on the step barrier.
            ioimc::budget::checkpoint();
            let pw = cache.get(lambda * dt);
            match self.sweep(lambda, &pw, opts, counters) {
                Ok(steady) => return steady,
                Err(()) => {
                    lambda = (lambda * LAMBDA_ESCALATION).min(global_unif);
                    self.cur.copy_from_slice(&snapshot);
                }
            }
        }
    }

    /// Initial control state for a sweep at `lambda`: current frontier
    /// level plus the capped set (window rows hotter than Λ).
    fn segment_ctrl(&self, lambda: f64, opts: &TransientOptions) -> SegmentCtrl {
        let hi = self.op.level_off[self.lvl + 1] as usize;
        let capped: Vec<u32> = (0..hi as u32)
            .filter(|&row| self.op.exit[row as usize] > lambda)
            .collect();
        SegmentCtrl {
            lvl: self.lvl,
            capped,
            cum: 0.0,
            leaked: 0.0,
            detector: SteadyDetector::new(opts.steady_tol),
            res_steady: false,
        }
    }

    /// One windowed uniformization sweep at rate `lambda`: on success the
    /// working distribution becomes the Poisson mixture and the frontier
    /// level is updated; `Err(())` means capped inflow breached the
    /// budget (caller restores the entry distribution and restarts with
    /// a larger Λ). Dispatches to the lock-free serial loop or the
    /// lockstep worker gang — both execute the identical per-row kernel
    /// and the identical control-helper arithmetic in the same order, so
    /// results are bitwise identical across thread counts (asserted by
    /// the unit tests driving the gang directly).
    fn sweep(
        &mut self,
        lambda: f64,
        pw: &PoissonWeights,
        opts: &TransientOptions,
        counters: Option<&SolveCounters>,
    ) -> SweepOutcome {
        // Quarter of the budget for each in-sweep truncation channel
        // (frozen-frontier escape, capped inflow), spread over the steps.
        let total = pw.total_steps();
        let step_budget = if opts.support_tol > 0.0 {
            opts.support_tol * 0.25 / total as f64
        } else {
            0.0
        };
        let mut st = self.segment_ctrl(lambda, opts);
        let outcome = if self.workers <= 1 {
            self.sweep_serial(lambda, pw, opts, &mut st, step_budget, counters)
        } else {
            self.sweep_gang(lambda, pw, opts, &mut st, step_budget, counters)
        };
        if outcome.is_ok() {
            self.lvl = st.lvl;
            self.leaked += st.leaked;
        }
        outcome
    }

    /// The serial sweep: double-buffered, no locks. Reference semantics
    /// for the gang path.
    fn sweep_serial(
        &mut self,
        lambda: f64,
        pw: &PoissonWeights,
        opts: &TransientOptions,
        st: &mut SegmentCtrl,
        step_budget: f64,
        counters: Option<&SolveCounters>,
    ) -> SweepOutcome {
        let op = &self.op;
        let n = op.n;
        let inv_l = 1.0 / lambda;
        let total = pw.total_steps();
        let mut cur = std::mem::take(&mut self.cur);
        let mut nxt = vec![0.0f64; n];
        let mut result = vec![0.0f64; n];
        let mut hi = op.level_off[st.lvl + 1] as usize;
        for step in 0..total {
            if step >= pw.left {
                let wt = pw.weights[step - pw.left];
                for (r, &c) in result[..hi].iter_mut().zip(&cur[..hi]) {
                    *r += wt * c;
                }
                st.cum += wt;
            }
            if step + 1 == total {
                break;
            }
            if step & 0x3FF == 0 {
                ioimc::budget::checkpoint();
            }
            hi = st.expand(op, &cur, lambda, step_budget);
            count_step(counters);
            let mut delta = 0.0f64;
            for i in 0..hi {
                let v = op.row_value(&cur, i, inv_l, hi);
                delta = delta.max((v - cur[i]).abs());
                nxt[i] = v;
            }
            if st.settle_capped(&mut nxt, step_budget) {
                self.cur = cur;
                return Err(());
            }
            std::mem::swap(&mut cur, &mut nxt);
            if st.detector.feed(delta) {
                // Converged: the remaining Poisson tail all sits on the
                // (now invariant) current vector.
                let tail = 1.0 - st.cum;
                let mut res_diff = 0.0f64;
                for (r, &c) in result[..hi].iter_mut().zip(&cur[..hi]) {
                    *r += tail * c;
                    res_diff = res_diff.max((*r - c).abs());
                }
                st.res_steady = res_diff <= opts.steady_tol;
                self.cur = result;
                return Ok(st.res_steady);
            }
        }
        self.cur = result;
        Ok(false)
    }

    /// The sharded sweep: a lockstep worker gang over transition-balanced
    /// chunks of the window, barrier-synced per step, with worker 0
    /// running exactly the control/assembly arithmetic of the serial path
    /// on the assembled vector.
    fn sweep_gang(
        &mut self,
        lambda: f64,
        pw: &PoissonWeights,
        opts: &TransientOptions,
        st_outer: &mut SegmentCtrl,
        step_budget: f64,
        counters: Option<&SolveCounters>,
    ) -> SweepOutcome {
        let op = &self.op;
        let n = op.n;
        let inv_l = 1.0 / lambda;
        let total = pw.total_steps();
        let workers = self.workers;
        let cur = RwLock::new(std::mem::take(&mut self.cur));
        let result = Mutex::new(vec![0.0f64; n]);
        let outs: Vec<Mutex<Vec<f64>>> = (0..workers).map(|_| Mutex::new(vec![0.0; n])).collect();
        let deltas: Vec<Mutex<f64>> = (0..workers).map(|_| Mutex::new(0.0)).collect();
        let barrier = Barrier::new(workers);
        let ctrl = std::sync::atomic::AtomicU8::new(CTRL_RUN);
        let hi_shared =
            std::sync::atomic::AtomicUsize::new(op.level_off[st_outer.lvl + 1] as usize);
        let placeholder = SegmentCtrl {
            lvl: 0,
            capped: Vec::new(),
            cum: 0.0,
            leaked: 0.0,
            detector: SteadyDetector::new(0.0),
            res_steady: false,
        };
        let state = Mutex::new(std::mem::replace(st_outer, placeholder));
        ioimc::par::run_workers(workers, |w| {
            for step in 0..total {
                if w == 0 {
                    // Control phase — same order as the serial loop:
                    // accumulate, then expansion decision, then the step
                    // counter.
                    let mut st = state.lock().expect("no poisoned control");
                    let cur_g = cur.read().expect("no poisoned buffer");
                    let hi = hi_shared.load(Ordering::Relaxed);
                    if step >= pw.left {
                        let wt = pw.weights[step - pw.left];
                        let mut res = result.lock().expect("no poisoned result");
                        for (r, &c) in res[..hi].iter_mut().zip(&cur_g[..hi]) {
                            *r += wt * c;
                        }
                        st.cum += wt;
                    }
                    if step + 1 == total {
                        ctrl.store(CTRL_DONE, Ordering::SeqCst);
                    } else {
                        let hi = st.expand(op, &cur_g, lambda, step_budget);
                        hi_shared.store(hi, Ordering::Relaxed);
                        count_step(counters);
                    }
                }
                barrier.wait();
                if ctrl.load(Ordering::SeqCst) != CTRL_RUN {
                    break;
                }
                let hi = hi_shared.load(Ordering::SeqCst);
                {
                    // Compute phase: every worker gathers its chunk.
                    let cur_g = cur.read().expect("no poisoned buffer");
                    let mut out = outs[w].lock().expect("no poisoned shard");
                    let mut dmax = 0.0f64;
                    for i in op.chunk(hi, w, workers) {
                        let v = op.row_value(&cur_g, i, inv_l, hi);
                        dmax = dmax.max((v - cur_g[i]).abs());
                        out[i] = v;
                    }
                    *deltas[w].lock().expect("no poisoned shard") = dmax;
                }
                barrier.wait();
                if w == 0 {
                    // Assembly phase: fold the chunks back, settle the
                    // capped rows, then feed the detector — the serial
                    // order.
                    let mut st = state.lock().expect("no poisoned control");
                    let mut cur_g = cur.write().expect("no poisoned buffer");
                    for (v, out) in outs.iter().enumerate() {
                        let r = op.chunk(hi, v, workers);
                        cur_g[r.clone()]
                            .copy_from_slice(&out.lock().expect("no poisoned shard")[r]);
                    }
                    if st.settle_capped(&mut cur_g, step_budget) {
                        ctrl.store(CTRL_RESTART, Ordering::SeqCst);
                    } else {
                        let delta = deltas
                            .iter()
                            .fold(0.0f64, |a, d| a.max(*d.lock().expect("no poisoned shard")));
                        if st.detector.feed(delta) {
                            let tail = 1.0 - st.cum;
                            let mut res = result.lock().expect("no poisoned result");
                            let mut res_diff = 0.0f64;
                            for (r, &c) in res[..hi].iter_mut().zip(&cur_g[..hi]) {
                                *r += tail * c;
                                res_diff = res_diff.max((*r - c).abs());
                            }
                            st.res_steady = res_diff <= opts.steady_tol;
                            ctrl.store(CTRL_CONVERGED, Ordering::SeqCst);
                        }
                    }
                }
                barrier.wait();
                let c = ctrl.load(Ordering::SeqCst);
                if c == CTRL_CONVERGED || c == CTRL_RESTART {
                    break;
                }
            }
        });
        *st_outer = state.into_inner().expect("no poisoned control");
        let verdict = ctrl.load(Ordering::SeqCst);
        if verdict == CTRL_RESTART {
            self.cur = cur.into_inner().expect("no poisoned buffer");
            return Err(());
        }
        self.cur = result.into_inner().expect("no poisoned result");
        Ok(verdict == CTRL_CONVERGED && st_outer.res_steady)
    }
}

/// Sweep verdicts communicated through the gang's control atomic.
const CTRL_RUN: u8 = 0;
const CTRL_DONE: u8 = 1;
const CTRL_CONVERGED: u8 = 2;
const CTRL_RESTART: u8 = 3;

/// `Ok(steady)` on a completed sweep, `Err(())` when Λ must be escalated
/// and the segment restarted.
type SweepOutcome = Result<bool, ()>;

/// The uniformized DTMC `P = I + Q/Λ` in gather-friendly form: per-state
/// self-loop probabilities (`stay = 1 − exit/Λ`) plus the transposed CSR
/// adjacency with transition probabilities prescaled to `p = rate/Λ`
/// (offsets / probabilities / sources as flat SoA arrays). Shared by the
/// transient [`Stepper`] and the steady-state Krylov matvec so the two
/// kernels cannot drift apart.
pub(crate) fn prescaled_transpose(
    ctmc: &Ctmc,
    unif: f64,
) -> (Vec<f64>, Vec<u32>, Vec<f64>, Vec<u32>) {
    let n = ctmc.num_states();
    let stay: Vec<f64> = ctmc.exit_rates().iter().map(|&e| 1.0 - e / unif).collect();
    let incoming = ctmc.incoming();
    let m = ctmc.num_transitions();
    let mut inc_off = Vec::with_capacity(n + 1);
    let mut inc_p = Vec::with_capacity(m);
    let mut inc_src = Vec::with_capacity(m);
    inc_off.push(0u32);
    for i in 0..n as u32 {
        for &(r, j) in incoming.row(i) {
            inc_p.push(r / unif);
            inc_src.push(j);
        }
        inc_off.push(inc_p.len() as u32);
    }
    (stay, inc_off, inc_p, inc_src)
}

/// Splits the rows `0..n` into at most `shards` contiguous non-empty
/// ranges with balanced work, where a row's work is `1 +` its incoming
/// transition count.
fn balanced_ranges(inc_off: &[u32], shards: usize) -> Vec<std::ops::Range<usize>> {
    let n = inc_off.len() - 1;
    if shards <= 1 || n <= 1 {
        return std::iter::once(0..n).collect();
    }
    let shards = shards.min(n);
    let total = n as u64 + u64::from(inc_off[n]);
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut acc = 0u64;
    for i in 0..n {
        acc += 1 + u64::from(inc_off[i + 1] - inc_off[i]);
        let closed = out.len();
        let remaining = shards - closed - 1;
        if remaining > 0
            && acc * shards as u64 >= total * (closed as u64 + 1)
            && n - (i + 1) >= remaining
        {
            out.push(start..i + 1);
            start = i + 1;
        }
    }
    out.push(start..n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state machine point availability:
    /// A(t) = µ/(λ+µ) + λ/(λ+µ)·e^{-(λ+µ)t}.
    #[test]
    fn two_state_transient_matches_closed_form() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        for &t in &[0.0, 0.1, 1.0, 5.0, 50.0] {
            let pi = transient(&c, t);
            let a = m / (l + m) + l / (l + m) * (-(l + m) * t).exp();
            assert!((pi[0] - a).abs() < 1e-10, "t={t}: {} vs {a}", pi[0]);
        }
    }

    /// Pure death process: P(absorbed by t) = 1 - e^{-λt}.
    #[test]
    fn exponential_absorption() {
        let l = 0.37;
        let c = Ctmc::new(vec![vec![(l, 1)], vec![]], vec![0, 1], 0).unwrap();
        let pi = transient(&c, 2.0);
        assert!((pi[1] - (1.0 - (-l * 2.0f64).exp())).abs() < 1e-12);
    }

    /// Erlang-3 absorption time: P(done by t) follows the Erlang CDF.
    #[test]
    fn erlang_chain() {
        let r = 2.0;
        let c = Ctmc::new(
            vec![vec![(r, 1)], vec![(r, 2)], vec![(r, 3)], vec![]],
            vec![0, 0, 0, 1],
            0,
        )
        .unwrap();
        let t = 1.3;
        let pi = transient(&c, t);
        // Erlang-3 CDF = 1 - e^{-rt}(1 + rt + (rt)^2/2)
        let x = r * t;
        let expected = 1.0 - (-x).exp() * (1.0 + x + x * x / 2.0);
        assert!((pi[3] - expected).abs() < 1e-10);
    }

    #[test]
    fn long_horizon_converges_to_steady_state() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = transient(&c, 1e4);
        let steady = crate::steady::steady_state(&c);
        assert!((pi[0] - steady[0]).abs() < 1e-9);
    }

    #[test]
    fn distribution_stays_normalized() {
        let c = Ctmc::new(
            vec![vec![(1.0, 1), (2.0, 2)], vec![(0.5, 2)], vec![(3.0, 0)]],
            vec![0, 0, 0],
            0,
        )
        .unwrap();
        for &t in &[0.3, 3.0, 30.0] {
            let pi = transient(&c, t);
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        let c = Ctmc::new(vec![vec![]], vec![0], 0).unwrap();
        let _ = transient(&c, -1.0);
    }

    #[test]
    fn batched_grid_matches_closed_form_in_input_order() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        // deliberately unsorted, with a duplicate and a zero
        let ts = [5.0, 0.1, 0.0, 1.0, 1.0, 50.0];
        let pis = transient_many(&c, &ts);
        assert_eq!(pis.len(), ts.len());
        for (&t, pi) in ts.iter().zip(&pis) {
            let a = m / (l + m) + l / (l + m) * (-(l + m) * t).exp();
            assert!((pi[0] - a).abs() < 1e-10, "t={t}: {} vs {a}", pi[0]);
        }
    }

    #[test]
    fn rateless_chain_grid_is_constant() {
        let c = Ctmc::new(vec![vec![]], vec![0], 0).unwrap();
        let pis = transient_many(&c, &[0.0, 1.0, 10.0]);
        for pi in pis {
            assert_eq!(pi, vec![1.0]);
        }
    }

    /// A multi-state chain with no transitions at all (`max_exit == 0.0`)
    /// must return the starting distribution verbatim at every grid point,
    /// including from a non-initial `pi0`.
    #[test]
    fn zero_exit_rate_chain_keeps_pi0_on_grid() {
        let c = Ctmc::new(vec![vec![], vec![], vec![]], vec![0, 0, 1], 0).unwrap();
        assert_eq!(c.max_exit_rate(), 0.0);
        let pi0 = [0.25, 0.5, 0.25];
        let pis = transient_many_from(&c, &pi0, &[0.0, 2.5, 100.0]);
        for pi in pis {
            assert_eq!(pi, pi0.to_vec());
        }
    }

    /// `t = 0` grid points must return `pi0` exactly, even when mixed with
    /// positive times (the incremental sweep must not step before them).
    #[test]
    fn zero_time_points_return_pi0_exactly() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi0 = [0.0, 1.0];
        let pis = transient_many_from(&c, &pi0, &[3.0, 0.0, 7.0, 0.0]);
        assert_eq!(pis[1], pi0.to_vec());
        assert_eq!(pis[3], pi0.to_vec());
        // and the positive points still match the closed form from pi0
        for &(i, t) in &[(0usize, 3.0f64), (2, 7.0)] {
            let a = m / (l + m) - m / (l + m) * (-(l + m) * t).exp();
            assert!((pis[i][0] - a).abs() < 1e-10, "t={t}");
        }
    }

    /// Duplicate and unsorted grid entries answer from one shared sweep
    /// and must agree with independent scalar solves bitwise-closely.
    #[test]
    fn from_distribution_handles_duplicate_unsorted_grid() {
        let c = Ctmc::new(
            vec![vec![(1.0, 1), (2.0, 2)], vec![(0.5, 2)], vec![(3.0, 0)]],
            vec![0, 0, 0],
            0,
        )
        .unwrap();
        let pi0 = [0.2, 0.3, 0.5];
        let ts = [4.0, 1.0, 4.0, 0.5, 1.0];
        let pis = transient_many_from(&c, &pi0, &ts);
        assert_eq!(pis[0], pis[2], "duplicate grid points must agree");
        assert_eq!(pis[1], pis[4]);
        for (&t, pi) in ts.iter().zip(&pis) {
            let scalar = transient_from(&c, &pi0, t);
            for (a, b) in pi.iter().zip(&scalar) {
                assert!((a - b).abs() < 1e-10, "t={t}: {a} vs {b}");
            }
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-10);
        }
    }

    /// The sharded sweep is bitwise identical to the serial sweep for
    /// every worker count and shard granularity (each row runs the same
    /// per-row code either way).
    #[test]
    fn sharded_sweep_is_bitwise_identical_to_serial() {
        // A chain with irregular in-degrees so shard boundaries differ by
        // granularity: a star plus a ring.
        let n = 97usize;
        let rows: Vec<Vec<(f64, u32)>> = (0..n)
            .map(|i| {
                let mut row = vec![(0.3 + (i as f64) * 0.01, ((i + 1) % n) as u32)];
                if i != 0 {
                    row.push((0.7, 0)); // everyone feeds the hub
                }
                if i == 0 {
                    for j in 1..n {
                        row.push((0.05, j as u32));
                    }
                }
                row
            })
            .collect();
        let c = Ctmc::new(rows, vec![0; n], 0).unwrap();
        let ts = [0.4, 1.7, 6.0, 6.0, 0.0];
        let serial = transient_many_with(&c, &ts, &TransientOptions::default());
        for threads in [2usize, 3, 4, 8] {
            for shard_min in [1usize, 7, 24] {
                let opts = TransientOptions::default()
                    .with_threads(threads)
                    .with_shard_min(shard_min);
                let sharded = transient_many_with(&c, &ts, &opts);
                assert_eq!(
                    sharded, serial,
                    "threads={threads} shard_min={shard_min}: not bitwise identical"
                );
            }
        }
    }

    /// Shard ranges cover `0..n` contiguously, are non-empty, and respect
    /// the requested count.
    #[test]
    fn balanced_ranges_partition_rows() {
        // in-degrees 0,3,0,1,5,1 → offsets
        let off = [0u32, 0, 3, 3, 4, 9, 10];
        for shards in 1..=6 {
            let ranges = balanced_ranges(&off, shards);
            assert!(!ranges.is_empty() && ranges.len() <= shards);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, 6);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                assert!(!w[1].is_empty());
            }
            assert!(!ranges[0].is_empty());
        }
    }

    /// Steady-state detection answers long-horizon grids from the
    /// converged vector: the detected run needs far fewer steps, agrees
    /// with the undetected run to well below 1e-10, and still matches the
    /// closed form.
    #[test]
    fn steady_detection_matches_undetected_sweep() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let grid: Vec<f64> = (1..=20).map(|k| f64::from(k) * 50.0).collect();
        let detected = transient_many_with(&c, &grid, &TransientOptions::default());
        let exact =
            transient_many_with(&c, &grid, &TransientOptions::default().with_steady_tol(0.0));
        for (i, &t) in grid.iter().enumerate() {
            let a = m / (l + m) + l / (l + m) * (-(l + m) * t).exp();
            assert!((detected[i][0] - exact[i][0]).abs() < 1e-11, "t={t}");
            assert!((detected[i][0] - a).abs() < 1e-10, "t={t}");
        }
    }

    /// A nearly-decoupled chain — two fast clusters bridged by one rare
    /// transition — must not trigger premature detection: the raw step
    /// delta is tiny long before the slow mode has equilibrated (the
    /// remaining distance is `δ / spectral gap`), so a plain
    /// `δ ≤ steady_tol` check would freeze the grid on a vector still
    /// far from steady. The projected-drift criterion has to see
    /// through it and keep the long-horizon point at the true steady
    /// state.
    #[test]
    fn detection_resists_nearly_decoupled_chains() {
        let c = Ctmc::new(
            vec![
                vec![(1.0, 1), (1e-4, 2)], // fast cluster A, rare escape
                vec![(1.0, 0)],
                vec![(1.0, 3)], // fast cluster B
                vec![(1.0, 2)],
            ],
            vec![0, 0, 1, 1],
            0,
        )
        .unwrap();
        // t1 sits where the raw step delta has already dropped below the
        // default steady_tol while ~1e-9 of slow-mode mass is still in
        // flight; t2 is far past mixing.
        let grid = [4.2e5, 1e8];
        let pis = transient_many_with(&c, &grid, &TransientOptions::default());
        let steady = crate::steady::steady_state(&c);
        for (a, b) in pis[1].iter().zip(&steady) {
            assert!(
                (a - b).abs() < 1e-10,
                "long-horizon point frozen before steady state: {a} vs {b}"
            );
        }
    }

    /// The adaptive engine's worker gang is bitwise identical to its
    /// serial loop for every worker count — driven through the engine
    /// directly so the gang path is exercised even on single-core
    /// machines (the public option plumbing clamps thread requests to
    /// the core count).
    #[test]
    fn adaptive_gang_is_bitwise_identical_to_serial() {
        // Irregular in-degrees and multi-scale rates, so windows expand,
        // states get exit-capped and Λ restarts all fire.
        let n = 61usize;
        let rows: Vec<Vec<(f64, u32)>> = (0..n)
            .map(|i| {
                let mut row = vec![(1e-4 + (i as f64) * 1e-5, ((i + 1) % n) as u32)];
                if i != 0 {
                    row.push((10.0 + i as f64, 0)); // fast "repairs" to the hub
                }
                if i % 9 == 0 {
                    row.push((5e-3, ((i + 7) % n) as u32));
                }
                row
            })
            .collect();
        let c = Ctmc::new(rows, vec![0; n], 0).unwrap();
        let ts: [f64; 5] = [0.6, 0.6, 3.0, 20.0, 0.0];
        let drive = |workers: usize| -> Vec<Vec<f64>> {
            let opts = TransientOptions::default();
            let cache = PoissonCache::new();
            let mut engine = AdaptiveEngine::new(&c, &c.initial_distribution(), &opts);
            engine.workers = workers;
            let mut order: Vec<usize> = (0..ts.len()).collect();
            order.sort_by(|&a, &b| ts[a].total_cmp(&ts[b]));
            let mut out = vec![Vec::new(); ts.len()];
            let (mut cur_t, mut converged) = (0.0f64, false);
            for &i in &order {
                let dt = ts[i] - cur_t;
                if dt > 0.0 && !converged {
                    converged = engine.advance(dt, &cache, &opts, None);
                    cur_t = ts[i];
                }
                out[i] = engine.output();
            }
            out
        };
        let serial = drive(1);
        for workers in [2usize, 3, 5, 8] {
            assert_eq!(
                drive(workers),
                serial,
                "gang with {workers} workers diverged from the serial path"
            );
        }
    }

    /// The `_ctx` entry point is bitwise identical to the plain cached
    /// path and records the solve's work on the context's counters
    /// (without disturbing other contexts).
    #[test]
    fn ctx_counters_record_session_scoped_work() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let ts = [1.0, 2.0, 5.0];
        let opts = TransientOptions::default();
        let ctx = MeasureContext::new();
        let pis = transient_many_from_ctx(&c, &c.initial_distribution(), &ts, &opts, &ctx);
        assert_eq!(pis, transient_many_with(&c, &ts, &opts));
        assert!(ctx.counters.sweeps() >= 1);
        assert!(ctx.counters.dtmc_steps() >= 1);
        let other = MeasureContext::new();
        assert_eq!(other.counters.sweeps(), 0);
        assert_eq!(other.counters.dtmc_steps(), 0);
    }

    /// An absorbing chain converges once all mass is absorbed; detection
    /// must stop the sweep and keep the absorbed mass exact.
    #[test]
    fn steady_detection_on_absorbing_chain() {
        let l = 2.5;
        let c = Ctmc::new(vec![vec![(l, 1)], vec![]], vec![0, 1], 0).unwrap();
        let grid = [5.0, 50.0, 500.0];
        let pis = transient_many_with(&c, &grid, &TransientOptions::default());
        for (&t, pi) in grid.iter().zip(&pis) {
            let expected = 1.0 - (-l * t).exp();
            assert!((pi[1] - expected).abs() < 1e-10, "t={t}: {}", pi[1]);
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }
}
