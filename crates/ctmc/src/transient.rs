//! Transient analysis by uniformization.
//!
//! The distribution at time `t` is
//! `π(t) = Σ_k Poisson(Λt)[k] · π(0) Pᵏ` where `P = I + Q/Λ` is the
//! uniformized DTMC and `Λ ≥ max exit rate`. Poisson weights come from
//! [`crate::poisson::poisson_weights`].
//!
//! Curve-shaped workloads should use [`transient_many`]: it evaluates a
//! whole time grid in **one** incremental uniformization sweep (the chain
//! is stepped from each grid point to the next by the Markov property)
//! instead of one independent sweep per point, turning the
//! `O(Λ·Σtᵢ)` cost of the scalar loop into `O(Λ·max tᵢ)`.

use std::cell::Cell;

use crate::chain::Ctmc;
use crate::poisson::poisson_weights;

thread_local! {
    /// Instrumentation: DTMC matrix-vector products performed by this
    /// thread (see [`dtmc_steps_performed`]).
    static DTMC_STEPS: Cell<u64> = const { Cell::new(0) };
    /// Instrumentation: uniformization sweeps started by this thread.
    static SWEEPS: Cell<u64> = const { Cell::new(0) };
}

/// Total DTMC matrix-vector products performed by this thread since the
/// last [`reset_solver_counters`]. One product is the unit of transient
/// solver work, so batching wins show up directly in this counter; it
/// exists for benchmarks and regression tests, not for control flow.
pub fn dtmc_steps_performed() -> u64 {
    DTMC_STEPS.with(Cell::get)
}

/// Total uniformization sweeps (scalar solves or batched grid segments)
/// started by this thread since the last [`reset_solver_counters`].
pub fn sweeps_performed() -> u64 {
    SWEEPS.with(Cell::get)
}

/// Resets this thread's [`dtmc_steps_performed`]/[`sweeps_performed`]
/// counters to zero.
pub fn reset_solver_counters() {
    DTMC_STEPS.with(|c| c.set(0));
    SWEEPS.with(|c| c.set(0));
}

/// Computes the state distribution at time `t` starting from the chain's
/// initial state.
///
/// # Panics
///
/// Panics if `t` is negative or not finite.
pub fn transient(ctmc: &Ctmc, t: f64) -> Vec<f64> {
    transient_from(ctmc, &ctmc.initial_distribution(), t)
}

/// Computes the state distribution at time `t` from an arbitrary initial
/// distribution `pi0`.
///
/// # Panics
///
/// Panics if `t` is negative or not finite, or if `pi0` has the wrong
/// length.
pub fn transient_from(ctmc: &Ctmc, pi0: &[f64], t: f64) -> Vec<f64> {
    assert!(
        t.is_finite() && t >= 0.0,
        "time must be non-negative, got {t}"
    );
    assert_eq!(pi0.len(), ctmc.num_states(), "distribution length mismatch");
    if t == 0.0 {
        return pi0.to_vec();
    }
    let max_exit = ctmc.max_exit_rate();
    if max_exit == 0.0 {
        return pi0.to_vec(); // no transitions at all
    }
    // A little head-room keeps the DTMC aperiodic (self-loop mass > 0).
    let unif = max_exit * 1.02;
    sweep(ctmc, pi0, unif, t)
}

/// Computes the state distributions at every time in `ts` (any order,
/// duplicates allowed) starting from the chain's initial state, sharing
/// one incremental uniformization sweep across the whole grid.
///
/// Returns one distribution per entry of `ts`, in the order given.
///
/// # Panics
///
/// Panics if any time is negative or not finite.
pub fn transient_many(ctmc: &Ctmc, ts: &[f64]) -> Vec<Vec<f64>> {
    transient_many_from(ctmc, &ctmc.initial_distribution(), ts)
}

/// Computes the state distributions at every time in `ts` from an
/// arbitrary initial distribution `pi0` in one incremental sweep: the grid
/// is visited in ascending order and the chain is advanced from each grid
/// point to the next (exact by the Markov property), so the total work is
/// proportional to `Λ·max(ts)` plus a per-point truncation overhead,
/// instead of the scalar loop's `Λ·Σts`.
///
/// # Panics
///
/// Panics if any time is negative or not finite, or if `pi0` has the
/// wrong length.
pub fn transient_many_from(ctmc: &Ctmc, pi0: &[f64], ts: &[f64]) -> Vec<Vec<f64>> {
    assert_eq!(pi0.len(), ctmc.num_states(), "distribution length mismatch");
    for &t in ts {
        assert!(
            t.is_finite() && t >= 0.0,
            "time must be non-negative, got {t}"
        );
    }
    let mut order: Vec<usize> = (0..ts.len()).collect();
    order.sort_by(|&a, &b| ts[a].total_cmp(&ts[b]));

    let max_exit = ctmc.max_exit_rate();
    let unif = max_exit * 1.02;
    let mut results: Vec<Vec<f64>> = vec![Vec::new(); ts.len()];
    let mut cur = pi0.to_vec();
    let mut cur_t = 0.0f64;
    for &i in &order {
        let dt = ts[i] - cur_t;
        if dt > 0.0 && max_exit > 0.0 {
            cur = sweep(ctmc, &cur, unif, dt);
            cur_t = ts[i];
        }
        results[i] = cur.clone();
    }
    results
}

/// One uniformization sweep: `π(t)` from `pi0` with uniformization rate
/// `unif` (must exceed every exit rate) over horizon `t > 0`.
fn sweep(ctmc: &Ctmc, pi0: &[f64], unif: f64, t: f64) -> Vec<f64> {
    SWEEPS.with(|c| c.set(c.get() + 1));
    let (left, weights) = poisson_weights(unif * t);
    let n = ctmc.num_states();
    // Self-loop probabilities of the uniformized DTMC, from the chain's
    // cached exit rates.
    let stay: Vec<f64> = ctmc.exit_rates().iter().map(|&e| 1.0 - e / unif).collect();
    // Double-buffered stepping: `cur` and `next` swap roles each step, so
    // the whole sweep costs two distribution buffers total instead of one
    // fresh allocation per DTMC step (tens of thousands of steps on the
    // long-horizon grids).
    let mut cur = pi0.to_vec();
    let mut next = vec![0.0f64; n];
    let mut result = vec![0.0f64; n];
    // Steps 0..left-1 only advance the power; steps left.. accumulate.
    let mut step = 0usize;
    let total_steps = left + weights.len();
    while step < total_steps {
        if step >= left {
            let w = weights[step - left];
            for i in 0..n {
                result[i] += w * cur[i];
            }
        }
        step += 1;
        if step < total_steps {
            dtmc_step_into(ctmc, &cur, unif, &stay, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
    }
    result
}

/// One step of the uniformized DTMC into a caller-provided buffer:
/// `out = cur · (I + Q/Λ)`. Iterates the flat CSR arrays directly — one
/// contiguous pass over all transitions per step.
fn dtmc_step_into(ctmc: &Ctmc, cur: &[f64], unif: f64, stay: &[f64], out: &mut [f64]) {
    DTMC_STEPS.with(|c| c.set(c.get() + 1));
    let n = ctmc.num_states();
    let off = ctmc.offsets();
    let tr = ctmc.transitions();
    out.fill(0.0);
    for s in 0..n {
        let mass = cur[s];
        if mass == 0.0 {
            continue;
        }
        out[s] += mass * stay[s];
        for &(r, tgt) in &tr[off[s] as usize..off[s + 1] as usize] {
            out[tgt as usize] += mass * r / unif;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state machine point availability:
    /// A(t) = µ/(λ+µ) + λ/(λ+µ)·e^{-(λ+µ)t}.
    #[test]
    fn two_state_transient_matches_closed_form() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        for &t in &[0.0, 0.1, 1.0, 5.0, 50.0] {
            let pi = transient(&c, t);
            let a = m / (l + m) + l / (l + m) * (-(l + m) * t).exp();
            assert!((pi[0] - a).abs() < 1e-10, "t={t}: {} vs {a}", pi[0]);
        }
    }

    /// Pure death process: P(absorbed by t) = 1 - e^{-λt}.
    #[test]
    fn exponential_absorption() {
        let l = 0.37;
        let c = Ctmc::new(vec![vec![(l, 1)], vec![]], vec![0, 1], 0).unwrap();
        let pi = transient(&c, 2.0);
        assert!((pi[1] - (1.0 - (-l * 2.0f64).exp())).abs() < 1e-12);
    }

    /// Erlang-3 absorption time: P(done by t) follows the Erlang CDF.
    #[test]
    fn erlang_chain() {
        let r = 2.0;
        let c = Ctmc::new(
            vec![vec![(r, 1)], vec![(r, 2)], vec![(r, 3)], vec![]],
            vec![0, 0, 0, 1],
            0,
        )
        .unwrap();
        let t = 1.3;
        let pi = transient(&c, t);
        // Erlang-3 CDF = 1 - e^{-rt}(1 + rt + (rt)^2/2)
        let x = r * t;
        let expected = 1.0 - (-x).exp() * (1.0 + x + x * x / 2.0);
        assert!((pi[3] - expected).abs() < 1e-10);
    }

    #[test]
    fn long_horizon_converges_to_steady_state() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi = transient(&c, 1e4);
        let steady = crate::steady::steady_state(&c);
        assert!((pi[0] - steady[0]).abs() < 1e-9);
    }

    #[test]
    fn distribution_stays_normalized() {
        let c = Ctmc::new(
            vec![vec![(1.0, 1), (2.0, 2)], vec![(0.5, 2)], vec![(3.0, 0)]],
            vec![0, 0, 0],
            0,
        )
        .unwrap();
        for &t in &[0.3, 3.0, 30.0] {
            let pi = transient(&c, t);
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        let c = Ctmc::new(vec![vec![]], vec![0], 0).unwrap();
        let _ = transient(&c, -1.0);
    }

    #[test]
    fn batched_grid_matches_closed_form_in_input_order() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        // deliberately unsorted, with a duplicate and a zero
        let ts = [5.0, 0.1, 0.0, 1.0, 1.0, 50.0];
        let pis = transient_many(&c, &ts);
        assert_eq!(pis.len(), ts.len());
        for (&t, pi) in ts.iter().zip(&pis) {
            let a = m / (l + m) + l / (l + m) * (-(l + m) * t).exp();
            assert!((pi[0] - a).abs() < 1e-10, "t={t}: {} vs {a}", pi[0]);
        }
    }

    #[test]
    fn batched_sweep_does_less_work_than_scalar_loop() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let grid: Vec<f64> = (1..=50).map(|k| f64::from(k) * 4.0).collect();
        reset_solver_counters();
        for &t in &grid {
            let _ = transient(&c, t);
        }
        let scalar_steps = dtmc_steps_performed();
        assert_eq!(sweeps_performed(), 50);
        reset_solver_counters();
        let _ = transient_many(&c, &grid);
        let batched_steps = dtmc_steps_performed();
        assert!(
            batched_steps * 5 <= scalar_steps,
            "batched {batched_steps} vs scalar {scalar_steps} DTMC steps"
        );
    }

    #[test]
    fn rateless_chain_grid_is_constant() {
        let c = Ctmc::new(vec![vec![]], vec![0], 0).unwrap();
        let pis = transient_many(&c, &[0.0, 1.0, 10.0]);
        for pi in pis {
            assert_eq!(pi, vec![1.0]);
        }
    }

    /// A multi-state chain with no transitions at all (`max_exit == 0.0`)
    /// must return the starting distribution verbatim at every grid point,
    /// including from a non-initial `pi0`.
    #[test]
    fn zero_exit_rate_chain_keeps_pi0_on_grid() {
        let c = Ctmc::new(vec![vec![], vec![], vec![]], vec![0, 0, 1], 0).unwrap();
        assert_eq!(c.max_exit_rate(), 0.0);
        let pi0 = [0.25, 0.5, 0.25];
        let pis = transient_many_from(&c, &pi0, &[0.0, 2.5, 100.0]);
        for pi in pis {
            assert_eq!(pi, pi0.to_vec());
        }
    }

    /// `t = 0` grid points must return `pi0` exactly, even when mixed with
    /// positive times (the incremental sweep must not step before them).
    #[test]
    fn zero_time_points_return_pi0_exactly() {
        let (l, m) = (0.2, 1.5);
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(m, 0)]], vec![0, 1], 0).unwrap();
        let pi0 = [0.0, 1.0];
        let pis = transient_many_from(&c, &pi0, &[3.0, 0.0, 7.0, 0.0]);
        assert_eq!(pis[1], pi0.to_vec());
        assert_eq!(pis[3], pi0.to_vec());
        // and the positive points still match the closed form from pi0
        for &(i, t) in &[(0usize, 3.0f64), (2, 7.0)] {
            let a = m / (l + m) - m / (l + m) * (-(l + m) * t).exp();
            assert!((pis[i][0] - a).abs() < 1e-10, "t={t}");
        }
    }

    /// Duplicate and unsorted grid entries answer from one shared sweep
    /// and must agree with independent scalar solves bitwise-closely.
    #[test]
    fn from_distribution_handles_duplicate_unsorted_grid() {
        let c = Ctmc::new(
            vec![vec![(1.0, 1), (2.0, 2)], vec![(0.5, 2)], vec![(3.0, 0)]],
            vec![0, 0, 0],
            0,
        )
        .unwrap();
        let pi0 = [0.2, 0.3, 0.5];
        let ts = [4.0, 1.0, 4.0, 0.5, 1.0];
        let pis = transient_many_from(&c, &pi0, &ts);
        assert_eq!(pis[0], pis[2], "duplicate grid points must agree");
        assert_eq!(pis[1], pis[4]);
        for (&t, pi) in ts.iter().zip(&pis) {
            let scalar = transient_from(&c, &pi0, t);
            for (a, b) in pi.iter().zip(&scalar) {
                assert!((a - b).abs() < 1e-10, "t={t}: {a} vs {b}");
            }
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-10);
        }
    }
}
