//! The labelled CTMC type, stored in flat CSR form.

use std::fmt;

use ioimc::{IoImc, RateForm, StateLabel};

/// Errors when constructing a [`Ctmc`].
#[derive(Debug, Clone, PartialEq)]
pub enum CtmcError {
    /// The chain has no states.
    Empty,
    /// A rate is not finite and strictly positive.
    BadRate {
        /// Source state of the offending transition.
        state: u32,
        /// The offending rate.
        rate: f64,
    },
    /// A transition target is out of range.
    BadTarget {
        /// Source state of the offending transition.
        state: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// The initial state is out of range.
    BadInitial(u32),
    /// The CSR offset array is malformed (wrong length, not monotone, or
    /// not covering the transition array).
    BadOffsets,
    /// The source I/O-IMC still has interactive transitions (it is not a
    /// CTMC yet — run the reduction/vanishing-elimination pipeline first).
    NotMarkovian {
        /// A state with a leftover interactive transition.
        state: u32,
    },
    /// [`Ctmc::rerate`] was called on a chain without rate forms (built
    /// from a non-parameterized model, or already re-rated).
    NotParametric,
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "chain has no states"),
            Self::BadRate { state, rate } => write!(f, "state {state} has invalid rate {rate}"),
            Self::BadTarget { state, target } => {
                write!(f, "state {state} has transition to invalid state {target}")
            }
            Self::BadInitial(s) => write!(f, "initial state {s} out of range"),
            Self::BadOffsets => write!(f, "malformed CSR offset array"),
            Self::NotMarkovian { state } => write!(
                f,
                "state {state} still has interactive transitions; reduce the model first"
            ),
            Self::NotParametric => write!(f, "chain carries no rate forms to re-rate"),
        }
    }
}

impl std::error::Error for CtmcError {}

/// A labelled continuous-time Markov chain in flat CSR storage.
///
/// All transitions live in one contiguous `(rate, target)` array; state
/// `s` owns the slice `off[s]..off[s + 1]`. Within a row, transitions are
/// sorted by target with parallel edges merged and self-loops dropped
/// (they do not affect the stochastic process). Exit rates are cached at
/// construction, so the uniformization and steady-state kernels never
/// re-sum a row. Solvers that consume the chain column-wise build the
/// transposed adjacency once via [`Ctmc::incoming`].
///
/// Labels are the same proposition bitmasks as in [`ioimc`]; Arcade uses
/// bit 0 for "system down".
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    /// CSR row offsets (`num_states + 1` entries).
    off: Vec<u32>,
    /// All transitions `(rate, target)`, grouped by source state.
    tr: Vec<(f64, u32)>,
    /// Cached per-state exit rates (row sums).
    exit: Vec<f64>,
    labels: Vec<StateLabel>,
    initial: u32,
    /// Parametric rate forms, parallel to `tr` (see [`Ctmc::rerate`]).
    /// `None` for chains built from non-parameterized models.
    forms: Option<Vec<RateForm>>,
}

/// The incoming (transposed) adjacency of a [`Ctmc`] in CSR form: state
/// `s` owns a contiguous `(rate, source)` slice. Built on demand by
/// [`Ctmc::incoming`] — the steady-state and first-passage solvers sweep
/// the balance equations column-wise and want the transpose contiguous.
#[derive(Debug, Clone, PartialEq)]
pub struct Incoming {
    off: Vec<u32>,
    tr: Vec<(f64, u32)>,
}

impl Incoming {
    /// Incoming transitions `(rate, source)` of `s`, ordered by source.
    pub fn row(&self, s: u32) -> &[(f64, u32)] {
        &self.tr[self.off[s as usize] as usize..self.off[s as usize + 1] as usize]
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.off.len() - 1
    }
}

impl Ctmc {
    /// Creates a CTMC from outgoing transition lists.
    ///
    /// # Errors
    ///
    /// Returns a [`CtmcError`] for empty chains, invalid rates/targets or an
    /// out-of-range initial state.
    pub fn new(
        rows: Vec<Vec<(f64, u32)>>,
        labels: Vec<StateLabel>,
        initial: u32,
    ) -> Result<Self, CtmcError> {
        let n = rows.len();
        Self::check_shape(n, &labels, initial)?;
        let mut builder = CsrBuilder::new(n, rows.iter().map(Vec::len).sum());
        for (s, row) in rows.into_iter().enumerate() {
            builder.push_row(s as u32, n, row)?;
        }
        Ok(builder.finish(labels, initial))
    }

    /// Creates a CTMC directly from CSR arrays: `off` must have
    /// `labels.len() + 1` monotone entries starting at 0 and ending at
    /// `tr.len()`; `tr[off[s]..off[s + 1]]` are the outgoing transitions
    /// of `s`. Rows need not be sorted or merged — the constructor
    /// normalizes them (drops self-loops, merges parallel edges) without
    /// an intermediate per-state `Vec`.
    ///
    /// # Errors
    ///
    /// Returns a [`CtmcError`] for empty chains, malformed offsets,
    /// invalid rates/targets or an out-of-range initial state.
    pub fn from_csr(
        off: Vec<u32>,
        tr: Vec<(f64, u32)>,
        labels: Vec<StateLabel>,
        initial: u32,
    ) -> Result<Self, CtmcError> {
        let n = labels.len();
        Self::check_shape(n, &labels, initial)?;
        if off.len() != n + 1
            || off[0] != 0
            || off[n] as usize != tr.len()
            || off.windows(2).any(|w| w[0] > w[1])
        {
            return Err(CtmcError::BadOffsets);
        }
        let mut builder = CsrBuilder::new(n, tr.len());
        for s in 0..n {
            let row = &tr[off[s] as usize..off[s + 1] as usize];
            builder.push_row(s as u32, n, row.iter().copied())?;
        }
        Ok(builder.finish(labels, initial))
    }

    fn check_shape(n: usize, labels: &[StateLabel], initial: u32) -> Result<(), CtmcError> {
        if n == 0 {
            return Err(CtmcError::Empty);
        }
        assert_eq!(labels.len(), n, "one label per state required");
        if initial as usize >= n {
            return Err(CtmcError::BadInitial(initial));
        }
        Ok(())
    }

    /// Converts a purely Markovian I/O-IMC (e.g. the output of
    /// `bisim::vanishing::eliminate_vanishing`) into a CTMC, reading the
    /// automaton's CSR transition arrays directly — no per-state `Vec`
    /// round trip.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::NotMarkovian`] if any interactive transition
    /// remains.
    pub fn from_ioimc(imc: &IoImc) -> Result<Self, CtmcError> {
        for s in 0..imc.num_states() as u32 {
            if !imc.interactive_from(s).is_empty() {
                return Err(CtmcError::NotMarkovian { state: s });
            }
        }
        let (off, tr) = imc.markovian_csr();
        let mut out = Self::from_csr(
            off.to_vec(),
            tr.to_vec(),
            imc.labels().to_vec(),
            imc.initial(),
        )?;
        if let Some(forms) = imc.forms() {
            // A normalized I/O-IMC already has rows sorted by target,
            // parallel edges merged and self-loops dropped, so the CSR
            // constructor's cleanup pass is an identity and the source
            // transition array (which `forms` parallels) survives
            // verbatim.
            debug_assert_eq!(out.tr, tr, "forms carried from a non-normalized automaton");
            out.forms = Some(forms.to_vec());
        }
        Ok(out)
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.labels.len()
    }

    /// Number of (merged) transitions.
    pub fn num_transitions(&self) -> usize {
        self.tr.len()
    }

    /// The initial state.
    pub fn initial(&self) -> u32 {
        self.initial
    }

    /// Outgoing transitions of `s`: a contiguous `(rate, target)` slice,
    /// sorted by target, parallel edges merged, self-loops dropped.
    pub fn row(&self, s: u32) -> &[(f64, u32)] {
        &self.tr[self.off[s as usize] as usize..self.off[s as usize + 1] as usize]
    }

    /// The CSR row offsets (`num_states + 1` entries).
    pub fn offsets(&self) -> &[u32] {
        &self.off
    }

    /// The flat transition array (all rows back to back).
    pub fn transitions(&self) -> &[(f64, u32)] {
        &self.tr
    }

    /// Total exit rate of `s` (cached at construction).
    pub fn exit_rate(&self, s: u32) -> f64 {
        self.exit[s as usize]
    }

    /// The cached per-state exit rates.
    pub fn exit_rates(&self) -> &[f64] {
        &self.exit
    }

    /// Maximum exit rate over all states (the uniformization constant base).
    pub fn max_exit_rate(&self) -> f64 {
        self.exit.iter().copied().fold(0.0, f64::max)
    }

    /// Builds the incoming (transposed) CSR adjacency: for each state the
    /// contiguous `(rate, source)` slice, ordered by source. One counting
    /// pass plus one scatter pass over the flat transition array.
    pub fn incoming(&self) -> Incoming {
        let n = self.num_states();
        let mut counts = vec![0u32; n + 1];
        for &(_, t) in &self.tr {
            counts[t as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let off = counts.clone();
        let mut cursor = counts;
        let mut tr = vec![(0.0f64, 0u32); self.tr.len()];
        for s in 0..n as u32 {
            for &(r, t) in self.row(s) {
                let slot = cursor[t as usize] as usize;
                tr[slot] = (r, s);
                cursor[t as usize] += 1;
            }
        }
        Incoming { off, tr }
    }

    /// The label of `s`.
    pub fn label(&self, s: u32) -> StateLabel {
        self.labels[s as usize]
    }

    /// All labels.
    pub fn labels(&self) -> &[StateLabel] {
        &self.labels
    }

    /// States whose label has all bits of `mask` set.
    pub fn states_with_label(&self, mask: StateLabel) -> impl Iterator<Item = u32> + '_ {
        self.labels
            .iter()
            .enumerate()
            .filter(move |(_, &l)| l & mask == mask)
            .map(|(s, _)| s as u32)
    }

    /// Returns a copy where the given states are absorbing (all outgoing
    /// transitions removed). Used for first-passage ("unreliability")
    /// analysis. The copy is rebuilt as compact CSR in one pass.
    pub fn make_absorbing(&self, states: impl IntoIterator<Item = u32>) -> Self {
        let n = self.num_states();
        let mut clear = vec![false; n];
        for s in states {
            clear[s as usize] = true;
        }
        let mut off = Vec::with_capacity(n + 1);
        let mut tr = Vec::with_capacity(self.tr.len());
        let mut exit = Vec::with_capacity(n);
        let mut forms = self.forms.as_ref().map(|f| Vec::with_capacity(f.len()));
        off.push(0u32);
        for s in 0..n as u32 {
            if !clear[s as usize] {
                tr.extend_from_slice(self.row(s));
                exit.push(self.exit[s as usize]);
                if let (Some(out), Some(src)) = (&mut forms, &self.forms) {
                    let lo = self.off[s as usize] as usize;
                    let hi = self.off[s as usize + 1] as usize;
                    out.extend_from_slice(&src[lo..hi]);
                }
            } else {
                exit.push(0.0);
            }
            off.push(tr.len() as u32);
        }
        Self {
            off,
            tr,
            exit,
            labels: self.labels.clone(),
            initial: self.initial,
            forms,
        }
    }

    /// The parametric rate forms, parallel to [`Ctmc::transitions`], or
    /// `None` for chains built from non-parameterized models.
    pub fn forms(&self) -> Option<&[RateForm]> {
        self.forms.as_deref()
    }

    /// Whether the chain carries rate forms and can be re-rated.
    pub fn is_parametric(&self) -> bool {
        self.forms.is_some()
    }

    /// Re-evaluates every transition rate from its [`RateForm`] at the
    /// given parameter values, reusing the CSR layout verbatim: the
    /// offsets, targets, labels and initial state are copied, only the
    /// rates (and the cached exit rates, re-summed in row order) change.
    /// The result is formless — evaluating the same chain at another
    /// point starts from the original again.
    ///
    /// Evaluating a form at the model's declared base values reproduces
    /// the aggregated rates bitwise: every form accumulates its atoms in
    /// the exact order the aggregation pipeline summed the underlying
    /// rates.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::NotParametric`] if the chain has no forms,
    /// or [`CtmcError::BadRate`] if a form evaluates to a non-positive
    /// or non-finite rate at the given point.
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than the largest parameter id
    /// referenced by a form.
    pub fn rerate(&self, values: &[f64]) -> Result<Self, CtmcError> {
        let forms = self.forms.as_ref().ok_or(CtmcError::NotParametric)?;
        let n = self.num_states();
        let mut tr = Vec::with_capacity(self.tr.len());
        let mut exit = Vec::with_capacity(n);
        for s in 0..n {
            let lo = self.off[s] as usize;
            let hi = self.off[s + 1] as usize;
            for (form, &(_, target)) in forms[lo..hi].iter().zip(&self.tr[lo..hi]) {
                let rate = form.eval(values);
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(CtmcError::BadRate {
                        state: s as u32,
                        rate,
                    });
                }
                tr.push((rate, target));
            }
            exit.push(tr[lo..hi].iter().map(|&(r, _)| r).sum());
        }
        Ok(Self {
            off: self.off.clone(),
            tr,
            exit,
            labels: self.labels.clone(),
            initial: self.initial,
            forms: None,
        })
    }

    /// The initial distribution as a dense vector (unit mass on
    /// [`Ctmc::initial`]).
    pub fn initial_distribution(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.num_states()];
        d[self.initial as usize] = 1.0;
        d
    }

    /// Breadth-first locality ordering from a set of root states: states
    /// are renumbered in BFS visit order (roots in the order given, ties
    /// within a frontier by outgoing-adjacency order), so every state at
    /// BFS distance `l` occupies a contiguous index range ("level") and
    /// all out-neighbors of levels `0..=l` lie within levels `0..=l + 1`
    /// — the property the windowed transient engine relies on to keep
    /// its active row window a contiguous, cache-resident prefix. States
    /// unreachable from the roots are appended after the last level in
    /// ascending original order (they can never carry probability mass
    /// flowing out of the roots).
    ///
    /// # Panics
    ///
    /// Panics if a root is out of range or `roots` is empty.
    pub fn bfs_order(&self, roots: impl IntoIterator<Item = u32>) -> BfsOrder {
        let n = self.num_states();
        let mut perm = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut level_off = vec![0u32];
        for r in roots {
            assert!((r as usize) < n, "BFS root {r} out of range");
            if !seen[r as usize] {
                seen[r as usize] = true;
                perm.push(r);
            }
        }
        assert!(!perm.is_empty(), "BFS needs at least one root");
        level_off.push(perm.len() as u32);
        let mut frontier_start = 0usize;
        while frontier_start < perm.len() {
            let frontier_end = perm.len();
            for k in frontier_start..frontier_end {
                for &(_, t) in self.row(perm[k]) {
                    if !seen[t as usize] {
                        seen[t as usize] = true;
                        perm.push(t);
                    }
                }
            }
            if perm.len() > frontier_end {
                level_off.push(perm.len() as u32);
            }
            frontier_start = frontier_end;
        }
        let reachable = perm.len();
        for s in 0..n as u32 {
            if !seen[s as usize] {
                perm.push(s);
            }
        }
        BfsOrder {
            perm,
            level_off,
            reachable,
        }
    }
}

/// A breadth-first state renumbering of a [`Ctmc`] (see
/// [`Ctmc::bfs_order`]): `perm[new] = old`, with BFS level `l` occupying
/// the contiguous new-index range `level_off[l]..level_off[l + 1]` and
/// unreachable states packed after index `reachable`.
#[derive(Debug, Clone, PartialEq)]
pub struct BfsOrder {
    /// New index → original state id; roots first, then level by level,
    /// then the unreachable states.
    pub perm: Vec<u32>,
    /// Level boundaries in new indices (`levels + 1` entries, starting at
    /// 0 and ending at [`BfsOrder::reachable`]).
    pub level_off: Vec<u32>,
    /// Number of states reachable from the roots; `perm[reachable..]` are
    /// the unreachable states.
    pub reachable: usize,
}

impl BfsOrder {
    /// Number of BFS levels (root level included).
    pub fn num_levels(&self) -> usize {
        self.level_off.len() - 1
    }

    /// The inverse permutation: original state id → new index.
    pub fn inverse(&self) -> Vec<u32> {
        let mut inv = vec![0u32; self.perm.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            inv[old as usize] = new as u32;
        }
        inv
    }
}

/// Incremental CSR assembly: rows arrive in state order, are validated,
/// cleaned (self-loops dropped, parallel edges merged, sorted by target)
/// in a reused scratch buffer, and appended to the flat arrays.
struct CsrBuilder {
    off: Vec<u32>,
    tr: Vec<(f64, u32)>,
    exit: Vec<f64>,
    scratch: Vec<(f64, u32)>,
}

impl CsrBuilder {
    fn new(n: usize, transitions_hint: usize) -> Self {
        let mut off = Vec::with_capacity(n + 1);
        off.push(0);
        Self {
            off,
            tr: Vec::with_capacity(transitions_hint),
            exit: Vec::with_capacity(n),
            scratch: Vec::new(),
        }
    }

    fn push_row(
        &mut self,
        s: u32,
        n: usize,
        row: impl IntoIterator<Item = (f64, u32)>,
    ) -> Result<(), CtmcError> {
        self.scratch.clear();
        for (r, t) in row {
            if !(r.is_finite() && r > 0.0) {
                return Err(CtmcError::BadRate { state: s, rate: r });
            }
            if t as usize >= n {
                return Err(CtmcError::BadTarget {
                    state: s,
                    target: t,
                });
            }
            if t != s {
                self.scratch.push((r, t));
            }
        }
        self.scratch.sort_unstable_by_key(|a| a.1);
        let row_start = self.tr.len();
        for &(r, t) in &self.scratch {
            if self.tr.len() > row_start {
                let last = self.tr.last_mut().expect("row is non-empty");
                if last.1 == t {
                    last.0 += r;
                    continue;
                }
            }
            self.tr.push((r, t));
        }
        // Cache the exit rate as the sum over the *merged* row, matching
        // what summing `row(s)` on demand would give bit for bit.
        let exit = self.tr[row_start..].iter().map(|&(r, _)| r).sum();
        self.exit.push(exit);
        self.off.push(self.tr.len() as u32);
        Ok(())
    }

    fn finish(self, labels: Vec<StateLabel>, initial: u32) -> Ctmc {
        Ctmc {
            off: self.off,
            tr: self.tr,
            exit: self.exit,
            labels,
            initial,
            forms: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioimc::builder::IoImcBuilder;

    #[test]
    fn rejects_bad_input() {
        assert_eq!(Ctmc::new(vec![], vec![], 0), Err(CtmcError::Empty));
        assert!(matches!(
            Ctmc::new(vec![vec![(0.0, 0)]], vec![0], 0),
            Err(CtmcError::BadRate { .. })
        ));
        assert!(matches!(
            Ctmc::new(vec![vec![(1.0, 5)]], vec![0], 0),
            Err(CtmcError::BadTarget { .. })
        ));
        assert_eq!(
            Ctmc::new(vec![vec![]], vec![0], 3),
            Err(CtmcError::BadInitial(3))
        );
    }

    #[test]
    fn drops_self_loops_and_merges_parallel() {
        let c = Ctmc::new(
            vec![vec![(1.0, 0), (2.0, 1), (3.0, 1)], vec![]],
            vec![0, 0],
            0,
        )
        .unwrap();
        assert_eq!(c.row(0), &[(5.0, 1)]);
        assert!((c.exit_rate(0) - 5.0).abs() < 1e-12);
        assert_eq!(c.num_transitions(), 1);
    }

    #[test]
    fn csr_layout_is_flat_and_offsets_cover_rows() {
        let c = Ctmc::new(
            vec![vec![(1.0, 2), (0.5, 1)], vec![(2.0, 0)], vec![]],
            vec![0, 0, 1],
            0,
        )
        .unwrap();
        assert_eq!(c.offsets(), &[0, 2, 3, 3]);
        // rows are sorted by target within the flat array
        assert_eq!(c.transitions(), &[(0.5, 1), (1.0, 2), (2.0, 0)]);
        assert_eq!(c.row(0), &[(0.5, 1), (1.0, 2)]);
        assert_eq!(c.row(2), &[] as &[(f64, u32)]);
        assert_eq!(c.exit_rates(), &[1.5, 2.0, 0.0]);
    }

    #[test]
    fn from_csr_matches_from_rows() {
        // unsorted, with a self-loop and a parallel edge
        let rows = vec![vec![(1.0, 2), (2.0, 1), (0.5, 0), (3.0, 1)], vec![], vec![]];
        let from_rows = Ctmc::new(rows, vec![0, 0, 1], 0).unwrap();
        let off = vec![0u32, 4, 4, 4];
        let tr = vec![(1.0, 2), (2.0, 1), (0.5, 0), (3.0, 1)];
        let from_csr = Ctmc::from_csr(off, tr, vec![0, 0, 1], 0).unwrap();
        assert_eq!(from_rows, from_csr);
        assert_eq!(from_csr.row(0), &[(5.0, 1), (1.0, 2)]);
    }

    #[test]
    fn from_csr_rejects_malformed_offsets() {
        let tr = vec![(1.0, 1)];
        // too short, wrong tail, non-monotone
        for off in [vec![0u32, 1], vec![0, 1, 2], vec![0, 1, 0]] {
            assert!(matches!(
                Ctmc::from_csr(off, tr.clone(), vec![0, 0, 0], 0),
                Err(CtmcError::BadOffsets)
            ));
        }
    }

    #[test]
    fn incoming_is_the_exact_transpose() {
        let c = Ctmc::new(
            vec![vec![(1.0, 1), (2.0, 2)], vec![(0.5, 2)], vec![(3.0, 0)]],
            vec![0, 0, 0],
            0,
        )
        .unwrap();
        let inc = c.incoming();
        assert_eq!(inc.num_states(), 3);
        assert_eq!(inc.row(0), &[(3.0, 2)]);
        assert_eq!(inc.row(1), &[(1.0, 0)]);
        assert_eq!(inc.row(2), &[(2.0, 0), (0.5, 1)]);
    }

    #[test]
    fn from_ioimc_requires_markovian_only() {
        let mut ab = ioimc::Alphabet::new();
        let a = ab.intern("a");
        let mut b = IoImcBuilder::new();
        b.set_outputs([a]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.interactive(s0, a, s1);
        let imc = b.build().unwrap();
        assert!(matches!(
            Ctmc::from_ioimc(&imc),
            Err(CtmcError::NotMarkovian { state: 0 })
        ));
    }

    #[test]
    fn from_ioimc_copies_structure() {
        let mut b = IoImcBuilder::new();
        let s0 = b.add_labeled_state(0);
        let s1 = b.add_labeled_state(1);
        b.markovian(s0, 0.25, s1).markovian(s1, 4.0, s0);
        let imc = b.build().unwrap();
        let c = Ctmc::from_ioimc(&imc).unwrap();
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.label(1), 1);
        assert_eq!(c.states_with_label(1).collect::<Vec<_>>(), vec![1]);
        assert!((c.max_exit_rate() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rerate_reuses_layout_and_reevaluates_rates() {
        let mut b = IoImcBuilder::new();
        let s0 = b.add_labeled_state(0);
        let s1 = b.add_labeled_state(1);
        b.markovian_formed(s0, 0.5, s1, ioimc::RateForm::scaled(0, 1.0));
        b.markovian(s1, 4.0, s0);
        let imc = b.build().unwrap();
        let c = Ctmc::from_ioimc(&imc).unwrap();
        assert!(c.is_parametric());
        assert_eq!(c.forms().map(<[_]>::len), Some(2));
        // At the base value the re-rated chain is bitwise the original.
        let base = c.rerate(&[0.5]).unwrap();
        assert_eq!(base.transitions(), c.transitions());
        assert_eq!(base.exit_rates(), c.exit_rates());
        assert!(!base.is_parametric());
        // At another point only the parameterized rate moves.
        let moved = c.rerate(&[2.0]).unwrap();
        assert_eq!(moved.offsets(), c.offsets());
        assert_eq!(moved.row(0), &[(2.0, 1)]);
        assert_eq!(moved.row(1), &[(4.0, 0)]);
        assert_eq!(moved.exit_rates(), &[2.0, 4.0]);
        assert_eq!(moved.initial(), c.initial());
        assert_eq!(moved.labels(), c.labels());
        // Degenerate points and formless chains are rejected.
        assert!(matches!(
            c.rerate(&[0.0]),
            Err(CtmcError::BadRate { state: 0, .. })
        ));
        assert_eq!(base.rerate(&[1.0]), Err(CtmcError::NotParametric));
    }

    #[test]
    fn make_absorbing_keeps_forms_aligned() {
        let mut b = IoImcBuilder::new();
        let s0 = b.add_labeled_state(0);
        let s1 = b.add_labeled_state(1);
        b.markovian_formed(s0, 0.25, s1, ioimc::RateForm::scaled(0, 0.5))
            .markovian(s1, 3.0, s0);
        let imc = b.build().unwrap();
        let c = Ctmc::from_ioimc(&imc).unwrap();
        let absorbing = c.make_absorbing([s1]);
        assert!(absorbing.is_parametric());
        let moved = absorbing.rerate(&[4.0]).unwrap();
        assert_eq!(moved.row(0), &[(2.0, 1)]);
        assert!(moved.row(1).is_empty());
    }

    #[test]
    fn make_absorbing_clears_rows() {
        let c = Ctmc::new(vec![vec![(1.0, 1)], vec![(1.0, 0)]], vec![0, 1], 0).unwrap();
        let a = c.make_absorbing([1]);
        assert!(a.row(1).is_empty());
        assert_eq!(a.row(0), c.row(0));
        assert_eq!(a.exit_rate(1), 0.0);
        assert_eq!(a.num_transitions(), 1);
    }

    #[test]
    fn initial_distribution_is_unit_mass() {
        let c = Ctmc::new(vec![vec![(1.0, 1)], vec![]], vec![0, 0], 1).unwrap();
        assert_eq!(c.initial_distribution(), vec![0.0, 1.0]);
    }

    #[test]
    fn bfs_order_levels_are_distances() {
        // 0 -> 1 -> 2 -> 3, plus a back edge 3 -> 0 and an unreachable 4.
        let c = Ctmc::new(
            vec![
                vec![(1.0, 1)],
                vec![(1.0, 2)],
                vec![(1.0, 3)],
                vec![(1.0, 0)],
                vec![(1.0, 0)],
            ],
            vec![0; 5],
            0,
        )
        .unwrap();
        let order = c.bfs_order([0]);
        assert_eq!(order.perm, vec![0, 1, 2, 3, 4]);
        assert_eq!(order.level_off, vec![0, 1, 2, 3, 4]);
        assert_eq!(order.reachable, 4);
        assert_eq!(order.num_levels(), 4);
        assert_eq!(order.inverse(), vec![0, 1, 2, 3, 4]);
    }

    /// The level property the windowed engine needs: every out-neighbor
    /// of a state in level `l` sits in a level `<= l + 1`.
    #[test]
    fn bfs_order_neighbors_stay_within_one_level() {
        // A denser chain: star + ring + some shortcuts.
        let n = 23usize;
        let rows: Vec<Vec<(f64, u32)>> = (0..n)
            .map(|i| {
                let mut row = vec![(1.0, ((i + 1) % n) as u32)];
                if i % 3 == 0 {
                    row.push((0.5, ((i + 7) % n) as u32));
                }
                if i != 0 {
                    row.push((0.2, 0));
                }
                row
            })
            .collect();
        let c = Ctmc::new(rows, vec![0; n], 0).unwrap();
        let order = c.bfs_order([0]);
        assert_eq!(order.reachable, n);
        let inv = order.inverse();
        let level_of = |new: usize| -> usize {
            order
                .level_off
                .partition_point(|&o| o as usize <= new)
                .saturating_sub(1)
        };
        for s in 0..n as u32 {
            let ls = level_of(inv[s as usize] as usize);
            for &(_, t) in c.row(s) {
                let lt = level_of(inv[t as usize] as usize);
                assert!(lt <= ls + 1, "{s}(level {ls}) -> {t}(level {lt})");
            }
        }
    }

    #[test]
    fn bfs_order_multi_root_and_unreachable_tail() {
        let c = Ctmc::new(
            vec![vec![(1.0, 2)], vec![(1.0, 2)], vec![], vec![(1.0, 0)]],
            vec![0; 4],
            0,
        )
        .unwrap();
        let order = c.bfs_order([1, 0]);
        // Roots in the order given, then their joint frontier, then the
        // unreachable state 3.
        assert_eq!(order.perm, vec![1, 0, 2, 3]);
        assert_eq!(order.level_off, vec![0, 2, 3]);
        assert_eq!(order.reachable, 3);
    }
}
