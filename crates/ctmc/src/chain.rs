//! The labelled CTMC type.

use std::fmt;

use ioimc::{IoImc, StateLabel};

/// Errors when constructing a [`Ctmc`].
#[derive(Debug, Clone, PartialEq)]
pub enum CtmcError {
    /// The chain has no states.
    Empty,
    /// A rate is not finite and strictly positive.
    BadRate {
        /// Source state of the offending transition.
        state: u32,
        /// The offending rate.
        rate: f64,
    },
    /// A transition target is out of range.
    BadTarget {
        /// Source state of the offending transition.
        state: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// The initial state is out of range.
    BadInitial(u32),
    /// The source I/O-IMC still has interactive transitions (it is not a
    /// CTMC yet — run the reduction/vanishing-elimination pipeline first).
    NotMarkovian {
        /// A state with a leftover interactive transition.
        state: u32,
    },
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "chain has no states"),
            Self::BadRate { state, rate } => write!(f, "state {state} has invalid rate {rate}"),
            Self::BadTarget { state, target } => {
                write!(f, "state {state} has transition to invalid state {target}")
            }
            Self::BadInitial(s) => write!(f, "initial state {s} out of range"),
            Self::NotMarkovian { state } => write!(
                f,
                "state {state} still has interactive transitions; reduce the model first"
            ),
        }
    }
}

impl std::error::Error for CtmcError {}

/// A labelled continuous-time Markov chain.
///
/// Stored as per-state outgoing `(rate, target)` lists (self-loops are
/// dropped — they do not affect the stochastic process). Labels are the
/// same proposition bitmasks as in [`ioimc`]; Arcade uses bit 0 for
/// "system down".
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    rows: Vec<Vec<(f64, u32)>>,
    labels: Vec<StateLabel>,
    initial: u32,
}

impl Ctmc {
    /// Creates a CTMC from outgoing transition lists.
    ///
    /// # Errors
    ///
    /// Returns a [`CtmcError`] for empty chains, invalid rates/targets or an
    /// out-of-range initial state.
    pub fn new(
        rows: Vec<Vec<(f64, u32)>>,
        labels: Vec<StateLabel>,
        initial: u32,
    ) -> Result<Self, CtmcError> {
        let n = rows.len();
        if n == 0 {
            return Err(CtmcError::Empty);
        }
        assert_eq!(labels.len(), n, "one label per state required");
        if initial as usize >= n {
            return Err(CtmcError::BadInitial(initial));
        }
        let mut clean: Vec<Vec<(f64, u32)>> = Vec::with_capacity(n);
        for (s, row) in rows.into_iter().enumerate() {
            let mut out = Vec::with_capacity(row.len());
            for (r, t) in row {
                if !(r.is_finite() && r > 0.0) {
                    return Err(CtmcError::BadRate {
                        state: s as u32,
                        rate: r,
                    });
                }
                if t as usize >= n {
                    return Err(CtmcError::BadTarget {
                        state: s as u32,
                        target: t,
                    });
                }
                if t as usize != s {
                    out.push((r, t));
                }
            }
            // merge parallel edges
            out.sort_unstable_by_key(|a| a.1);
            let mut merged: Vec<(f64, u32)> = Vec::with_capacity(out.len());
            for (r, t) in out {
                match merged.last_mut() {
                    Some(last) if last.1 == t => last.0 += r,
                    _ => merged.push((r, t)),
                }
            }
            clean.push(merged);
        }
        Ok(Self {
            rows: clean,
            labels,
            initial,
        })
    }

    /// Converts a purely Markovian I/O-IMC (e.g. the output of
    /// `bisim::vanishing::eliminate_vanishing`) into a CTMC.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::NotMarkovian`] if any interactive transition
    /// remains.
    pub fn from_ioimc(imc: &IoImc) -> Result<Self, CtmcError> {
        for s in 0..imc.num_states() as u32 {
            if !imc.interactive_from(s).is_empty() {
                return Err(CtmcError::NotMarkovian { state: s });
            }
        }
        let rows = (0..imc.num_states() as u32)
            .map(|s| imc.markovian_from(s).to_vec())
            .collect();
        Self::new(rows, imc.labels().to_vec(), imc.initial())
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.rows.len()
    }

    /// Number of (merged) transitions.
    pub fn num_transitions(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// The initial state.
    pub fn initial(&self) -> u32 {
        self.initial
    }

    /// Outgoing transitions of `s`.
    pub fn row(&self, s: u32) -> &[(f64, u32)] {
        &self.rows[s as usize]
    }

    /// Total exit rate of `s`.
    pub fn exit_rate(&self, s: u32) -> f64 {
        self.rows[s as usize].iter().map(|&(r, _)| r).sum()
    }

    /// Maximum exit rate over all states (the uniformization constant base).
    pub fn max_exit_rate(&self) -> f64 {
        (0..self.num_states() as u32)
            .map(|s| self.exit_rate(s))
            .fold(0.0, f64::max)
    }

    /// The label of `s`.
    pub fn label(&self, s: u32) -> StateLabel {
        self.labels[s as usize]
    }

    /// All labels.
    pub fn labels(&self) -> &[StateLabel] {
        &self.labels
    }

    /// States whose label has all bits of `mask` set.
    pub fn states_with_label(&self, mask: StateLabel) -> impl Iterator<Item = u32> + '_ {
        self.labels
            .iter()
            .enumerate()
            .filter(move |(_, &l)| l & mask == mask)
            .map(|(s, _)| s as u32)
    }

    /// Returns a copy where the given states are absorbing (all outgoing
    /// transitions removed). Used for first-passage ("unreliability")
    /// analysis.
    pub fn make_absorbing(&self, states: impl IntoIterator<Item = u32>) -> Self {
        let mut out = self.clone();
        for s in states {
            out.rows[s as usize].clear();
        }
        out
    }

    /// The initial distribution as a dense vector (unit mass on
    /// [`Ctmc::initial`]).
    pub fn initial_distribution(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.num_states()];
        d[self.initial as usize] = 1.0;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioimc::builder::IoImcBuilder;

    #[test]
    fn rejects_bad_input() {
        assert_eq!(Ctmc::new(vec![], vec![], 0), Err(CtmcError::Empty));
        assert!(matches!(
            Ctmc::new(vec![vec![(0.0, 0)]], vec![0], 0),
            Err(CtmcError::BadRate { .. })
        ));
        assert!(matches!(
            Ctmc::new(vec![vec![(1.0, 5)]], vec![0], 0),
            Err(CtmcError::BadTarget { .. })
        ));
        assert_eq!(
            Ctmc::new(vec![vec![]], vec![0], 3),
            Err(CtmcError::BadInitial(3))
        );
    }

    #[test]
    fn drops_self_loops_and_merges_parallel() {
        let c = Ctmc::new(
            vec![vec![(1.0, 0), (2.0, 1), (3.0, 1)], vec![]],
            vec![0, 0],
            0,
        )
        .unwrap();
        assert_eq!(c.row(0), &[(5.0, 1)]);
        assert!((c.exit_rate(0) - 5.0).abs() < 1e-12);
        assert_eq!(c.num_transitions(), 1);
    }

    #[test]
    fn from_ioimc_requires_markovian_only() {
        let mut ab = ioimc::Alphabet::new();
        let a = ab.intern("a");
        let mut b = IoImcBuilder::new();
        b.set_outputs([a]);
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.interactive(s0, a, s1);
        let imc = b.build().unwrap();
        assert!(matches!(
            Ctmc::from_ioimc(&imc),
            Err(CtmcError::NotMarkovian { state: 0 })
        ));
    }

    #[test]
    fn from_ioimc_copies_structure() {
        let mut b = IoImcBuilder::new();
        let s0 = b.add_labeled_state(0);
        let s1 = b.add_labeled_state(1);
        b.markovian(s0, 0.25, s1).markovian(s1, 4.0, s0);
        let imc = b.build().unwrap();
        let c = Ctmc::from_ioimc(&imc).unwrap();
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.label(1), 1);
        assert_eq!(c.states_with_label(1).collect::<Vec<_>>(), vec![1]);
        assert!((c.max_exit_rate() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn make_absorbing_clears_rows() {
        let c = Ctmc::new(vec![vec![(1.0, 1)], vec![(1.0, 0)]], vec![0, 1], 0).unwrap();
        let a = c.make_absorbing([1]);
        assert!(a.row(1).is_empty());
        assert_eq!(a.row(0), c.row(0));
    }

    #[test]
    fn initial_distribution_is_unit_mass() {
        let c = Ctmc::new(vec![vec![(1.0, 1)], vec![]], vec![0, 0], 1).unwrap();
        assert_eq!(c.initial_distribution(), vec![0.0, 1.0]);
    }
}
