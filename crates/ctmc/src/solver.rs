//! Shared solver configuration for the CTMC numerics kernels.
//!
//! The steady-state ([`crate::steady`]) and first-passage
//! ([`crate::absorbing`]) solvers pick between a dense direct path and a
//! sparse iterative path; [`SolverOptions`] makes the crossover point and
//! the iteration-control knobs explicit instead of burying them as module
//! constants. The defaults reproduce the pre-`SolverOptions` behavior
//! exactly (dense up to 3 000 states, 1e-14 relative tolerance, 200 000
//! sweep cap), so `*_with(&SolverOptions::default())` equals the plain
//! entry points.

/// The iterative kernel used above [`SolverOptions::dense_limit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IterativeMethod {
    /// Gauss–Seidel sweeps over the balance equations (default). Updates
    /// propagate within a sweep, which converges far faster than power
    /// iteration on the stiff chains dependability models produce.
    #[default]
    GaussSeidel,
    /// Power iteration on the uniformized DTMC (`P = I + Q/Λ`). Slower —
    /// its convergence rate is the subdominant eigenvalue of `P` — but
    /// useful as a cross-check because it only ever mixes distributions.
    Power,
}

/// Configuration of the dense/iterative solver split and the iterative
/// termination criteria.
///
/// # Semantics
///
/// * `dense_limit` — chains with `num_states <= dense_limit` are solved
///   by dense Gaussian elimination with partial pivoting (exact up to
///   rounding, robust for stiff chains); larger chains use the sparse
///   iterative path. The default (3 000) is the historical built-in
///   threshold, so existing small-model results are bit-for-bit
///   unchanged.
/// * `tol` — iterative convergence criterion: the sweep-to-sweep
///   **maximum relative change** over all vector components,
///   `max_i |x'_i - x_i| / max(|x'_i|, 1e-300)`. Iteration stops at the
///   first sweep where this drops below `tol`.
/// * `max_sweeps` — hard cap on iterative sweeps. If the tolerance is not
///   reached the solver returns the current iterate (it does not error):
///   dependability pipelines prefer a slightly stale vector over an
///   abort, and callers can tighten/loosen the pair as needed.
/// * `method` — which iterative kernel runs above the dense limit.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Largest chain solved densely (see type docs).
    pub dense_limit: usize,
    /// Relative sweep-to-sweep convergence tolerance (see type docs).
    pub tol: f64,
    /// Iteration cap for the sparse solvers (see type docs).
    pub max_sweeps: usize,
    /// Iterative kernel choice.
    pub method: IterativeMethod,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            dense_limit: 3000,
            tol: 1e-14,
            max_sweeps: 200_000,
            method: IterativeMethod::GaussSeidel,
        }
    }
}

impl SolverOptions {
    /// Returns a copy with the dense/iterative crossover set to `limit`
    /// (`0` forces the sparse path even for tiny chains — used by tests
    /// to compare both paths on the same model).
    pub fn with_dense_limit(mut self, limit: usize) -> Self {
        self.dense_limit = limit;
        self
    }

    /// Returns a copy with the given relative tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Returns a copy with the given sweep cap.
    pub fn with_max_sweeps(mut self, max_sweeps: usize) -> Self {
        self.max_sweeps = max_sweeps;
        self
    }

    /// Returns a copy using the given iterative kernel.
    pub fn with_method(mut self, method: IterativeMethod) -> Self {
        self.method = method;
        self
    }
}
