//! Shared solver configuration for the CTMC numerics kernels.
//!
//! The steady-state ([`crate::steady`]) and first-passage
//! ([`crate::absorbing`]) solvers pick between a dense direct path and a
//! sparse iterative path; [`SolverOptions`] makes the crossover point and
//! the iteration-control knobs explicit instead of burying them as module
//! constants. The defaults reproduce the pre-`SolverOptions` behavior
//! exactly (dense up to 3 000 states, 1e-14 relative tolerance, 200 000
//! sweep cap), so `*_with(&SolverOptions::default())` equals the plain
//! entry points.

/// Head-room factor applied to the maximum exit rate when uniformizing
/// (`Λ = headroom · max exit`): the strict inequality keeps every state's
/// self-loop probability positive, so the DTMC is aperiodic. Shared by
/// the transient engine and the DTMC-based steady kernels.
pub(crate) const UNIF_HEADROOM: f64 = 1.02;

/// The iterative kernel used above [`SolverOptions::dense_limit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IterativeMethod {
    /// Gauss–Seidel sweeps over the balance equations (default). Updates
    /// propagate within a sweep, which converges far faster than power
    /// iteration on the stiff chains dependability models produce. When
    /// the sweep-to-sweep progress stalls far above the tolerance, the
    /// solver falls back to the Krylov kernel with the remaining sweep
    /// budget (see [`crate::steady`]).
    #[default]
    GaussSeidel,
    /// Power iteration on the uniformized DTMC (`P = I + Q/Λ`). Slower —
    /// its convergence rate is the subdominant eigenvalue of `P` — but
    /// useful as a cross-check because it only ever mixes distributions.
    Power,
    /// Restarted Arnoldi iteration on the uniformized DTMC: builds a small
    /// Krylov basis per restart and extracts the Ritz vector of the unit
    /// eigenvalue, followed by a short Gauss–Seidel polish for full
    /// relative accuracy on stiff chains. Converges where plain
    /// Gauss–Seidel stalls (nearly-decoupled or badly ordered chains).
    Krylov,
}

/// Configuration of the sharded uniformization engine and its
/// steady-state detection (see [`crate::transient`]).
///
/// # Semantics
///
/// * `threads` — worker threads for the DTMC matrix-vector step. `0`
///   means one worker per available core, `1` (the default) forces the
///   sequential path; requests above the machine's core count are
///   clamped (oversubscribed lockstep workers are strictly slower). The
///   sharded step computes every state's inflow with exactly the per-row
///   code the serial path runs, so results are **bitwise identical** for
///   every thread count and shard size; only the wall clock changes.
/// * `shard_min` — minimum number of states per shard. Chains with fewer
///   than `2 * shard_min` states run serially no matter the thread count
///   (fan-out overhead would dominate); larger chains get at most
///   `num_states / shard_min` shards, balanced by transition count.
/// * `steady_tol` — steady-state detection budget: the uniformized chain
///   is declared converged when the **projected total remaining drift**
///   `δ / (1 − ρ̂)` falls below it, where `δ = ‖π P − π‖∞` is the DTMC
///   step delta and `ρ̂` the contraction ratio estimated from the recent
///   delta history (the raw delta alone under-reports the remaining
///   distance by the spectral gap on nearly-decoupled chains — rare
///   failures next to fast repairs). On detection the remaining Poisson
///   tail mass is assigned to the converged vector, and **all later grid
///   points** of the batched entry points answer from that vector
///   without further stepping. `0.0` disables detection. The projection
///   is tight when a single slow mode dominates; a hidden mode decaying
///   orders of magnitude slower than everything visible in the delta
///   history can still evade it, as with any detection that does not
///   eigen-analyze the chain.
/// * `adaptive` — selects the **adaptive, support-windowed** engine
///   (default): the transposed operator is stored with raw rates over a
///   BFS locality reordering, the uniformization rate `Λ` is re-chosen
///   per grid segment from the maximum exit rate of the distribution's
///   current ε-support, and each DTMC step gathers only the contiguous
///   window of rows reachable from that support. `false` selects the
///   exact global-Λ full-sweep engine (every row, `Λ` from the global
///   maximum exit rate) — the reference the adaptive engine is
///   ablation-tested against. See [`crate::transient`] for the error
///   budget.
/// * `support_tol` — the adaptive engine's per-segment mass budget for
///   support truncation: within one grid segment, the probability mass
///   dropped across the four truncation channels (trailing-level
///   shrinking, up-front zeroing of dust on states hotter than `Λ_seg`,
///   frozen-frontier escape, exit-capped inflow — a quarter of the
///   budget each) is bounded by `support_tol`, so a `k`-segment grid
///   answers within `k · support_tol` (sup-norm) of the exact engine, on
///   top of the shared `~1e-15` Poisson truncation. `0.0` makes the
///   windowing lossless (the window expands whenever any mass could
///   escape, and `Λ_seg` covers every state carrying mass). Ignored by
///   the exact engine.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientOptions {
    /// Worker threads for the sharded DTMC step (see type docs).
    pub threads: usize,
    /// Minimum states per shard (see type docs).
    pub shard_min: usize,
    /// Steady-state detection threshold; `0.0` disables (see type docs).
    pub steady_tol: f64,
    /// Engine selection: adaptive windowed (default) vs exact global-Λ
    /// full-sweep (see type docs).
    pub adaptive: bool,
    /// Per-segment support-truncation mass budget of the adaptive engine;
    /// `0.0` keeps the windowing lossless (see type docs).
    pub support_tol: f64,
}

impl Default for TransientOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            shard_min: 4096,
            steady_tol: 1e-13,
            adaptive: true,
            support_tol: 1e-14,
        }
    }
}

impl TransientOptions {
    /// Returns a copy with the given worker thread count (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy with the given minimum shard size.
    pub fn with_shard_min(mut self, shard_min: usize) -> Self {
        self.shard_min = shard_min;
        self
    }

    /// Returns a copy with the given steady-state detection threshold
    /// (`0.0` disables detection).
    pub fn with_steady_tol(mut self, steady_tol: f64) -> Self {
        self.steady_tol = steady_tol;
        self
    }

    /// Returns a copy selecting the adaptive windowed engine (`true`, the
    /// default) or the exact global-Λ full-sweep engine (`false`).
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Returns a copy with the given per-segment support-truncation mass
    /// budget (`0.0` keeps the windowing lossless).
    pub fn with_support_tol(mut self, support_tol: f64) -> Self {
        self.support_tol = support_tol;
        self
    }
}

/// Configuration of the dense/iterative solver split and the iterative
/// termination criteria.
///
/// # Semantics
///
/// * `dense_limit` — chains with `num_states <= dense_limit` are solved
///   by dense Gaussian elimination with partial pivoting (exact up to
///   rounding, robust for stiff chains); larger chains use the sparse
///   iterative path. The default (3 000) is the historical built-in
///   threshold, so existing small-model results are bit-for-bit
///   unchanged.
/// * `tol` — iterative convergence criterion: the sweep-to-sweep
///   **maximum relative change** over all vector components,
///   `max_i |x'_i - x_i| / max(|x'_i|, 1e-300)`. Iteration stops at the
///   first sweep where this drops below `tol`.
/// * `max_sweeps` — hard cap on iterative sweeps. If the tolerance is not
///   reached the solver returns the current iterate (it does not error):
///   dependability pipelines prefer a slightly stale vector over an
///   abort, and callers can tighten/loosen the pair as needed.
/// * `method` — which iterative kernel runs above the dense limit.
/// * `transient` — configuration of the sharded uniformization engine
///   (worker threads, shard granularity, steady-state detection); see
///   [`TransientOptions`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Largest chain solved densely (see type docs).
    pub dense_limit: usize,
    /// Relative sweep-to-sweep convergence tolerance (see type docs).
    pub tol: f64,
    /// Iteration cap for the sparse solvers (see type docs).
    pub max_sweeps: usize,
    /// Iterative kernel choice.
    pub method: IterativeMethod,
    /// Uniformization engine configuration (threads, shards, detection).
    pub transient: TransientOptions,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            dense_limit: 3000,
            tol: 1e-14,
            max_sweeps: 200_000,
            method: IterativeMethod::GaussSeidel,
            transient: TransientOptions::default(),
        }
    }
}

impl SolverOptions {
    /// Returns a copy with the dense/iterative crossover set to `limit`
    /// (`0` forces the sparse path even for tiny chains — used by tests
    /// to compare both paths on the same model).
    pub fn with_dense_limit(mut self, limit: usize) -> Self {
        self.dense_limit = limit;
        self
    }

    /// Returns a copy with the given relative tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Returns a copy with the given sweep cap.
    pub fn with_max_sweeps(mut self, max_sweeps: usize) -> Self {
        self.max_sweeps = max_sweeps;
        self
    }

    /// Returns a copy using the given iterative kernel.
    pub fn with_method(mut self, method: IterativeMethod) -> Self {
        self.method = method;
        self
    }

    /// Returns a copy with the given uniformization engine configuration.
    pub fn with_transient(mut self, transient: TransientOptions) -> Self {
        self.transient = transient;
        self
    }
}
