//! Continuous-time Markov chain representation and solvers.
//!
//! The last stage of the Arcade pipeline converts the fully composed and
//! reduced I/O-IMC into a labelled CTMC ([`Ctmc::from_ioimc`]) and computes
//! dependability measures on it:
//!
//! * [`steady::steady_state`] — long-run distribution, giving the
//!   steady-state availability of Table 1,
//! * [`transient::transient`] — uniformization with Fox–Glynn-style Poisson
//!   truncation, giving point availability,
//! * [`absorbing`] — first-passage ("unreliability") analysis by making the
//!   down states absorbing, and mean time to failure,
//! * [`measures`] — the dependability measures expressed over state labels.
//!
//! # Storage and solvers
//!
//! A [`Ctmc`] is flat CSR: one `num_states + 1` offset array plus one
//! contiguous `(rate, target)` transition array (rows sorted by target,
//! parallel edges merged, self-loops dropped), with per-state exit rates
//! cached at construction. Every kernel — the uniformization sweep, the
//! steady-state solvers, the first-passage/hitting-time solvers — iterates
//! these contiguous slices; solvers that sweep column-wise build the
//! transposed adjacency once via [`Ctmc::incoming`]. Chains can be built
//! from per-state rows ([`Ctmc::new`]), directly from CSR arrays
//! ([`Ctmc::from_csr`]) or zero-conversion from a reduced I/O-IMC's own
//! CSR storage ([`Ctmc::from_ioimc`]).
//!
//! The dense-vs-iterative split and the iteration controls are configured
//! by [`SolverOptions`] (default: dense Gaussian elimination up to 3 000
//! states, Gauss–Seidel above with 1e-14 relative tolerance, with a
//! Krylov fallback for chains where Gauss–Seidel stalls): see
//! [`steady::steady_state_with`] and
//! [`absorbing::mean_time_to_absorption_with`]. The defaults reproduce
//! the historical behavior, so plain [`steady::steady_state`] etc. are
//! unchanged.
//!
//! # Parallel transient analysis and steady-state detection
//!
//! The uniformization engine ([`transient`]) computes the DTMC step as a
//! gather over the transposed CSR and can fan it out over row shards on
//! scoped worker threads — configured by [`TransientOptions`] (inside
//! [`SolverOptions::transient`], default serial). Results are **bitwise
//! identical** for every thread count and shard size. Steady-state
//! detection (on by default, `steady_tol = 1e-13`) stops stepping once
//! the uniformized chain has converged and answers all later grid points
//! of a batched query from the converged vector; Poisson weight vectors
//! are memoized per `Λ·Δt` through [`poisson::PoissonCache`]. See the
//! [`transient`] module docs for the full semantics.
//!
//! # Example
//!
//! The classic two-state machine (failure rate λ, repair rate µ) has
//! steady-state availability µ/(λ+µ):
//!
//! ```
//! use ctmc::{Ctmc, measures};
//! let (lambda, mu) = (0.001, 0.5);
//! let ctmc = Ctmc::new(
//!     vec![vec![(lambda, 1)], vec![(mu, 0)]],
//!     vec![0, 1], // bit 0 marks "down"
//!     0,
//! ).unwrap();
//! let a = measures::steady_state_availability(&ctmc, 1);
//! assert!((a - mu / (lambda + mu)).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absorbing;
pub mod chain;
pub mod context;
pub mod csl;
pub mod measures;
pub mod poisson;
pub mod solver;
pub mod steady;
pub mod transient;

pub use chain::{Ctmc, CtmcError, Incoming};
pub use context::{MeasureContext, SolveCounters};
pub use ioimc::budget;
pub use poisson::PoissonCache;
pub use solver::{IterativeMethod, SolverOptions, TransientOptions};
