//! Continuous-time Markov chain representation and solvers.
//!
//! The last stage of the Arcade pipeline converts the fully composed and
//! reduced I/O-IMC into a labelled CTMC ([`Ctmc::from_ioimc`]) and computes
//! dependability measures on it:
//!
//! * [`steady::steady_state`] — long-run distribution (dense Gaussian
//!   elimination for small chains, Gauss–Seidel for large ones), giving the
//!   steady-state availability of Table 1,
//! * [`transient::transient`] — uniformization with Fox–Glynn-style Poisson
//!   truncation, giving point availability,
//! * [`absorbing`] — first-passage ("unreliability") analysis by making the
//!   down states absorbing, and mean time to failure,
//! * [`measures`] — the dependability measures expressed over state labels.
//!
//! # Example
//!
//! The classic two-state machine (failure rate λ, repair rate µ) has
//! steady-state availability µ/(λ+µ):
//!
//! ```
//! use ctmc::{Ctmc, measures};
//! let (lambda, mu) = (0.001, 0.5);
//! let ctmc = Ctmc::new(
//!     vec![vec![(lambda, 1)], vec![(mu, 0)]],
//!     vec![0, 1], // bit 0 marks "down"
//!     0,
//! ).unwrap();
//! let a = measures::steady_state_availability(&ctmc, 1);
//! assert!((a - mu / (lambda + mu)).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absorbing;
pub mod chain;
pub mod csl;
pub mod measures;
pub mod poisson;
pub mod steady;
pub mod transient;

pub use chain::{Ctmc, CtmcError};
