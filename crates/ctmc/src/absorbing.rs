//! Absorbing-state analyses: first passage and mean time to failure.

use crate::chain::Ctmc;
use crate::transient::{transient, transient_many};

/// Probability of having *reached* any state in `targets` by time `t`
/// (first-passage probability).
///
/// The target states are made absorbing, so re-entering an up state after a
/// visit does not count as recovery — this is the "unreliability" measure
/// of the paper's RCS case study (§5.2.2), where components keep being
/// repaired but the first system-level failure is what matters.
///
/// # Panics
///
/// Panics if `t` is negative or not finite.
pub fn first_passage_probability(ctmc: &Ctmc, targets: &[u32], t: f64) -> f64 {
    let absorbing = ctmc.make_absorbing(targets.iter().copied());
    let pi = transient(&absorbing, t);
    crate::measures::state_mass(targets, &pi)
}

/// First-passage probabilities for a whole time grid (any order,
/// duplicates allowed), built from **one** absorbing transformation and
/// one incremental uniformization sweep ([`transient_many`]) instead of
/// one of each per point.
///
/// Returns one probability per entry of `ts`, in the order given.
///
/// # Panics
///
/// Panics if any time is negative or not finite.
pub fn first_passage_many(ctmc: &Ctmc, targets: &[u32], ts: &[f64]) -> Vec<f64> {
    let absorbing = ctmc.make_absorbing(targets.iter().copied());
    transient_many(&absorbing, ts)
        .iter()
        .map(|pi| crate::measures::state_mass(targets, pi))
        .collect()
}

/// Mean time until any state in `targets` is first entered (MTTF when the
/// targets are the system-down states).
///
/// Solves `Q_T x = -1` on the transient (non-target) states by dense
/// Gaussian elimination; `x[initial]` is returned. Returns `f64::INFINITY`
/// if the targets are unreachable from the initial state.
///
/// # Panics
///
/// Panics if the initial state is itself a target (MTTF is 0 — degenerate).
pub fn mean_time_to_absorption(ctmc: &Ctmc, targets: &[u32]) -> f64 {
    let n = ctmc.num_states();
    let mut is_target = vec![false; n];
    for &s in targets {
        is_target[s as usize] = true;
    }
    assert!(
        !is_target[ctmc.initial() as usize],
        "initial state is already a target"
    );
    // Index the transient states.
    let mut idx = vec![usize::MAX; n];
    let mut transient_states = Vec::new();
    for s in 0..n {
        if !is_target[s] {
            idx[s] = transient_states.len();
            transient_states.push(s as u32);
        }
    }
    let m = transient_states.len();
    // Dense system A x = b with A = Q restricted to transient states,
    // b = -1.
    let mut a = vec![0.0f64; m * m];
    let mut b = vec![-1.0f64; m];
    let mut reaches_target = vec![false; m];
    for (i, &s) in transient_states.iter().enumerate() {
        let mut exit = 0.0;
        for &(r, tgt) in ctmc.row(s) {
            exit += r;
            if is_target[tgt as usize] {
                reaches_target[i] = true;
            } else {
                a[i * m + idx[tgt as usize]] += r;
            }
        }
        a[i * m + i] -= exit;
        if exit == 0.0 {
            // Absorbing non-target state: never reaches the target.
            b[i] = 0.0;
            a[i * m + i] = 1.0;
        }
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..m {
        let pivot_row = (col..m)
            .max_by(|&i, &j| a[i * m + col].abs().total_cmp(&a[j * m + col].abs()))
            .expect("non-empty");
        if a[pivot_row * m + col].abs() < f64::MIN_POSITIVE {
            return f64::INFINITY; // singular: target unreachable somewhere
        }
        if pivot_row != col {
            for j in 0..m {
                a.swap(col * m + j, pivot_row * m + j);
            }
            b.swap(col, pivot_row);
        }
        let pivot = a[col * m + col];
        for row in col + 1..m {
            let factor = a[row * m + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..m {
                a[row * m + j] -= factor * a[col * m + j];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0f64; m];
    for row in (0..m).rev() {
        let mut rhs = b[row];
        for j in row + 1..m {
            rhs -= a[row * m + j] * x[j];
        }
        x[row] = rhs / a[row * m + row];
    }
    x[idx[ctmc.initial() as usize]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_passage_of_pure_death() {
        let l = 0.05;
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(99.0, 0)]], vec![0, 1], 0).unwrap();
        // With state 1 absorbing, the repair rate 99 must not matter.
        let p = first_passage_probability(&c, &[1], 10.0);
        assert!((p - (1.0 - (-l * 10.0f64).exp())).abs() < 1e-10);
    }

    #[test]
    fn mttf_of_exponential() {
        let l = 0.25;
        let c = Ctmc::new(vec![vec![(l, 1)], vec![]], vec![0, 1], 0).unwrap();
        let mttf = mean_time_to_absorption(&c, &[1]);
        assert!((mttf - 1.0 / l).abs() < 1e-10);
    }

    /// MTTF of a 2-unit parallel system without repair: 3/(2λ).
    #[test]
    fn mttf_parallel_redundancy() {
        let l = 0.1;
        // states: 0 = both up, 1 = one up, 2 = none up
        let c = Ctmc::new(
            vec![vec![(2.0 * l, 1)], vec![(l, 2)], vec![]],
            vec![0, 0, 1],
            0,
        )
        .unwrap();
        let mttf = mean_time_to_absorption(&c, &[2]);
        assert!((mttf - 1.5 / l).abs() < 1e-9);
    }

    /// Repair extends MTTF: 2-unit system with repair µ has
    /// MTTF = (3λ + µ) / (2λ²).
    #[test]
    fn mttf_with_repair() {
        let (l, m) = (0.1, 2.0);
        let c = Ctmc::new(
            vec![vec![(2.0 * l, 1)], vec![(l, 2), (m, 0)], vec![]],
            vec![0, 0, 1],
            0,
        )
        .unwrap();
        let mttf = mean_time_to_absorption(&c, &[2]);
        let expected = (3.0 * l + m) / (2.0 * l * l);
        assert!((mttf - expected).abs() / expected < 1e-10);
    }

    #[test]
    fn unreachable_target_gives_infinite_mttf() {
        let c = Ctmc::new(
            vec![vec![(1.0, 1)], vec![(1.0, 0)], vec![]],
            vec![0, 0, 1],
            0,
        )
        .unwrap();
        assert_eq!(mean_time_to_absorption(&c, &[2]), f64::INFINITY);
    }
}
