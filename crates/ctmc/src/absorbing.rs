//! Absorbing-state analyses: first passage and mean time to failure.
//!
//! [`mean_time_to_absorption`] solves the hitting-time system
//! `Q_T x = -1` on the transient (non-target) states. Since the sparse
//! rewrite it first **pre-restricts** the system by reachability: only
//! states reachable from the initial state matter, and if any reachable
//! transient state cannot reach a target at all (a dead end — including
//! zero-exit-rate states), the expected hitting time is `∞` and no linear
//! solve is needed. The surviving system is solved densely up to
//! [`SolverOptions::dense_limit`] and by Gauss–Seidel sweeps over the CSR
//! rows above it.

use crate::chain::Ctmc;
use crate::solver::SolverOptions;
use crate::transient::{transient, transient_many};

/// Probability of having *reached* any state in `targets` by time `t`
/// (first-passage probability).
///
/// The target states are made absorbing, so re-entering an up state after a
/// visit does not count as recovery — this is the "unreliability" measure
/// of the paper's RCS case study (§5.2.2), where components keep being
/// repaired but the first system-level failure is what matters.
///
/// # Panics
///
/// Panics if `t` is negative or not finite.
pub fn first_passage_probability(ctmc: &Ctmc, targets: &[u32], t: f64) -> f64 {
    let absorbing = ctmc.make_absorbing(targets.iter().copied());
    let pi = transient(&absorbing, t);
    crate::measures::state_mass(targets, &pi)
}

/// First-passage probabilities for a whole time grid (any order,
/// duplicates allowed), built from **one** absorbing transformation and
/// one incremental uniformization sweep ([`transient_many`]) instead of
/// one of each per point.
///
/// Returns one probability per entry of `ts`, in the order given.
///
/// # Panics
///
/// Panics if any time is negative or not finite.
pub fn first_passage_many(ctmc: &Ctmc, targets: &[u32], ts: &[f64]) -> Vec<f64> {
    let absorbing = ctmc.make_absorbing(targets.iter().copied());
    transient_many(&absorbing, ts)
        .iter()
        .map(|pi| crate::measures::state_mass(targets, pi))
        .collect()
}

/// Mean time until any state in `targets` is first entered (MTTF when the
/// targets are the system-down states), with default [`SolverOptions`].
///
/// Returns `f64::INFINITY` when the targets are unreachable from the
/// initial state, or when some reachable transient state cannot reach a
/// target (the walk can get trapped — e.g. a zero-exit-rate dead end —
/// so the expected hitting time diverges).
///
/// # Panics
///
/// Panics if the initial state is itself a target (MTTF is 0 — degenerate).
pub fn mean_time_to_absorption(ctmc: &Ctmc, targets: &[u32]) -> f64 {
    mean_time_to_absorption_with(ctmc, targets, &SolverOptions::default())
}

/// [`mean_time_to_absorption`] with explicit solver configuration.
///
/// # Panics
///
/// Panics if the initial state is itself a target.
pub fn mean_time_to_absorption_with(ctmc: &Ctmc, targets: &[u32], opts: &SolverOptions) -> f64 {
    let n = ctmc.num_states();
    let mut is_target = vec![false; n];
    for &s in targets {
        is_target[s as usize] = true;
    }
    assert!(
        !is_target[ctmc.initial() as usize],
        "initial state is already a target"
    );

    // Forward reachability from the initial state; targets are frontier
    // ends (the walk stops there, so their successors are irrelevant).
    let mut reachable = vec![false; n];
    let mut stack = vec![ctmc.initial()];
    reachable[ctmc.initial() as usize] = true;
    let mut any_target_reachable = false;
    while let Some(s) = stack.pop() {
        if is_target[s as usize] {
            any_target_reachable = true;
            continue;
        }
        for &(_, t) in ctmc.row(s) {
            if !reachable[t as usize] {
                reachable[t as usize] = true;
                stack.push(t);
            }
        }
    }
    if !any_target_reachable {
        return f64::INFINITY;
    }

    // Backward reachability from the targets over the transposed CSR:
    // which states can still reach a target?
    let incoming = ctmc.incoming();
    let mut can_reach = vec![false; n];
    let mut stack: Vec<u32> = targets.to_vec();
    for &s in targets {
        can_reach[s as usize] = true;
    }
    while let Some(s) = stack.pop() {
        for &(_, j) in incoming.row(s) {
            if !can_reach[j as usize] && !is_target[j as usize] {
                can_reach[j as usize] = true;
                stack.push(j);
            }
        }
    }
    // A reachable transient state that cannot reach a target is a trap:
    // the walk enters it with positive probability and never absorbs.
    if (0..n).any(|s| reachable[s] && !is_target[s] && !can_reach[s]) {
        return f64::INFINITY;
    }

    // Index the surviving transient states (reachable ∧ can-reach), in
    // state order — for irreducible chains this is exactly the old dense
    // system, so small-model results are unchanged bit for bit.
    let mut idx = vec![usize::MAX; n];
    let mut restricted = Vec::new();
    for s in 0..n {
        if reachable[s] && !is_target[s] {
            idx[s] = restricted.len();
            restricted.push(s as u32);
        }
    }
    let m = restricted.len();
    let x = if m <= opts.dense_limit {
        dense_hitting_time(ctmc, &is_target, &idx, &restricted)
    } else {
        sparse_hitting_time(ctmc, &is_target, &idx, &restricted, opts)
    };
    x[idx[ctmc.initial() as usize]]
}

/// Dense solve of the restricted system `A x = -1` (A = Q over the
/// restricted transient states) by Gaussian elimination with partial
/// pivoting. All restricted states reach a target, so A is nonsingular.
fn dense_hitting_time(
    ctmc: &Ctmc,
    is_target: &[bool],
    idx: &[usize],
    restricted: &[u32],
) -> Vec<f64> {
    let m = restricted.len();
    let mut a = vec![0.0f64; m * m];
    let mut b = vec![-1.0f64; m];
    for (i, &s) in restricted.iter().enumerate() {
        for &(r, tgt) in ctmc.row(s) {
            if !is_target[tgt as usize] {
                a[i * m + idx[tgt as usize]] += r;
            }
        }
        a[i * m + i] -= ctmc.exit_rate(s);
    }
    for col in 0..m {
        let pivot_row = (col..m)
            .max_by(|&i, &j| a[i * m + col].abs().total_cmp(&a[j * m + col].abs()))
            .expect("non-empty");
        // The pre-restriction guarantees nonsingularity mathematically;
        // keep the numerical guard of the old implementation anyway.
        if a[pivot_row * m + col].abs() < f64::MIN_POSITIVE {
            return vec![f64::INFINITY; m];
        }
        if pivot_row != col {
            for j in 0..m {
                a.swap(col * m + j, pivot_row * m + j);
            }
            b.swap(col, pivot_row);
        }
        let pivot = a[col * m + col];
        for row in col + 1..m {
            let factor = a[row * m + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..m {
                a[row * m + j] -= factor * a[col * m + j];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0f64; m];
    for row in (0..m).rev() {
        let mut rhs = b[row];
        for j in row + 1..m {
            rhs -= a[row * m + j] * x[j];
        }
        x[row] = rhs / a[row * m + row];
    }
    x
}

/// Sparse Gauss–Seidel on the hitting-time fixpoint
/// `x_i = (1 + Σ_{j transient} r_ij x_j) / exit_i`, sweeping the CSR rows
/// in place. The restricted system is a strictly substochastic M-matrix
/// (every state reaches a target), so the iteration converges
/// monotonically from the zero start.
///
/// Stopping on the raw sweep-to-sweep change alone is **unsound**: for
/// rare-failure chains the contraction factor `ρ` sits near 1 and each
/// sweep moves `x` by a tiny fraction of the remaining error, so a small
/// per-sweep change can coexist with an answer that is orders of
/// magnitude too low (the differential fuzzer found MTTFs underestimated
/// by 10^8×). The sweep therefore certifies convergence with a geometric
/// tail bound — `ρ` estimated from consecutive sweep changes, remaining
/// error bounded by `diff·ρ/(1−ρ)` — and if the sweep cap runs out
/// before the bound is met, falls back to the exact dense elimination
/// instead of returning the silently unconverged iterate.
fn sparse_hitting_time(
    ctmc: &Ctmc,
    is_target: &[bool],
    idx: &[usize],
    restricted: &[u32],
    opts: &SolverOptions,
) -> Vec<f64> {
    let m = restricted.len();
    let mut x = vec![0.0f64; m];
    let mut prev_diff = f64::INFINITY;
    for _ in 0..opts.max_sweeps {
        let mut diff = 0.0f64; // max absolute change this sweep
        let mut scale = 0.0f64; // max |x_i| after this sweep
        for (i, &s) in restricted.iter().enumerate() {
            let mut acc = 1.0f64;
            for &(r, tgt) in ctmc.row(s) {
                if !is_target[tgt as usize] {
                    acc += r * x[idx[tgt as usize]];
                }
            }
            let new = acc / ctmc.exit_rate(s);
            diff = diff.max((new - x[i]).abs());
            scale = scale.max(new.abs());
            x[i] = new;
        }
        if diff == 0.0 {
            return x; // exact fixpoint
        }
        if prev_diff.is_finite() && diff < prev_diff {
            let rho = diff / prev_diff;
            if diff * rho / (1.0 - rho) <= opts.tol * scale {
                return x;
            }
        }
        prev_diff = diff;
    }
    // The cap ran out before the tail bound certified convergence: the
    // chain contracts too slowly for iteration (stiff or rare-failure).
    // Solve exactly instead of returning an unconverged underestimate.
    dense_hitting_time(ctmc, is_target, idx, restricted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_passage_of_pure_death() {
        let l = 0.05;
        let c = Ctmc::new(vec![vec![(l, 1)], vec![(99.0, 0)]], vec![0, 1], 0).unwrap();
        // With state 1 absorbing, the repair rate 99 must not matter.
        let p = first_passage_probability(&c, &[1], 10.0);
        assert!((p - (1.0 - (-l * 10.0f64).exp())).abs() < 1e-10);
    }

    #[test]
    fn mttf_of_exponential() {
        let l = 0.25;
        let c = Ctmc::new(vec![vec![(l, 1)], vec![]], vec![0, 1], 0).unwrap();
        let mttf = mean_time_to_absorption(&c, &[1]);
        assert!((mttf - 1.0 / l).abs() < 1e-10);
    }

    /// MTTF of a 2-unit parallel system without repair: 3/(2λ).
    #[test]
    fn mttf_parallel_redundancy() {
        let l = 0.1;
        // states: 0 = both up, 1 = one up, 2 = none up
        let c = Ctmc::new(
            vec![vec![(2.0 * l, 1)], vec![(l, 2)], vec![]],
            vec![0, 0, 1],
            0,
        )
        .unwrap();
        let mttf = mean_time_to_absorption(&c, &[2]);
        assert!((mttf - 1.5 / l).abs() < 1e-9);
    }

    /// Repair extends MTTF: 2-unit system with repair µ has
    /// MTTF = (3λ + µ) / (2λ²).
    #[test]
    fn mttf_with_repair() {
        let (l, m) = (0.1, 2.0);
        let c = Ctmc::new(
            vec![vec![(2.0 * l, 1)], vec![(l, 2), (m, 0)], vec![]],
            vec![0, 0, 1],
            0,
        )
        .unwrap();
        let mttf = mean_time_to_absorption(&c, &[2]);
        let expected = (3.0 * l + m) / (2.0 * l * l);
        assert!((mttf - expected).abs() / expected < 1e-10);
    }

    #[test]
    fn unreachable_target_gives_infinite_mttf() {
        let c = Ctmc::new(
            vec![vec![(1.0, 1)], vec![(1.0, 0)], vec![]],
            vec![0, 0, 1],
            0,
        )
        .unwrap();
        assert_eq!(mean_time_to_absorption(&c, &[2]), f64::INFINITY);
    }

    /// The sparse path agrees with the dense path on the same chain.
    #[test]
    fn sparse_mttf_matches_dense() {
        let (l, m, k) = (0.2, 1.5, 20usize);
        // birth-death with absorption at k
        let rows: Vec<Vec<(f64, u32)>> = (0..=k)
            .map(|i| {
                let mut row = Vec::new();
                if i < k {
                    row.push((l, (i + 1) as u32));
                }
                if i > 0 && i < k {
                    row.push((m, (i - 1) as u32));
                }
                row
            })
            .collect();
        let c = Ctmc::new(rows, vec![0; k + 1], 0).unwrap();
        let dense = mean_time_to_absorption(&c, &[k as u32]);
        let sparse = mean_time_to_absorption_with(
            &c,
            &[k as u32],
            &SolverOptions::default().with_dense_limit(0),
        );
        assert!(
            (dense - sparse).abs() / dense < 1e-10,
            "{dense} vs {sparse}"
        );
    }

    /// A reachable zero-exit-rate dead end makes the expected hitting
    /// time infinite (the walk parks there forever with probability > 0).
    #[test]
    fn reachable_dead_end_gives_infinite_mttf() {
        // 0 → 1 (dead end), 0 → 2 (target)
        let c = Ctmc::new(
            vec![vec![(1.0, 1), (1.0, 2)], vec![], vec![]],
            vec![0, 0, 1],
            0,
        )
        .unwrap();
        assert_eq!(mean_time_to_absorption(&c, &[2]), f64::INFINITY);
        // ... on the sparse path too
        assert_eq!(
            mean_time_to_absorption_with(&c, &[2], &SolverOptions::default().with_dense_limit(0)),
            f64::INFINITY
        );
    }

    /// Unreachable parts of the chain (even pathological ones) do not
    /// affect the answer: the pre-restriction drops them.
    #[test]
    fn unreachable_states_are_ignored() {
        let l = 0.25;
        // state 2 is an unreachable dead end; 0 → 1 is the real chain
        let c = Ctmc::new(vec![vec![(l, 1)], vec![], vec![]], vec![0, 1, 0], 0).unwrap();
        let mttf = mean_time_to_absorption(&c, &[1]);
        assert!((mttf - 1.0 / l).abs() < 1e-10);
    }
}
