//! Truncated Poisson weights for uniformization.
//!
//! A lightweight version of the Fox–Glynn algorithm: weights are computed
//! outward from the mode by the multiplicative recurrence, truncated once
//! they fall below a relative threshold, and normalized. This avoids both
//! overflow (weights are scaled relative to the mode) and underflow of the
//! naive `e^{-λ} λ^k / k!` evaluation for large `λ`.
//!
//! [`PoissonCache`] memoizes weight vectors per `λ = Λ·Δt`: a uniform
//! time grid steps by the same `Δt` between consecutive points, and a
//! batched [`crate::transient`] query evaluates several measures over the
//! same grid, so the same `λ` recurs many times within one analysis.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A truncated, normalized Poisson weight vector (see [`poisson_weights`]):
/// `weights[i]` approximates `Poisson(λ)[left + i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonWeights {
    /// Index of the first retained weight.
    pub left: usize,
    /// The retained weights (sum 1).
    pub weights: Vec<f64>,
}

impl PoissonWeights {
    /// The number of DTMC powers a uniformization sweep consuming these
    /// weights visits: the truncation's right edge `left + len` (powers
    /// below `left` are stepped through without accumulating).
    pub fn total_steps(&self) -> usize {
        self.left + self.weights.len()
    }
}

/// A thread-safe memo of [`poisson_weights`] results keyed by the exact
/// bit pattern of `λ`. Shared across the sweeps of a batched transient
/// query (and, through `arcade`'s `Session`, across whole measure
/// batches) so identical uniformization parameters are expanded once.
/// The adaptive transient engine keys by its per-segment `Λ_seg·Δt`:
/// once a grid's support (and hence `Λ_seg`) stabilizes, every later
/// uniform segment — and every Λ-escalation retry that lands on a
/// previously tried rate — hits the memo.
///
/// The memo is **bounded**: it holds at most `capacity` weight vectors
/// (default [`PoissonCache::DEFAULT_CAPACITY`]). A weight vector for a
/// large `λ` spans `O(√λ)` doubles, and a parametric sweep touches one
/// distinct `Λ·Δt` per (point, grid-Δt) pair — unbounded, the memo
/// would grow linearly with the sweep. When full, the entry inserted
/// longest ago is evicted (FIFO; every `λ` of a uniform grid recurs
/// many times right after insertion, so insertion age tracks usefulness
/// closely while keeping eviction O(1) and allocation-free).
#[derive(Debug)]
pub struct PoissonCache {
    entries: Mutex<CacheState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// The entries map plus the FIFO insertion order of its keys.
#[derive(Debug, Clone, Default)]
struct CacheState {
    map: HashMap<u64, Arc<PoissonWeights>>,
    order: VecDeque<u64>,
}

impl Default for PoissonCache {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl Clone for PoissonCache {
    /// Clones the cached entries (cheap `Arc` bumps); the counters
    /// restart at the cloned values.
    fn clone(&self) -> Self {
        Self {
            entries: Mutex::new(self.entries.lock().expect("cache lock").clone()),
            capacity: self.capacity,
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
            evictions: AtomicU64::new(self.evictions.load(Ordering::Relaxed)),
        }
    }
}

impl PoissonCache {
    /// Default entry bound: generous enough that single-model analyses
    /// (a handful of distinct `Λ·Δt` values per grid) never evict, while
    /// capping a many-point parametric sweep at a few megabytes of
    /// resident weight vectors.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache holding at most `capacity` weight vectors
    /// (clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Mutex::new(CacheState::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The weights for `lambda`, computed on first use and memoized.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    pub fn get(&self, lambda: f64) -> Arc<PoissonWeights> {
        let key = lambda.to_bits();
        let mut entries = self.entries.lock().expect("cache lock");
        if let Some(w) = entries.map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return w.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (left, weights) = poisson_weights(lambda);
        let w = Arc::new(PoissonWeights { left, weights });
        while entries.map.len() >= self.capacity {
            let oldest = entries.order.pop_front().expect("order tracks map");
            entries.map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        entries.map.insert(key, w.clone());
        entries.order.push_back(key);
        w
    }

    /// The maximum number of resident weight vectors.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of currently resident weight vectors.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").map.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the memo since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run [`poisson_weights`].
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to keep the memo within its capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// Truncated, normalized Poisson probabilities for parameter `lambda`.
///
/// Returns `(left, weights)` such that `weights[i]` approximates
/// `Poisson(lambda)[left + i]` and the weights sum to 1. Both tails are
/// truncated where the weights drop below `1e-18` *relative to the modal
/// weight* (`REL_CUTOFF`); since the weights decay super-geometrically
/// past that point, the discarded tail mass is far below `1e-15` of the
/// total — comfortably under double-precision noise for uniformization.
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
pub fn poisson_weights(lambda: f64) -> (usize, Vec<f64>) {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "lambda must be non-negative and finite, got {lambda}"
    );
    if lambda == 0.0 {
        return (0, vec![1.0]);
    }
    const REL_CUTOFF: f64 = 1e-18;
    let mode = lambda.floor() as usize;

    // Unnormalized weights relative to the mode (weight 1 there).
    // Downward: w[k-1] = w[k] * k / lambda.
    let mut below: Vec<f64> = Vec::new();
    {
        let mut w = 1.0;
        let mut k = mode;
        while k > 0 {
            w *= k as f64 / lambda;
            if w < REL_CUTOFF {
                break;
            }
            below.push(w);
            k -= 1;
        }
    }
    // Upward: w[k+1] = w[k] * lambda / (k+1).
    let mut above: Vec<f64> = Vec::new();
    {
        let mut w = 1.0;
        let mut k = mode;
        loop {
            w *= lambda / (k + 1) as f64;
            if w < REL_CUTOFF {
                break;
            }
            above.push(w);
            k += 1;
        }
    }

    let left = mode - below.len();
    let mut weights: Vec<f64> = below.into_iter().rev().collect();
    weights.push(1.0);
    weights.extend(above);
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    (left, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_poisson(lambda: f64, k: usize) -> f64 {
        // Stable for the small parameters used in tests.
        let mut p = (-lambda).exp();
        for i in 1..=k {
            p *= lambda / i as f64;
        }
        p
    }

    #[test]
    fn zero_lambda_is_point_mass() {
        assert_eq!(poisson_weights(0.0), (0, vec![1.0]));
    }

    #[test]
    fn weights_sum_to_one() {
        for &l in &[0.1, 1.0, 7.3, 100.0, 5000.0] {
            let (_, w) = poisson_weights(l);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "lambda={l}: sum={sum}");
        }
    }

    #[test]
    fn matches_exact_small_lambda() {
        let lambda = 3.5;
        let (left, w) = poisson_weights(lambda);
        for (i, &wi) in w.iter().enumerate() {
            let exact = exact_poisson(lambda, left + i);
            assert!(
                (wi - exact).abs() < 1e-12,
                "k={}: {wi} vs {exact}",
                left + i
            );
        }
    }

    #[test]
    fn large_lambda_mean_is_right() {
        let lambda = 2500.0;
        let (left, w) = poisson_weights(lambda);
        let mean: f64 = w
            .iter()
            .enumerate()
            .map(|(i, &wi)| (left + i) as f64 * wi)
            .sum();
        assert!((mean - lambda).abs() < 1e-6 * lambda);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lambda_panics() {
        let _ = poisson_weights(-1.0);
    }

    #[test]
    fn total_steps_is_the_truncation_right_edge() {
        let (left, weights) = poisson_weights(2500.0);
        let pw = PoissonWeights { left, weights };
        assert!(pw.left > 0, "large λ truncates the left tail");
        assert_eq!(pw.total_steps(), pw.left + pw.weights.len());
        assert_eq!(
            PoissonWeights {
                left: 0,
                weights: vec![1.0]
            }
            .total_steps(),
            1
        );
    }

    #[test]
    fn cache_memoizes_per_lambda_bits() {
        let cache = PoissonCache::new();
        let a = cache.get(7.25);
        let b = cache.get(7.25);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the memo");
        let (left, weights) = poisson_weights(7.25);
        assert_eq!(a.left, left);
        assert_eq!(a.weights, weights);
        let c = cache.get(7.26);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.capacity(), PoissonCache::DEFAULT_CAPACITY);
    }

    #[test]
    fn bounded_cache_evicts_oldest_first() {
        let cache = PoissonCache::with_capacity(2);
        let a = cache.get(1.0);
        let _ = cache.get(2.0);
        let _ = cache.get(3.0); // evicts λ=1.0
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // λ=2.0 survived (still a hit), λ=1.0 must recompute.
        let hits_before = cache.hits();
        let _ = cache.get(2.0);
        assert_eq!(cache.hits(), hits_before + 1);
        let a2 = cache.get(1.0); // miss: evicts λ=3.0
        assert!(!Arc::ptr_eq(&a, &a2));
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_stays_bounded_under_many_distinct_lambdas() {
        let cache = PoissonCache::with_capacity(16);
        for k in 1..=500 {
            let _ = cache.get(k as f64 * 0.125);
            assert!(cache.len() <= 16);
        }
        assert_eq!(cache.len(), 16);
        assert_eq!(cache.evictions(), 500 - 16);
        assert_eq!(cache.misses(), 500);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cache = PoissonCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        let _ = cache.get(1.0);
        let _ = cache.get(2.0);
        assert_eq!(cache.len(), 1);
    }
}
