//! Truncated Poisson weights for uniformization.
//!
//! A lightweight version of the Fox–Glynn algorithm: weights are computed
//! outward from the mode by the multiplicative recurrence, truncated once
//! they fall below a relative threshold, and normalized. This avoids both
//! overflow (weights are scaled relative to the mode) and underflow of the
//! naive `e^{-λ} λ^k / k!` evaluation for large `λ`.

/// Truncated, normalized Poisson probabilities for parameter `lambda`.
///
/// Returns `(left, weights)` such that `weights[i]` approximates
/// `Poisson(lambda)[left + i]` and the weights sum to 1. Both tails are
/// truncated where the weights drop below `1e-18` *relative to the modal
/// weight* (`REL_CUTOFF`); since the weights decay super-geometrically
/// past that point, the discarded tail mass is far below `1e-15` of the
/// total — comfortably under double-precision noise for uniformization.
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
pub fn poisson_weights(lambda: f64) -> (usize, Vec<f64>) {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "lambda must be non-negative and finite, got {lambda}"
    );
    if lambda == 0.0 {
        return (0, vec![1.0]);
    }
    const REL_CUTOFF: f64 = 1e-18;
    let mode = lambda.floor() as usize;

    // Unnormalized weights relative to the mode (weight 1 there).
    // Downward: w[k-1] = w[k] * k / lambda.
    let mut below: Vec<f64> = Vec::new();
    {
        let mut w = 1.0;
        let mut k = mode;
        while k > 0 {
            w *= k as f64 / lambda;
            if w < REL_CUTOFF {
                break;
            }
            below.push(w);
            k -= 1;
        }
    }
    // Upward: w[k+1] = w[k] * lambda / (k+1).
    let mut above: Vec<f64> = Vec::new();
    {
        let mut w = 1.0;
        let mut k = mode;
        loop {
            w *= lambda / (k + 1) as f64;
            if w < REL_CUTOFF {
                break;
            }
            above.push(w);
            k += 1;
        }
    }

    let left = mode - below.len();
    let mut weights: Vec<f64> = below.into_iter().rev().collect();
    weights.push(1.0);
    weights.extend(above);
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    (left, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_poisson(lambda: f64, k: usize) -> f64 {
        // Stable for the small parameters used in tests.
        let mut p = (-lambda).exp();
        for i in 1..=k {
            p *= lambda / i as f64;
        }
        p
    }

    #[test]
    fn zero_lambda_is_point_mass() {
        assert_eq!(poisson_weights(0.0), (0, vec![1.0]));
    }

    #[test]
    fn weights_sum_to_one() {
        for &l in &[0.1, 1.0, 7.3, 100.0, 5000.0] {
            let (_, w) = poisson_weights(l);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "lambda={l}: sum={sum}");
        }
    }

    #[test]
    fn matches_exact_small_lambda() {
        let lambda = 3.5;
        let (left, w) = poisson_weights(lambda);
        for (i, &wi) in w.iter().enumerate() {
            let exact = exact_poisson(lambda, left + i);
            assert!(
                (wi - exact).abs() < 1e-12,
                "k={}: {wi} vs {exact}",
                left + i
            );
        }
    }

    #[test]
    fn large_lambda_mean_is_right() {
        let lambda = 2500.0;
        let (left, w) = poisson_weights(lambda);
        let mean: f64 = w
            .iter()
            .enumerate()
            .map(|(i, &wi)| (left + i) as f64 * wi)
            .sum();
        assert!((mean - lambda).abs() < 1e-6 * lambda);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lambda_panics() {
        let _ = poisson_weights(-1.0);
    }
}
