//! Truncated Poisson weights for uniformization.
//!
//! A lightweight version of the Fox–Glynn algorithm: weights are computed
//! outward from the mode by the multiplicative recurrence, truncated once
//! they fall below a relative threshold, and normalized. This avoids both
//! overflow (weights are scaled relative to the mode) and underflow of the
//! naive `e^{-λ} λ^k / k!` evaluation for large `λ`.
//!
//! [`PoissonCache`] memoizes weight vectors per `λ = Λ·Δt`: a uniform
//! time grid steps by the same `Δt` between consecutive points, and a
//! batched [`crate::transient`] query evaluates several measures over the
//! same grid, so the same `λ` recurs many times within one analysis.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A truncated, normalized Poisson weight vector (see [`poisson_weights`]):
/// `weights[i]` approximates `Poisson(λ)[left + i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonWeights {
    /// Index of the first retained weight.
    pub left: usize,
    /// The retained weights (sum 1).
    pub weights: Vec<f64>,
}

impl PoissonWeights {
    /// The number of DTMC powers a uniformization sweep consuming these
    /// weights visits: the truncation's right edge `left + len` (powers
    /// below `left` are stepped through without accumulating).
    pub fn total_steps(&self) -> usize {
        self.left + self.weights.len()
    }
}

/// A thread-safe memo of [`poisson_weights`] results keyed by the exact
/// bit pattern of `λ`. Shared across the sweeps of a batched transient
/// query (and, through `arcade`'s `Session`, across whole measure
/// batches) so identical uniformization parameters are expanded once.
/// The adaptive transient engine keys by its per-segment `Λ_seg·Δt`:
/// once a grid's support (and hence `Λ_seg`) stabilizes, every later
/// uniform segment — and every Λ-escalation retry that lands on a
/// previously tried rate — hits the memo.
#[derive(Debug, Default)]
pub struct PoissonCache {
    entries: Mutex<HashMap<u64, Arc<PoissonWeights>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Clone for PoissonCache {
    /// Clones the cached entries (cheap `Arc` bumps); the hit/miss
    /// counters restart at the cloned values.
    fn clone(&self) -> Self {
        Self {
            entries: Mutex::new(self.entries.lock().expect("cache lock").clone()),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
        }
    }
}

impl PoissonCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The weights for `lambda`, computed on first use and memoized.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    pub fn get(&self, lambda: f64) -> Arc<PoissonWeights> {
        let mut entries = self.entries.lock().expect("cache lock");
        if let Some(w) = entries.get(&lambda.to_bits()) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return w.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (left, weights) = poisson_weights(lambda);
        let w = Arc::new(PoissonWeights { left, weights });
        entries.insert(lambda.to_bits(), w.clone());
        w
    }

    /// Lookups answered from the memo since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run [`poisson_weights`].
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Truncated, normalized Poisson probabilities for parameter `lambda`.
///
/// Returns `(left, weights)` such that `weights[i]` approximates
/// `Poisson(lambda)[left + i]` and the weights sum to 1. Both tails are
/// truncated where the weights drop below `1e-18` *relative to the modal
/// weight* (`REL_CUTOFF`); since the weights decay super-geometrically
/// past that point, the discarded tail mass is far below `1e-15` of the
/// total — comfortably under double-precision noise for uniformization.
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
pub fn poisson_weights(lambda: f64) -> (usize, Vec<f64>) {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "lambda must be non-negative and finite, got {lambda}"
    );
    if lambda == 0.0 {
        return (0, vec![1.0]);
    }
    const REL_CUTOFF: f64 = 1e-18;
    let mode = lambda.floor() as usize;

    // Unnormalized weights relative to the mode (weight 1 there).
    // Downward: w[k-1] = w[k] * k / lambda.
    let mut below: Vec<f64> = Vec::new();
    {
        let mut w = 1.0;
        let mut k = mode;
        while k > 0 {
            w *= k as f64 / lambda;
            if w < REL_CUTOFF {
                break;
            }
            below.push(w);
            k -= 1;
        }
    }
    // Upward: w[k+1] = w[k] * lambda / (k+1).
    let mut above: Vec<f64> = Vec::new();
    {
        let mut w = 1.0;
        let mut k = mode;
        loop {
            w *= lambda / (k + 1) as f64;
            if w < REL_CUTOFF {
                break;
            }
            above.push(w);
            k += 1;
        }
    }

    let left = mode - below.len();
    let mut weights: Vec<f64> = below.into_iter().rev().collect();
    weights.push(1.0);
    weights.extend(above);
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    (left, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_poisson(lambda: f64, k: usize) -> f64 {
        // Stable for the small parameters used in tests.
        let mut p = (-lambda).exp();
        for i in 1..=k {
            p *= lambda / i as f64;
        }
        p
    }

    #[test]
    fn zero_lambda_is_point_mass() {
        assert_eq!(poisson_weights(0.0), (0, vec![1.0]));
    }

    #[test]
    fn weights_sum_to_one() {
        for &l in &[0.1, 1.0, 7.3, 100.0, 5000.0] {
            let (_, w) = poisson_weights(l);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "lambda={l}: sum={sum}");
        }
    }

    #[test]
    fn matches_exact_small_lambda() {
        let lambda = 3.5;
        let (left, w) = poisson_weights(lambda);
        for (i, &wi) in w.iter().enumerate() {
            let exact = exact_poisson(lambda, left + i);
            assert!(
                (wi - exact).abs() < 1e-12,
                "k={}: {wi} vs {exact}",
                left + i
            );
        }
    }

    #[test]
    fn large_lambda_mean_is_right() {
        let lambda = 2500.0;
        let (left, w) = poisson_weights(lambda);
        let mean: f64 = w
            .iter()
            .enumerate()
            .map(|(i, &wi)| (left + i) as f64 * wi)
            .sum();
        assert!((mean - lambda).abs() < 1e-6 * lambda);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lambda_panics() {
        let _ = poisson_weights(-1.0);
    }

    #[test]
    fn total_steps_is_the_truncation_right_edge() {
        let (left, weights) = poisson_weights(2500.0);
        let pw = PoissonWeights { left, weights };
        assert!(pw.left > 0, "large λ truncates the left tail");
        assert_eq!(pw.total_steps(), pw.left + pw.weights.len());
        assert_eq!(
            PoissonWeights {
                left: 0,
                weights: vec![1.0]
            }
            .total_steps(),
            1
        );
    }

    #[test]
    fn cache_memoizes_per_lambda_bits() {
        let cache = PoissonCache::new();
        let a = cache.get(7.25);
        let b = cache.get(7.25);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the memo");
        let (left, weights) = poisson_weights(7.25);
        assert_eq!(a.left, left);
        assert_eq!(a.weights, weights);
        let c = cache.get(7.26);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }
}
