//! Concurrent use of one shared [`Session`]: N threads hammering the
//! same `Arc<Session>` must get answers bitwise identical to a serial
//! evaluation, build every expensive artifact exactly once between them,
//! and report consistent [`SessionStats`] afterwards.
//!
//! [`SessionStats`]: arcade::query::SessionStats

use std::sync::Arc;

use arcade::cases;
use arcade::query::{Measure, Session};

const MEASURES: &[Measure] = &[
    Measure::SteadyStateAvailability,
    Measure::SteadyStateUnavailability,
    Measure::Mttf,
    Measure::PointUnavailability(10.0),
    Measure::PointUnavailability(100.0),
    Measure::Reliability(100.0),
    Measure::Reliability(1000.0),
    Measure::UnreliabilityWithRepair(100.0),
];

#[test]
fn hammered_session_matches_serial_and_builds_once() {
    // Serial reference on its own session.
    let def = cases::dds_scaled(2);
    let serial_session = Session::new(&def).expect("serial session");
    let serial = serial_session.evaluate(MEASURES).expect("serial evaluate");

    // One shared session, 8 threads x 2 rounds each, every thread asking
    // for the full batch (both model configurations) at once.
    let shared = Arc::new(Session::new(&def).expect("shared session"));
    let results: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    let mut last = Vec::new();
                    for _ in 0..2 {
                        last = shared.evaluate(MEASURES).expect("concurrent evaluate");
                    }
                    last
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect()
    });

    for (i, values) in results.iter().enumerate() {
        assert_eq!(values.len(), serial.len());
        for (j, (a, b)) in serial.iter().zip(values).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "thread {i}, measure {j}: concurrent {b:e} != serial {a:e}"
            );
        }
    }

    // The batch needs both configurations (availability + no-repair), and
    // 16 racing evaluations must have built each exactly once.
    let stats = shared.stats();
    assert_eq!(stats.aggregations_built, 2, "{stats:?}");
    assert_eq!(stats.steady_solves, 1, "{stats:?}");
    // 16 racing evaluations built exactly what one serial evaluation did.
    let serial_stats = serial_session.stats();
    assert_eq!(stats.aggregations_built, serial_stats.aggregations_built);
    assert_eq!(stats.absorbing_built, serial_stats.absorbing_built);
    assert_eq!(stats.steady_solves, serial_stats.steady_solves);
}

#[test]
fn concurrent_sessions_do_not_cross_contaminate_stats() {
    // Session A runs transient-heavy work (uniformization sweeps, DTMC
    // steps, Poisson lookups); session B concurrently computes only
    // direct linear-algebra measures. With per-session counters B must
    // see *none* of A's solver work — the regression this guards was
    // since-construction deltas of process-wide atomics, which under
    // `arcaded` attributed one model's work to every other session.
    let def_a = cases::dds_scaled(2);
    let def_b = cases::dds();
    let a = Session::new(&def_a).expect("session a");
    let b = Session::new(&def_b).expect("session b");
    std::thread::scope(|s| {
        s.spawn(|| {
            let grid: Vec<Measure> = (1..=20)
                .map(|k| Measure::PointUnavailability(k as f64 * 25.0))
                .collect();
            for _ in 0..3 {
                a.evaluate(&grid).expect("transient batch on a");
            }
        });
        s.spawn(|| {
            for _ in 0..3 {
                b.evaluate(&[Measure::SteadyStateUnavailability, Measure::Mttf])
                    .expect("direct measures on b");
            }
        });
    });

    let (sa, sb) = (a.stats(), b.stats());
    assert!(sa.dtmc_steps > 0, "a ran uniformization: {sa:?}");
    assert!(sa.sweeps > 0, "{sa:?}");
    assert!(sa.poisson_hits + sa.poisson_misses > 0, "{sa:?}");
    // B never uniformized, so every transient-side counter must be
    // exactly zero — none of A's concurrent work leaks in.
    assert_eq!(sb.dtmc_steps, 0, "b charged with a's steps: {sb:?}");
    assert_eq!(sb.sweeps, 0, "b charged with a's sweeps: {sb:?}");
    assert_eq!(
        (sb.poisson_hits, sb.poisson_misses, sb.poisson_evictions),
        (0, 0, 0),
        "b charged with a's Poisson traffic: {sb:?}"
    );
}

#[test]
fn traced_evaluation_attributes_builder_and_waiters() {
    let def = cases::dds();
    let session = Arc::new(Session::new(&def).expect("session"));
    let measures = [Measure::SteadyStateUnavailability];

    // Cold, 4 threads racing the same configuration: exactly one build
    // across all traces; the rest either waited on it or (if they started
    // after it finished) saw a warm cache.
    let traces: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let session = Arc::clone(&session);
                let measures = &measures;
                s.spawn(move || {
                    session
                        .evaluate_traced(measures)
                        .expect("traced evaluate")
                        .1
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect()
    });
    let built: u32 = traces.iter().map(|t| t.built).sum();
    assert_eq!(
        built, 1,
        "exactly one thread runs the aggregation: {traces:?}"
    );
    assert_eq!(session.stats().aggregations_built, 1);

    // Warm: no builds, no waits.
    let (_, trace) = session.evaluate_traced(&measures).expect("warm");
    assert_eq!(
        (trace.built, trace.waited),
        (0, 0),
        "warm query must not build"
    );
}
