//! Protocol edge cases against a real in-process server: malformed
//! JSON, unknown models, empty measure batches, oversized request lines
//! and clients that disconnect mid-conversation must all produce
//! structured errors (or clean closes) **without wedging the worker
//! pool** — after every abuse, a fresh client must still get answers.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use arcade::serve::{serve, Client, Json, ServerConfig};

/// Starts a small test server (2 workers, tight line cap so the
/// oversized case is cheap) and returns its handle + address.
fn test_server() -> (arcade::serve::ServerHandle, String) {
    let config = ServerConfig {
        workers: 2,
        max_line_bytes: 4096,
        idle_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let handle = serve(config).expect("start test server");
    let addr = handle.local_addr().to_string();
    (handle, addr)
}

/// One raw request line → one raw response line.
fn raw_roundtrip(addr: &str, line: &[u8]) -> Json {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line).expect("write");
    stream.write_all(b"\n").expect("newline");
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .expect("read response");
    Json::parse(response.trim_end()).expect("response is valid JSON")
}

fn error_code(v: &Json) -> &str {
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "expected error: {v}");
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("error has a code")
}

#[test]
fn structured_errors_do_not_wedge_the_pool() {
    let (handle, addr) = test_server();

    // Malformed JSON variants.
    for bad in [
        &b"not json at all"[..],
        b"{\"model\":\"dds\"",
        b"{\"model\":}",
        b"\xff\xfe garbage",
        b"[1,2,3] trailing {",
    ] {
        assert_eq!(error_code(&raw_roundtrip(&addr, bad)), "bad_json");
    }

    // Structurally valid JSON, semantically bad requests.
    assert_eq!(
        error_code(&raw_roundtrip(&addr, b"[1,2,3]")),
        "bad_request",
        "non-object request"
    );
    assert_eq!(
        error_code(&raw_roundtrip(
            &addr,
            br#"{"model":"no_such_model","measures":["mttf"]}"#
        )),
        "unknown_model"
    );
    assert_eq!(
        error_code(&raw_roundtrip(&addr, br#"{"model":"dds","measures":[]}"#)),
        "bad_request",
        "empty measure list"
    );
    assert_eq!(
        error_code(&raw_roundtrip(
            &addr,
            br#"{"model":"dds","measures":["unavailability"]}"#
        )),
        "bad_request",
        "timed measure without times"
    );
    assert_eq!(
        error_code(&raw_roundtrip(&addr, br#"{"cmd":"frobnicate"}"#)),
        "bad_request"
    );
    assert_eq!(
        error_code(&raw_roundtrip(
            &addr,
            br#"{"model":"rcs_scaled(99)","measures":["mttf"]}"#
        )),
        "bad_request",
        "out-of-range family size"
    );

    // Oversized line: structured error, then the server closes that
    // connection.
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let big = vec![b'x'; 5000];
        stream.write_all(&big).expect("write oversized");
        stream.write_all(b"\n").expect("newline");
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        let v = Json::parse(response.trim_end()).expect("response parses");
        assert_eq!(error_code(&v), "oversized");
        // ...and the connection is closed afterwards (EOF).
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).expect("eof read"), 0);
    }

    // Clients that vanish mid-conversation, in every rude way available.
    {
        // Connect and say nothing, then drop.
        drop(TcpStream::connect(&addr).expect("connect"));
        // Half a line, no newline, then drop.
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.write_all(b"{\"model\":\"dds\"").expect("write");
        drop(stream);
        // A full request, dropped without reading the response.
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .write_all(b"{\"model\":\"dds\",\"measures\":[\"mttf\"]}\n")
            .expect("write");
        drop(stream);
    }

    // After all of the above, with only 2 workers, real clients must
    // still be served promptly — errors and disconnects released their
    // workers.
    for _ in 0..3 {
        let mut client = Client::connect(&addr).expect("connect");
        client.ping().expect("pool still serving");
        let response = client
            .query(
                "dds",
                Json::Arr(vec![Json::str("steady_state_unavailability")]),
                None,
            )
            .expect("query still works");
        let values = Client::values(&response).expect("values");
        assert_eq!(values.len(), 1);
        assert!(values[0] > 0.0 && values[0] < 1e-3, "{values:?}");
    }

    // Error responses never pollute the cache counters' invariants: the
    // stats endpoint still answers and reports the error traffic.
    let mut client = Client::connect(&addr).expect("connect");
    let stats = client.stats().expect("stats");
    let server = stats.get("server").expect("server section");
    let errors = server.get("errors").and_then(Json::as_f64).expect("errors");
    assert!(
        errors >= 12.0,
        "all abuse above must be counted, saw {errors}"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn sweep_wire_command_roundtrips() {
    let (handle, addr) = test_server();

    // A 2×2 cartesian sweep over two of the three declared parameters.
    let request = br#"{"cmd":"sweep","model":"dds_scaled_parametric(1)","measures":["steady_state_unavailability","mttf"],"params":[{"name":"proc_rate","values":[0.0005,0.001]},{"name":"repair_rate","values":[1.0,2.0]}]}"#;
    let v = raw_roundtrip(&addr, request);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{v}");
    assert_eq!(v.get("cold"), Some(&Json::Bool(true)), "first sweep builds");
    let names: Vec<&str> = v
        .get("params")
        .and_then(Json::as_arr)
        .expect("params")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(names, ["proc_rate", "repair_rate"]);
    let points = v.get("points").and_then(Json::as_arr).expect("points");
    let values = v.get("values").and_then(Json::as_arr).expect("values");
    assert_eq!(points.len(), 4, "2x2 grid");
    assert_eq!(values.len(), 4);
    for row in values {
        let row = row.as_arr().expect("value row");
        assert_eq!(row.len(), 2, "one value per measure");
        let unavail = row[0].as_f64().expect("finite unavailability");
        assert!(unavail > 0.0 && unavail < 1e-2, "{row:?}");
    }
    // sensitivities[point][measure][param]: central differences exist on
    // a 2-value axis only at its edges (one-sided), never `null` here.
    let sens = v
        .get("sensitivities")
        .and_then(Json::as_arr)
        .expect("sensitivities");
    assert_eq!(sens.len(), 4);
    for per_point in sens {
        let per_point = per_point.as_arr().expect("per-point");
        assert_eq!(per_point.len(), 2, "one row per measure");
        for per_measure in per_point {
            let per_measure = per_measure.as_arr().expect("per-measure");
            assert_eq!(per_measure.len(), 2, "one slope per swept param");
        }
    }
    // Both measures live on the availability configuration: the server
    // session aggregated exactly once for the whole grid.
    let session = v.get("session").expect("session stats");
    assert_eq!(
        session.get("aggregations_built").and_then(Json::as_f64),
        Some(1.0),
        "{session}"
    );
    assert!(
        session
            .get("poisson_evictions")
            .and_then(Json::as_f64)
            .is_some(),
        "stats expose the cache eviction counter: {session}"
    );

    // Same model again: served warm from the session cache.
    let warm = raw_roundtrip(&addr, request);
    assert_eq!(warm.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(warm.get("cold"), Some(&Json::Bool(false)), "{warm}");
    assert_eq!(warm.get("values"), v.get("values"), "warm sweep identical");

    // Malformed grids: unknown parameter name and mixed axis styles.
    assert_eq!(
        error_code(&raw_roundtrip(
            &addr,
            br#"{"cmd":"sweep","model":"dds_scaled_parametric(1)","measures":["mttf"],"params":[{"name":"no_such_rate","values":[1.0]}]}"#
        )),
        "model_error"
    );
    assert_eq!(
        error_code(&raw_roundtrip(
            &addr,
            br#"{"cmd":"sweep","model":"dds_scaled_parametric(1)","measures":["mttf"],"params":[{"name":"proc_rate","values":[0.001]},"repair_rate"]}"#
        )),
        "bad_request"
    );
    // Sweeping a non-parametric model is a model-level error, not a hang.
    assert_eq!(
        error_code(&raw_roundtrip(
            &addr,
            br#"{"cmd":"sweep","model":"dds","measures":["mttf"],"params":[{"name":"proc_rate","values":[0.001]}]}"#
        )),
        "model_error"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn timeout_ms_answers_deadline_and_frees_the_worker() {
    let (handle, addr) = test_server();

    // A 1 ms deadline on a combinatorial cold build: the aggregation's
    // cooperative checkpoints must trip it long before the build would
    // finish, and the structured answer must come back promptly.
    let request =
        br#"{"model":"dds_scaled(3)","measures":["steady_state_unavailability"],"timeout_ms":1}"#;
    let t0 = std::time::Instant::now();
    let v = raw_roundtrip(&addr, request);
    let elapsed = t0.elapsed();
    assert_eq!(error_code(&v), "deadline", "{v}");
    assert!(
        elapsed < Duration::from_secs(2),
        "deadline answer took {elapsed:?}"
    );

    // The aborted request freed its worker (2-worker pool) and did not
    // cache the half-built aggregation: an un-budgeted retry succeeds.
    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("worker freed after deadline abort");
    let response = client
        .query(
            "dds_scaled(3)",
            Json::Arr(vec![Json::str("steady_state_unavailability")]),
            None,
        )
        .expect("un-budgeted retry builds fully");
    assert_eq!(Client::values(&response).expect("values").len(), 1);

    // The abort is visible in the containment counters.
    let stats = client.stats().expect("stats");
    let aborts = stats
        .get("server")
        .and_then(|s| s.get("deadline_aborts"))
        .and_then(Json::as_f64)
        .expect("deadline_aborts counter");
    assert!(aborts >= 1.0, "deadline abort not counted");

    handle.shutdown();
    handle.join();
}

#[test]
fn max_states_caps_a_loaded_combinatorial_model() {
    let (handle, addr) = test_server();

    // Register a combinatorial model over the wire, exactly as an
    // untrusted client would.
    let source = arcade::printer::to_arcade_text(&arcade::cases::dds_scaled(2));
    let load = Json::obj([
        ("cmd", Json::str("load")),
        ("name", Json::str("wire_dds")),
        ("source", Json::str(&source)),
    ]);
    let mut client = Client::connect(&addr).expect("connect");
    client.expect_ok(&load).expect("load over the wire");

    // A tiny per-request state ceiling trips during aggregation with a
    // structured `budget` error...
    let e = client
        .expect_ok(&Json::obj([
            ("model", Json::str("wire_dds")),
            (
                "measures",
                Json::Arr(vec![Json::str("steady_state_unavailability")]),
            ),
            ("max_states", Json::Num(4.0)),
        ]))
        .expect_err("a 4-state ceiling must trip");
    assert_eq!(e.code, "budget", "{e}");

    // ...and a generous ceiling lets the same model build fully — the
    // tripped attempt cached nothing half-built.
    let ok = client
        .expect_ok(&Json::obj([
            ("model", Json::str("wire_dds")),
            (
                "measures",
                Json::Arr(vec![Json::str("steady_state_unavailability")]),
            ),
            ("max_states", Json::Num(1_000_000.0)),
        ]))
        .expect("generous ceiling builds fully");
    assert_eq!(Client::values(&ok).expect("values").len(), 1);

    let stats = client.stats().expect("stats");
    let aborts = stats
        .get("server")
        .and_then(|s| s.get("budget_aborts"))
        .and_then(Json::as_f64)
        .expect("budget_aborts counter");
    assert!(aborts >= 1.0, "budget abort not counted");

    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_command_stops_the_server() {
    let (handle, addr) = test_server();
    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("ping");
    client.shutdown().expect("shutdown acknowledged");
    // The handle observes the request and join() returns.
    assert!(handle.shutdown_requested());
    handle.join();
    // New connections are no longer served.
    std::thread::sleep(Duration::from_millis(100));
    let refused = match TcpStream::connect(&addr) {
        Err(_) => true,
        // The listener socket may linger briefly; a connect that succeeds
        // must at least get no service (EOF on read).
        Ok(stream) => {
            let mut line = String::new();
            let mut reader = BufReader::new(stream);
            reader.read_line(&mut line).map(|n| n == 0).unwrap_or(true)
        }
    };
    assert!(refused, "server still serving after shutdown");
}
