//! Panic containment against a real in-process server, driven by the
//! [`arcade::chaos`] failpoints: an injected panic anywhere in request
//! handling must answer a typed `internal_panic`, clear the poisoned
//! dedup cell for rebuild, and leave the worker pool at full strength.
//!
//! These tests arm **process-global** failpoints, so they live in their
//! own integration-test binary (a separate process from the chaos-free
//! `serve_protocol` tests) and serialize on [`chaos::test_lock`].

use std::time::Duration;

use arcade::chaos::{self, Action};
use arcade::serve::{serve, Client, Json, ServerConfig};

fn test_server(workers: usize) -> (arcade::serve::ServerHandle, String) {
    let config = ServerConfig {
        workers,
        idle_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let handle = serve(config).expect("start test server");
    let addr = handle.local_addr().to_string();
    (handle, addr)
}

fn steady_query(model: &str) -> Json {
    Json::obj([
        ("model", Json::str(model)),
        (
            "measures",
            Json::Arr(vec![Json::str("steady_state_unavailability")]),
        ),
    ])
}

/// Satellite (a), over the wire: a panicking session build must not
/// wedge the model's dedup cell. The panicking request answers a typed
/// `internal_panic`; the *next* request on the same connection rebuilds
/// and succeeds.
#[test]
fn panicked_build_cell_heals_for_the_next_request() {
    let _guard = chaos::test_lock();
    chaos::disarm_all();
    let (handle, addr) = test_server(2);

    chaos::arm("serve.build", Action::Panic, Some(1));
    let mut client = Client::connect(&addr).expect("connect");
    let e = client
        .expect_ok(&steady_query("dds"))
        .expect_err("injected build panic must answer an error");
    assert_eq!(e.code, "internal_panic", "{e}");

    // The cell was cleared, not poisoned: the very next request rebuilds.
    let ok = client
        .expect_ok(&steady_query("dds"))
        .expect("second request rebuilds the session");
    assert_eq!(Client::values(&ok).expect("values").len(), 1);

    chaos::disarm_all();
    handle.shutdown();
    handle.join();
}

/// Satellite (b): N injected panics must not shrink the worker pool.
/// After two solver panics on a 2-worker server, the pool still serves
/// `pool_size` *concurrent* requests plus a ping.
#[test]
fn worker_pool_survives_injected_panics_at_full_strength() {
    let _guard = chaos::test_lock();
    chaos::disarm_all();
    const POOL: usize = 2;
    let (handle, addr) = test_server(POOL);

    chaos::arm("session.solve", Action::Panic, Some(2));
    for i in 0..2 {
        // One client at a time so each holds a worker only briefly.
        let mut client = Client::connect(&addr).expect("connect");
        let e = client
            .expect_ok(&steady_query("dds"))
            .expect_err("injected solve panic must answer an error");
        assert_eq!(e.code, "internal_panic", "panic {i}: {e}");
    }
    chaos::disarm_all();

    // Both workers must still be alive: POOL concurrent clients each get
    // a full answer (a shrunken pool would starve one of them).
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..POOL)
            .map(|_| {
                s.spawn(|| {
                    let mut client = Client::connect(&addr).expect("connect");
                    let ok = client
                        .expect_ok(&steady_query("dds"))
                        .expect("pool serves at full strength after panics");
                    assert_eq!(Client::values(&ok).expect("values").len(), 1);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("concurrent client");
        }
    });
    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("daemon alive after the panic storm");

    // Every injected panic was counted.
    let stats = client.stats().expect("stats");
    let caught = stats
        .get("server")
        .and_then(|v| v.get("panics_caught"))
        .and_then(Json::as_f64)
        .expect("panics_caught counter");
    assert!(caught >= 2.0, "expected >= 2 caught panics, saw {caught}");

    handle.shutdown();
    handle.join();
}
