//! End-to-end checks of the parametric sweep engine: grid evaluation
//! must be bitwise identical to fresh-session `evaluate_at` at every
//! thread count (pseudo-random grids, proptest style), a large sweep
//! must run exactly one aggregation per configuration while keeping the
//! Poisson cache bounded, and a sampled subset of sweep points must fall
//! inside the Monte-Carlo simulator's confidence intervals.

use arcade::cases::dds_scaled_parametric;
use arcade::engine::EngineOptions;
use arcade::query::{Measure, ParamGrid, Session};
use arcade::sim::simulate_unreliability;
use ctmc::poisson::PoissonCache;

/// Splitmix-style generator for reproducible pseudo-random grids (the
/// workspace is dependency-free, so no proptest crate).
fn next_unit(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut z = *state;
    z = (z ^ (z >> 33)).wrapping_mul(0xff51afd7ed558ccd);
    z = (z ^ (z >> 33)).wrapping_mul(0xc4ceb9fe1a85ec53);
    ((z >> 11) as f64) / (1u64 << 53) as f64
}

#[test]
fn sweep_matches_fresh_sessions_bitwise_at_threads_1_2_4() {
    let def = dds_scaled_parametric(2);
    let measures = [
        Measure::SteadyStateUnavailability,
        Measure::Mttf,
        Measure::Unreliability(500.0),
        Measure::PointUnavailability(200.0),
    ];
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for round in 0..3usize {
        // 2–3 pseudo-random values per axis, 0.25×–1.75× around each base.
        let axes: Vec<(String, Vec<f64>)> = def
            .params
            .iter()
            .map(|p| {
                let k = 2 + round % 2;
                let vals = (0..k)
                    .map(|_| p.base * (0.25 + 1.5 * next_unit(&mut state)))
                    .collect();
                (p.name.clone(), vals)
            })
            .collect();
        let grid = ParamGrid::cartesian(axes);
        let points = grid.points();

        // Reference: a fresh session per point, serial options.
        let reference: Vec<Vec<f64>> = points
            .iter()
            .map(|pt| {
                Session::new(&def)
                    .expect("fresh session")
                    .evaluate_at(&measures, pt)
                    .expect("fresh evaluate_at")
            })
            .collect();

        for threads in [1usize, 2, 4] {
            let session = Session::new(&def)
                .expect("sweep session")
                .with_options(EngineOptions::new().with_threads(threads));
            let result = session.sweep(&measures, &grid).expect("sweep");
            assert_eq!(result.points, points, "round {round}, threads {threads}");
            // The whole grid re-rates two aggregations (availability +
            // no-repair), never re-aggregates per point.
            assert_eq!(
                session.stats().aggregations_built,
                2,
                "round {round}, threads {threads}"
            );
            for (i, (row, want)) in result.values.iter().zip(&reference).enumerate() {
                for (j, (got, exp)) in row.iter().zip(want).enumerate() {
                    assert!(
                        got.to_bits() == exp.to_bits(),
                        "round {round}, threads {threads}, point {i}, measure {j}: \
                         sweep {got:e} != fresh session {exp:e}"
                    );
                }
            }
        }
    }
}

#[test]
fn large_sweep_runs_one_aggregation_and_bounds_the_poisson_cache() {
    let def = dds_scaled_parametric(1);
    // Availability-configuration transient only: exactly one aggregation
    // serves the whole grid.
    let measures = [Measure::PointUnavailability(75.0)];
    // More distinct repair rates than the Poisson cache holds: every
    // point brings a fresh uniformization rate, so the (Λ·Δt)-keyed
    // cache must evict to stay within its capacity.
    let n_points = PoissonCache::DEFAULT_CAPACITY + 76;
    let vals: Vec<f64> = (0..n_points).map(|i| 0.5 + i as f64 * 1e-3).collect();
    let grid = ParamGrid::cartesian([("repair_rate", vals)]);

    let session = Session::new(&def)
        .expect("session")
        .with_options(EngineOptions::new().with_threads(2));
    let result = session.sweep(&measures, &grid).expect("sweep");
    assert_eq!(result.points.len(), n_points);
    assert!(result.points.len() >= 200, "grid must be sweep-sized");
    for row in &result.values {
        assert!(
            row[0].is_finite() && (0.0..=1.0).contains(&row[0]),
            "{row:?}"
        );
    }

    let stats = session.stats();
    assert_eq!(
        stats.aggregations_built, 1,
        "a single-configuration sweep must aggregate exactly once: {stats:?}"
    );
    assert!(
        stats.poisson_evictions > 0,
        "distinct per-point rates must overflow the cache: {stats:?}"
    );
    // Inserts happen on misses only, so the resident entry count is
    // misses − evictions — the bound the cache promises.
    assert!(
        stats.poisson_misses - stats.poisson_evictions <= PoissonCache::DEFAULT_CAPACITY as u64,
        "cache grew past its capacity: {stats:?}"
    );
    assert!(
        stats.dtmc_steps > 0 && stats.sweeps >= n_points as u64,
        "{stats:?}"
    );
}

#[test]
fn sampled_sweep_points_fall_inside_monte_carlo_intervals() {
    let def = dds_scaled_parametric(1);
    let t = 1000.0;
    let measures = [Measure::Unreliability(t)];
    // Sweep all declared parameters so each grid point is a full
    // parameter vector, directly usable by `SystemDef::at_point`. The
    // 0.5×/1.5× ladder keeps every point's unreliability away from the
    // 0/1 extremes, where the binomial interval is healthiest.
    let axes: Vec<(String, Vec<f64>)> = def
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let vals = if i < 2 {
                vec![0.5 * p.base, 1.5 * p.base]
            } else {
                vec![p.base]
            };
            (p.name.clone(), vals)
        })
        .collect();
    let grid = ParamGrid::cartesian(axes);
    let session = Session::new(&def).expect("session");
    let result = session.sweep(&measures, &grid).expect("sweep");
    assert_eq!(result.points.len(), 4);

    // Cross-validate every point against the independent discrete-event
    // simulator: the exact sweep value must fall inside the 95% interval.
    for (i, (point, row)) in result.points.iter().zip(&result.values).enumerate() {
        let concrete = def.at_point(point);
        let estimate = simulate_unreliability(&concrete, t, 8000, 0xA5CADE + i as u64, false)
            .expect("simulation runs");
        assert!(
            estimate.contains(row[0]),
            "point {i} {point:?}: sweep unreliability {:e} outside MC interval \
             {:e} ± {:e}",
            row[0],
            estimate.mean,
            estimate.half_width
        );
    }
}
