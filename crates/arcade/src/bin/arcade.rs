//! `arcade` — command-line dependability evaluation.
//!
//! ```text
//! arcade analyze  <model.arcade> [--time T]... [--json] [--dense-limit N]
//!                                [--threads N] [--steady-tol X]
//!                                [--adaptive 0|1] [--support-tol X]
//! arcade modular  <model.arcade> [--time T]... [--json] [--dense-limit N]
//!                                [--threads N] [--steady-tol X]
//!                                [--adaptive 0|1] [--support-tol X]
//! arcade sweep    <model.arcade> --param NAME@BASE=V1,V2,... [--param ...]
//!                                [--time T]... [--json] [engine flags]
//! arcade simulate <model.arcade> --time T [--reps N] [--seed S]
//! arcade check    <model.arcade>                          validate only
//! arcade blocks   <model.arcade>                          block automaton sizes
//! arcade dot      <model.arcade> <block>                  Graphviz of one block
//! arcade format   <model.arcade>                          re-print canonically
//! ```
//!
//! `analyze` and `modular` collect **all** `--time` flags into one batched
//! query answered by a single lazy [`Session`]: one aggregation per needed
//! model configuration, one uniformization sweep per measure kind over the
//! whole time grid. `--dense-limit` moves the dense-vs-iterative solver
//! crossover (default 3000 states; `0` forces the sparse path — see
//! [`ctmc::SolverOptions`]). `--threads` sets the worker count for both
//! compositional aggregation *and* the sharded uniformization sweep
//! (`0` = one per core, larger requests are clamped to the core count;
//! results are bitwise identical for every value), and `--steady-tol`
//! tunes steady-state detection inside transient grids (`0` disables it —
//! see [`ctmc::TransientOptions`]). `--adaptive 0` switches the transient
//! engine from the default adaptive windowed scheme (per-segment Λ over
//! the distribution's ε-support) to the exact global-Λ full sweep, and
//! `--support-tol` sets the adaptive engine's per-segment support
//! truncation budget (`0` = lossless windowing). `analyze --json` also
//! reports session counters (Poisson cache hits/misses, DTMC steps,
//! sweeps) under `"stats"`.
//!
//! `sweep` runs a parametric sweep: each `--param NAME@BASE=V1,V2,...`
//! declares rate parameter `NAME` binding every rate in the model whose
//! value is exactly `BASE`, and sweeps it over the listed values (the
//! cartesian product across `--param` flags). The model is aggregated
//! **once** at the base rates; every grid point re-rates the quotient
//! CTMC and solves steady-state unavailability, MTTF, and unreliability
//! at each `--time` (see [`arcade::query::Session::sweep`]). Output rows
//! carry finite-difference sensitivities per parameter.

use std::process::ExitCode;

use arcade::engine::EngineOptions;
use arcade::model::SystemModel;
use arcade::modular::modular_analysis;
use arcade::parser::parse_system;
use arcade::printer::to_arcade_text;
use arcade::query::{Measure, ParamGrid, Session};
use arcade::sim;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let file = args.get(1).ok_or_else(usage)?;
    let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
    let def = parse_system(&text).map_err(|e| e.to_string())?;
    let json = args.iter().any(|a| a == "--json");
    if json && !matches!(cmd.as_str(), "analyze" | "modular" | "sweep") {
        return Err("--json is only supported by `analyze`, `modular` and `sweep`".to_owned());
    }

    match cmd.as_str() {
        "check" => {
            arcade::model::validate(&def).map_err(|e| e.to_string())?;
            println!(
                "ok: {} components, {} repair units, {} SMUs",
                def.components.len(),
                def.repair_units.len(),
                def.smus.len()
            );
            Ok(())
        }
        "format" => {
            print!("{}", to_arcade_text(&def));
            Ok(())
        }
        "blocks" => {
            let model = SystemModel::build(&def).map_err(|e| e.to_string())?;
            println!("{:<20} {:>8} {:>12}", "block", "states", "transitions");
            for b in &model.blocks {
                println!(
                    "{:<20} {:>8} {:>12}",
                    b.name,
                    b.imc.num_states(),
                    b.imc.num_transitions()
                );
            }
            Ok(())
        }
        "dot" => {
            let block_name = args.get(2).ok_or("dot needs a block name")?;
            let model = SystemModel::build(&def).map_err(|e| e.to_string())?;
            let block = model
                .block(block_name)
                .ok_or_else(|| format!("no block named `{block_name}`"))?;
            print!(
                "{}",
                ioimc::dot::to_dot(&block.imc, &model.alphabet, block_name)
            );
            Ok(())
        }
        "analyze" => {
            let times = time_values(args)?;
            let opts = engine_options(args)?;
            let session = Session::new(&def)
                .map_err(|e| e.to_string())?
                .with_options(opts);

            // One batched query answers everything: the steady-state
            // measures, the MTTF, and all three curves over the grid.
            let mut measures = vec![
                Measure::SteadyStateAvailability,
                Measure::SteadyStateUnavailability,
                Measure::Mttf,
            ];
            for &t in &times {
                measures.push(Measure::Reliability(t));
                measures.push(Measure::UnreliabilityWithRepair(t));
                measures.push(Measure::PointUnavailability(t));
            }
            let values = session.evaluate(&measures).map_err(|e| e.to_string())?;
            let agg = session.availability_model().map_err(|e| e.to_string())?;

            if json {
                let mut points = String::new();
                for (i, &t) in times.iter().enumerate() {
                    if i > 0 {
                        points.push(',');
                    }
                    points.push_str(&format!(
                        "{{\"t\":{t},\"reliability\":{},\"unreliability_with_repair\":{},\"point_unavailability\":{}}}",
                        json_f64(values[3 + 3 * i]),
                        json_f64(values[4 + 3 * i]),
                        json_f64(values[5 + 3 * i]),
                    ));
                }
                let stats = session.stats();
                println!(
                    "{{\"model\":{},\"schema_version\":1,\
                     \"ctmc\":{{\"states\":{},\"transitions\":{}}},\
                     \"largest_intermediate\":{{\"states\":{},\"transitions\":{}}},\
                     \"steady_state_availability\":{},\"steady_state_unavailability\":{},\
                     \"mttf\":{},\"points\":[{points}],\
                     \"stats\":{{\"poisson_hits\":{},\"poisson_misses\":{},\
                     \"dtmc_steps\":{},\"sweeps\":{}}}}}",
                    json_str(&def.name),
                    agg.ctmc_stats.states,
                    agg.ctmc_stats.transitions(),
                    agg.largest_intermediate.states,
                    agg.largest_intermediate.transitions(),
                    json_f64(values[0]),
                    json_f64(values[1]),
                    json_f64(values[2]),
                    stats.poisson_hits,
                    stats.poisson_misses,
                    stats.dtmc_steps,
                    stats.sweeps,
                );
                return Ok(());
            }
            println!("final CTMC: {}", agg.ctmc_stats);
            println!("largest intermediate: {}", agg.largest_intermediate);
            println!();
            println!("steady-state availability:   {:.10}", values[0]);
            println!("steady-state unavailability: {:.6e}", values[1]);
            println!("MTTF:                        {:.6e}", values[2]);
            for (i, &t) in times.iter().enumerate() {
                println!();
                println!("t = {t}:");
                println!("  reliability (no repair):   {:.10}", values[3 + 3 * i]);
                println!("  unreliability w/ repair:   {:.6e}", values[4 + 3 * i]);
                println!("  point unavailability:      {:.6e}", values[5 + 3 * i]);
            }
            Ok(())
        }
        "sweep" => {
            let mut def = def;
            let specs = param_specs(args)?;
            if specs.is_empty() {
                return Err("sweep needs at least one --param NAME@BASE=V1,V2,...".to_owned());
            }
            for (name, base, _) in &specs {
                def.add_param(name, *base);
            }
            let times = time_values(args)?;
            let opts = engine_options(args)?;
            let session = Session::new(&def)
                .map_err(|e| e.to_string())?
                .with_options(opts);
            let mut measures = vec![Measure::SteadyStateUnavailability, Measure::Mttf];
            for &t in &times {
                measures.push(Measure::Unreliability(t));
            }
            let grid = ParamGrid::cartesian(
                specs
                    .iter()
                    .map(|(name, _, values)| (name.clone(), values.clone())),
            );
            let result = session.sweep(&measures, &grid).map_err(|e| e.to_string())?;

            if json {
                let mut points = String::new();
                for (i, (pt, row)) in result.points.iter().zip(&result.values).enumerate() {
                    if i > 0 {
                        points.push(',');
                    }
                    let sens = result.sensitivities[i]
                        .iter()
                        .map(|per_param| {
                            format!(
                                "[{}]",
                                per_param
                                    .iter()
                                    .map(|s| s.map_or("null".to_owned(), json_f64))
                                    .collect::<Vec<_>>()
                                    .join(",")
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(",");
                    points.push_str(&format!(
                        "{{\"point\":[{}],\"steady_state_unavailability\":{},\"mttf\":{},\
                         \"unreliability\":[{}],\"sensitivities\":[{sens}]}}",
                        pt.iter()
                            .map(|v| json_f64(*v))
                            .collect::<Vec<_>>()
                            .join(","),
                        json_f64(row[0]),
                        json_f64(row[1]),
                        row[2..]
                            .iter()
                            .map(|v| json_f64(*v))
                            .collect::<Vec<_>>()
                            .join(","),
                    ));
                }
                let stats = session.stats();
                println!(
                    "{{\"model\":{},\"schema_version\":1,\
                     \"params\":[{}],\"times\":[{}],\"points\":[{points}],\
                     \"stats\":{{\"aggregations_built\":{},\"poisson_hits\":{},\
                     \"poisson_misses\":{},\"poisson_evictions\":{},\
                     \"dtmc_steps\":{},\"sweeps\":{}}}}}",
                    json_str(&def.name),
                    result
                        .names
                        .iter()
                        .map(|n| json_str(n))
                        .collect::<Vec<_>>()
                        .join(","),
                    times
                        .iter()
                        .map(|t| json_f64(*t))
                        .collect::<Vec<_>>()
                        .join(","),
                    stats.aggregations_built,
                    stats.poisson_hits,
                    stats.poisson_misses,
                    stats.poisson_evictions,
                    stats.dtmc_steps,
                    stats.sweeps,
                );
                return Ok(());
            }
            println!(
                "{} points over {} ({} aggregation(s))",
                result.points.len(),
                result.names.join(" × "),
                session.stats().aggregations_built,
            );
            for (pt, row) in result.points.iter().zip(&result.values) {
                let coords = result
                    .names
                    .iter()
                    .zip(pt)
                    .map(|(n, v)| format!("{n}={v}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                println!();
                println!("{coords}:");
                println!("  steady-state unavailability: {:.6e}", row[0]);
                println!("  MTTF:                        {:.6e}", row[1]);
                for (k, &t) in times.iter().enumerate() {
                    println!("  unreliability(t={t}):        {:.6e}", row[2 + k]);
                }
            }
            Ok(())
        }
        "modular" => {
            let times = time_values(args)?;
            let m = modular_analysis(&def, &engine_options(args)?).map_err(|e| e.to_string())?;
            // Batched curves: one sweep per (module, measure kind).
            let rel = m.reliability_many(&times);
            let unrel = m.unreliability_with_repair_many(&times);
            let a = m.steady_state_availability();

            if json {
                let mut modules = String::new();
                for (i, module) in m.modules.iter().enumerate() {
                    if i > 0 {
                        modules.push(',');
                    }
                    modules.push_str(&format!(
                        "{{\"name\":{},\"components\":{},\"ctmc_states\":{}}}",
                        json_str(&module.name),
                        module.components.len(),
                        module.report.ctmc_stats().states,
                    ));
                }
                let mut points = String::new();
                for (i, &t) in times.iter().enumerate() {
                    if i > 0 {
                        points.push(',');
                    }
                    points.push_str(&format!(
                        "{{\"t\":{t},\"reliability\":{},\"unreliability_with_repair\":{}}}",
                        json_f64(rel[i]),
                        json_f64(unrel[i]),
                    ));
                }
                println!(
                    "{{\"model\":{},\"modules\":[{modules}],\
                     \"steady_state_availability\":{},\"points\":[{points}]}}",
                    json_str(&def.name),
                    json_f64(a),
                );
                return Ok(());
            }
            for module in &m.modules {
                println!(
                    "{}: {} components, CTMC {}",
                    module.name,
                    module.components.len(),
                    module.report.ctmc_stats()
                );
            }
            println!();
            println!("steady-state availability:   {a:.10}");
            for (i, &t) in times.iter().enumerate() {
                println!(
                    "R({t}) = {:.10}   unreliability w/ repair = {:.6e}",
                    rel[i], unrel[i]
                );
            }
            Ok(())
        }
        "simulate" => {
            let times = time_values(args)?;
            let t = *times.first().ok_or("simulate needs --time T")?;
            let reps = flag_values(args, "--reps")?
                .first()
                .map_or(10_000, |r| *r as usize);
            let seed = flag_values(args, "--seed")?
                .first()
                .map_or(1, |s| *s as u64);
            let no_rep = sim::simulate_unreliability(&def, t, reps, seed, false)
                .map_err(|e| e.to_string())?;
            let with_rep = sim::simulate_unreliability(&def, t, reps, seed + 1, true)
                .map_err(|e| e.to_string())?;
            println!("Monte-Carlo, {reps} replications, seed {seed}:");
            println!(
                "  R({t}) (no repair)        = {:.6} ± {:.6}",
                1.0 - no_rep.mean,
                no_rep.half_width
            );
            println!(
                "  unreliability w/ repair  = {:.6e} ± {:.2e}",
                with_rep.mean, with_rep.half_width
            );
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

/// Engine options from the command line: the `--dense-limit` solver
/// crossover, the `--threads` worker count (aggregation *and* sharded
/// transient sweeps, clamped to the core count), the `--steady-tol`
/// detection threshold, the `--adaptive` engine switch and the
/// `--support-tol` windowing budget (see [`ctmc::SolverOptions`] /
/// [`ctmc::TransientOptions`]).
fn engine_options(args: &[String]) -> Result<EngineOptions, String> {
    let mut opts = EngineOptions::new();
    if let Some(&n) = flag_values(args, "--dense-limit")?.first() {
        if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0) {
            return Err(format!(
                "--dense-limit must be a non-negative integer, got {n}"
            ));
        }
        opts.solver.dense_limit = n as usize;
    }
    if let Some(&n) = flag_values(args, "--threads")?.first() {
        if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0) {
            return Err(format!(
                "--threads must be a non-negative integer (0 = auto), got {n}"
            ));
        }
        opts.threads = n as usize;
        opts.solver.transient.threads = n as usize;
    }
    if let Some(&x) = flag_values(args, "--steady-tol")?.first() {
        if !(x.is_finite() && x >= 0.0) {
            return Err(format!(
                "--steady-tol must be non-negative and finite (0 disables detection), got {x}"
            ));
        }
        opts.solver.transient.steady_tol = x;
    }
    if let Some(&x) = flag_values(args, "--adaptive")?.first() {
        if x != 0.0 && x != 1.0 {
            return Err(format!(
                "--adaptive must be 0 (exact global-Λ engine) or 1 (adaptive windowed), got {x}"
            ));
        }
        opts.solver.transient.adaptive = x != 0.0;
    }
    if let Some(&x) = flag_values(args, "--support-tol")?.first() {
        if !(x.is_finite() && x >= 0.0) {
            return Err(format!(
                "--support-tol must be non-negative and finite (0 = lossless windowing), got {x}"
            ));
        }
        opts.solver.transient.support_tol = x;
    }
    Ok(opts)
}

/// Collects `--param NAME@BASE=V1,V2,...` declarations for `sweep`:
/// parameter name, the base rate it binds in the model, and the value
/// axis to sweep.
fn param_specs(args: &[String]) -> Result<Vec<(String, f64, Vec<f64>)>, String> {
    let bad =
        |spec: &str, why: &str| format!("--param expects NAME@BASE=V1,V2,... — `{spec}`: {why}");
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a != "--param" {
            continue;
        }
        let spec = it.next().ok_or("--param needs a value")?;
        let (head, tail) = spec
            .split_once('=')
            .ok_or_else(|| bad(spec, "missing `=`"))?;
        let (name, base) = head
            .split_once('@')
            .ok_or_else(|| bad(spec, "missing `@BASE`"))?;
        if name.is_empty() {
            return Err(bad(spec, "empty parameter name"));
        }
        let base: f64 = base.parse().map_err(|e| bad(spec, &format!("base: {e}")))?;
        let values: Vec<f64> = tail
            .split(',')
            .map(|v| v.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| bad(spec, &format!("values: {e}")))?;
        if values.is_empty() {
            return Err(bad(spec, "needs at least one value"));
        }
        out.push((name.to_owned(), base, values));
    }
    Ok(out)
}

/// Collects `--time` values and rejects what the solvers would panic on.
fn time_values(args: &[String]) -> Result<Vec<f64>, String> {
    let times = flag_values(args, "--time")?;
    if let Some(bad) = times.iter().find(|t| !(t.is_finite() && **t >= 0.0)) {
        return Err(format!("--time must be non-negative and finite, got {bad}"));
    }
    Ok(times)
}

fn flag_values(args: &[String], flag: &str) -> Result<Vec<f64>, String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            let v = it
                .next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .parse::<f64>()
                .map_err(|e| format!("{flag}: {e}"))?;
            out.push(v);
        }
    }
    Ok(out)
}

/// JSON number rendering: finite values print as-is, non-finite ones
/// (MTTF of an unfailable system is infinite) become null.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn usage() -> String {
    "usage: arcade <analyze|modular|sweep|simulate|check|blocks|dot|format> <model.arcade> \
     [--time T]... [--json] [--param NAME@BASE=V1,V2,...] [--reps N] [--seed S] \
     [--dense-limit N] [--threads N (0 = auto)] [--steady-tol X (0 disables detection)] \
     [--adaptive 0|1] [--support-tol X (0 = lossless windowing)]"
        .to_owned()
}
