//! `arcade` — command-line dependability evaluation.
//!
//! ```text
//! arcade analyze  <model.arcade> [--time T]...     measures (engine)
//! arcade modular  <model.arcade> [--time T]...     measures (modularized)
//! arcade simulate <model.arcade> --time T [--reps N] [--seed S]
//! arcade check    <model.arcade>                   validate only
//! arcade blocks   <model.arcade>                   block automaton sizes
//! arcade dot      <model.arcade> <block>           Graphviz of one block
//! arcade format   <model.arcade>                   re-print canonically
//! ```

use std::process::ExitCode;

use arcade::analysis::Analysis;
use arcade::engine::EngineOptions;
use arcade::model::SystemModel;
use arcade::modular::modular_analysis;
use arcade::parser::parse_system;
use arcade::printer::to_arcade_text;
use arcade::sim;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let file = args.get(1).ok_or_else(usage)?;
    let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
    let def = parse_system(&text).map_err(|e| e.to_string())?;

    match cmd.as_str() {
        "check" => {
            arcade::model::validate(&def).map_err(|e| e.to_string())?;
            println!(
                "ok: {} components, {} repair units, {} SMUs",
                def.components.len(),
                def.repair_units.len(),
                def.smus.len()
            );
            Ok(())
        }
        "format" => {
            print!("{}", to_arcade_text(&def));
            Ok(())
        }
        "blocks" => {
            let model = SystemModel::build(&def).map_err(|e| e.to_string())?;
            println!("{:<20} {:>8} {:>12}", "block", "states", "transitions");
            for b in &model.blocks {
                println!(
                    "{:<20} {:>8} {:>12}",
                    b.name,
                    b.imc.num_states(),
                    b.imc.num_transitions()
                );
            }
            Ok(())
        }
        "dot" => {
            let block_name = args.get(2).ok_or("dot needs a block name")?;
            let model = SystemModel::build(&def).map_err(|e| e.to_string())?;
            let block = model
                .block(block_name)
                .ok_or_else(|| format!("no block named `{block_name}`"))?;
            print!(
                "{}",
                ioimc::dot::to_dot(&block.imc, &model.alphabet, block_name)
            );
            Ok(())
        }
        "analyze" => {
            let times = flag_values(args, "--time")?;
            let report = Analysis::new(&def)
                .map_err(|e| e.to_string())?
                .run()
                .map_err(|e| e.to_string())?;
            println!("final CTMC: {}", report.ctmc_stats());
            println!("largest intermediate: {}", report.largest_intermediate());
            println!();
            println!(
                "steady-state availability:   {:.10}",
                report.steady_state_availability()
            );
            println!(
                "steady-state unavailability: {:.6e}",
                report.steady_state_unavailability()
            );
            println!("MTTF:                        {:.6e}", report.mttf());
            for &t in &times {
                println!();
                println!("t = {t}:");
                println!("  reliability (no repair):   {:.10}", report.reliability(t));
                println!(
                    "  unreliability w/ repair:   {:.6e}",
                    report.unreliability_with_repair(t)
                );
                println!(
                    "  point unavailability:      {:.6e}",
                    report.point_unavailability(t)
                );
            }
            Ok(())
        }
        "modular" => {
            let times = flag_values(args, "--time")?;
            let m = modular_analysis(&def, &EngineOptions::new()).map_err(|e| e.to_string())?;
            for module in &m.modules {
                println!(
                    "{}: {} components, CTMC {}",
                    module.name,
                    module.components.len(),
                    module.report.ctmc_stats()
                );
            }
            println!();
            println!(
                "steady-state availability:   {:.10}",
                m.steady_state_availability()
            );
            for &t in &times {
                println!("R({t}) = {:.10}   unreliability w/ repair = {:.6e}",
                    m.reliability(t), m.unreliability_with_repair(t));
            }
            Ok(())
        }
        "simulate" => {
            let times = flag_values(args, "--time")?;
            let t = *times.first().ok_or("simulate needs --time T")?;
            let reps = flag_values(args, "--reps")?
                .first()
                .map_or(10_000, |r| *r as usize);
            let seed = flag_values(args, "--seed")?.first().map_or(1, |s| *s as u64);
            let no_rep = sim::simulate_unreliability(&def, t, reps, seed, false)
                .map_err(|e| e.to_string())?;
            let with_rep = sim::simulate_unreliability(&def, t, reps, seed + 1, true)
                .map_err(|e| e.to_string())?;
            println!("Monte-Carlo, {reps} replications, seed {seed}:");
            println!(
                "  R({t}) (no repair)        = {:.6} ± {:.6}",
                1.0 - no_rep.mean,
                no_rep.half_width
            );
            println!(
                "  unreliability w/ repair  = {:.6e} ± {:.2e}",
                with_rep.mean, with_rep.half_width
            );
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn flag_values(args: &[String], flag: &str) -> Result<Vec<f64>, String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            let v = it
                .next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .parse::<f64>()
                .map_err(|e| format!("{flag}: {e}"))?;
            out.push(v);
        }
    }
    Ok(out)
}

fn usage() -> String {
    "usage: arcade <analyze|modular|simulate|check|blocks|dot|format> <model.arcade> \
     [--time T]... [--reps N] [--seed S]"
        .to_owned()
}
