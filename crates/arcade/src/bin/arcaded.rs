//! `arcaded` — the resident Arcade analysis daemon.
//!
//! ```text
//! arcaded [--addr HOST:PORT] [--workers N] [--threads N]
//!         [--idle-timeout-secs S] [--max-line-bytes N]
//!         [--max-states N] [--chaos SPEC]
//!         [--preload MODEL]...
//! ```
//!
//! Binds a TCP listener (default `127.0.0.1:7171`; port `0` picks an
//! ephemeral port) and serves the newline-delimited JSON protocol of
//! [`arcade::serve`]. On startup it prints exactly one line to stdout —
//!
//! ```text
//! arcaded listening on 127.0.0.1:7171
//! ```
//!
//! — which scripts can parse for the bound address (CI boots the daemon
//! on port 0 and scrapes the port from this line). `--preload` names
//! (repeatable) are warmed **before** the listening line is printed, so a
//! client that connects immediately gets warm-cache latencies.
//!
//! `--workers` sizes the connection worker pool (0 = one per core);
//! `--threads` is forwarded to every session's engine options (0 = auto),
//! controlling aggregation and sweep parallelism per request.
//!
//! `--max-states N` caps intermediate model size during aggregation for
//! **every** session (0 = unlimited, the default) — a `load`-ed
//! combinatorial model trips a structured `budget` error instead of
//! exhausting the daemon's memory. `--chaos SPEC` arms fault-injection
//! failpoints (see [`arcade::chaos`]; also honored from the
//! `ARCADE_CHAOS` environment variable) — testing only, never in
//! production.
//!
//! The daemon exits gracefully on SIGTERM or ctrl-c (SIGINT): it stops
//! accepting, lets in-flight requests finish, then returns 0. A
//! `{"cmd":"shutdown"}` request does the same over the wire.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use arcade::serve::{serve, Json, ServerConfig};

/// Set by the signal handler; polled by the main loop.
static STOP: AtomicBool = AtomicBool::new(false);

// Minimal libc surface for dependency-free signal handling. The handler
// only stores to an atomic, which is async-signal-safe.
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    STOP.store(true, Ordering::SeqCst);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7171".to_owned(),
        ..ServerConfig::default()
    };
    let mut preload: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => config.workers = parse_count(&value("--workers")?, "--workers")?,
            "--threads" => {
                let n = parse_count(&value("--threads")?, "--threads")?;
                config.engine.threads = n;
                config.engine.solver.transient.threads = n;
            }
            "--idle-timeout-secs" => {
                let secs = parse_count(&value("--idle-timeout-secs")?, "--idle-timeout-secs")?;
                if secs == 0 {
                    return Err("--idle-timeout-secs must be positive".to_owned());
                }
                config.idle_timeout = Duration::from_secs(secs as u64);
            }
            "--max-line-bytes" => {
                let n = parse_count(&value("--max-line-bytes")?, "--max-line-bytes")?;
                if n < 64 {
                    return Err("--max-line-bytes must be at least 64".to_owned());
                }
                config.max_line_bytes = n;
            }
            "--max-states" => {
                config.engine.max_states =
                    parse_count(&value("--max-states")?, "--max-states")? as u64;
            }
            "--chaos" => {
                arcade::chaos::arm_spec(&value("--chaos")?).map_err(|e| format!("--chaos: {e}"))?;
                eprintln!("arcaded: chaos failpoints armed");
            }
            "--preload" => preload.push(value("--preload")?),
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }

    // Environment-armed chaos (testing only). A malformed spec refuses
    // startup: a daemon silently running *without* the requested faults
    // would produce misleading chaos results.
    match arcade::chaos::init_from_env() {
        Ok(true) => eprintln!("arcaded: chaos failpoints armed from ARCADE_CHAOS"),
        Ok(false) => {}
        Err(e) => return Err(format!("ARCADE_CHAOS: {e}")),
    }

    // SAFETY: registering a handler that only stores to a static atomic.
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }

    let handle = serve(config).map_err(|e| format!("cannot start server: {e}"))?;

    // Warm the requested models before announcing readiness, so the first
    // real client never pays a cold build for a preloaded name.
    if !preload.is_empty() {
        let mut client = arcade::serve::Client::connect(&handle.local_addr().to_string())
            .map_err(|e| format!("cannot connect for preload: {e}"))?;
        for name in &preload {
            let response = client
                .query(
                    name,
                    Json::Arr(vec![Json::str("steady_state_unavailability")]),
                    None,
                )
                .map_err(|e| format!("preload of `{name}` failed: {e}"))?;
            let cold = response.get("cold") == Some(&Json::Bool(true));
            eprintln!(
                "arcaded: preloaded {name} ({})",
                if cold { "built" } else { "cached" }
            );
        }
    }

    println!("arcaded listening on {}", handle.local_addr());

    // Wait for a signal or an over-the-wire shutdown command.
    while !STOP.load(Ordering::SeqCst) && !handle.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("arcaded: shutting down");
    handle.shutdown();
    handle.join();
    Ok(())
}

fn parse_count(s: &str, flag: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|_| format!("{flag} must be a non-negative integer, got `{s}`"))
}

fn usage() -> String {
    "usage: arcaded [--addr HOST:PORT (default 127.0.0.1:7171)] \
     [--workers N (0 = auto)] [--threads N (0 = auto)] \
     [--idle-timeout-secs S] [--max-line-bytes N] \
     [--max-states N (0 = unlimited)] [--chaos SPEC (testing only)] \
     [--preload MODEL]..."
        .to_owned()
}
