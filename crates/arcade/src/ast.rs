//! The abstract syntax of Arcade models (paper §3.5).

use crate::dist::Dist;
use crate::expr::Expr;

/// An operational-mode group of a basic component (§3.1.1).
///
/// Except for `ActiveInactive` (driven by an SMU's activate/deactivate
/// signals), every group switches modes when its trigger expression over
/// *other* components' failure modes changes value.
#[derive(Debug, Clone, PartialEq)]
pub enum OmGroup {
    /// `active`/`inactive` — spare management; mode switched by SMU
    /// signals. Initial mode is `inactive` when the component is listed as
    /// a spare (the paper writes the group as "(inactive, active)").
    ActiveInactive,
    /// `on`/`off` — switches to `off` while the expression holds (e.g.
    /// power failed); failure rates are typically zero in `off`.
    OnOff(Expr),
    /// `accessible`/`inaccessible` — non-destructive functional dependency;
    /// switches to `inaccessible` while the expression holds.
    AccessibleInaccessible(Expr),
    /// `normal`/`degraded` — e.g. load sharing; switches to `degraded`
    /// while the expression holds (and back on repair).
    NormalDegraded(Expr),
}

impl OmGroup {
    /// Number of modes in the group (always 2 in the current syntax).
    pub fn num_modes(&self) -> usize {
        2
    }

    /// The trigger expression, if the group is expression-driven.
    pub fn trigger(&self) -> Option<&Expr> {
        match self {
            Self::ActiveInactive => None,
            Self::OnOff(e) | Self::AccessibleInaccessible(e) | Self::NormalDegraded(e) => Some(e),
        }
    }

    /// The group's name in the textual syntax.
    pub fn name(&self) -> &'static str {
        match self {
            Self::ActiveInactive => "(inactive, active)",
            Self::OnOff(_) => "(on, off)",
            Self::AccessibleInaccessible(_) => "(accessible, inaccessible)",
            Self::NormalDegraded(_) => "(normal, degraded)",
        }
    }
}

/// A basic component definition (§3.5.1).
///
/// `ttf` lists one time-to-failure distribution per *operational state*
/// (the cross product of the OM groups, in the order the groups are
/// listed; see §3.5.1 footnote 9). `ttr` lists one time-to-repair
/// distribution per inherent failure mode, plus one for the destructive
/// functional dependency if `df` is present.
#[derive(Debug, Clone, PartialEq)]
pub struct BcDef {
    /// Unique component name.
    pub name: String,
    /// Operational-mode groups (may be empty).
    pub om_groups: Vec<OmGroup>,
    /// Whether the environment sees inaccessibility as a failure (§3.1.1).
    pub inaccessible_means_down: bool,
    /// Time-to-failure distribution per operational state. All entries
    /// must have the same number of phases ([`Dist::Never`] is allowed for
    /// `off` states).
    pub ttf: Vec<Dist>,
    /// Probabilities of the inherent failure modes (must sum to 1); a
    /// single-mode component has `vec![1.0]`.
    pub failure_mode_probs: Vec<f64>,
    /// Time-to-repair distribution per inherent failure mode.
    pub ttr: Vec<Dist>,
    /// Time-to-repair for the destructive functional dependency failure.
    pub ttr_df: Option<Dist>,
    /// Destructive functional dependency trigger (§3.1.2).
    pub df: Option<Expr>,
}

impl BcDef {
    /// A plain component: no operational modes, one failure mode with
    /// time-to-failure `ttf` and time-to-repair `ttr`.
    pub fn new(name: impl Into<String>, ttf: Dist, ttr: Dist) -> Self {
        Self {
            name: name.into(),
            om_groups: Vec::new(),
            inaccessible_means_down: false,
            ttf: vec![ttf],
            failure_mode_probs: vec![1.0],
            ttr: vec![ttr],
            ttr_df: None,
            df: None,
        }
    }

    /// Adds an OM group (builder style). Remember to extend
    /// [`BcDef::ttf`] to cover the enlarged operational-state space.
    pub fn with_om_group(mut self, group: OmGroup) -> Self {
        self.om_groups.push(group);
        self
    }

    /// Sets the per-operational-state time-to-failure distributions.
    pub fn with_ttf(mut self, ttf: impl Into<Vec<Dist>>) -> Self {
        self.ttf = ttf.into();
        self
    }

    /// Declares `n` failure modes with the given probabilities and repair
    /// distributions.
    pub fn with_failure_modes(
        mut self,
        probs: impl Into<Vec<f64>>,
        ttr: impl Into<Vec<Dist>>,
    ) -> Self {
        self.failure_mode_probs = probs.into();
        self.ttr = ttr.into();
        self
    }

    /// Sets the destructive functional dependency and its repair
    /// distribution.
    pub fn with_df(mut self, df: Expr, ttr_df: Dist) -> Self {
        self.df = Some(df);
        self.ttr_df = Some(ttr_df);
        self
    }

    /// Marks inaccessibility as environment-visible failure.
    pub fn with_inaccessible_means_down(mut self, yes: bool) -> Self {
        self.inaccessible_means_down = yes;
        self
    }

    /// Number of operational states (product of OM group sizes).
    pub fn num_operational_states(&self) -> usize {
        self.om_groups.iter().map(OmGroup::num_modes).product()
    }

    /// Number of inherent failure modes.
    pub fn num_failure_modes(&self) -> usize {
        self.failure_mode_probs.len()
    }

    /// Whether the component has an `active`/`inactive` group (i.e. can be
    /// managed as a spare).
    pub fn has_active_inactive(&self) -> bool {
        self.om_groups
            .iter()
            .any(|g| matches!(g, OmGroup::ActiveInactive))
    }
}

/// Repair strategies (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepairStrategy {
    /// One repair unit dedicated to a single component.
    Dedicated,
    /// First come, first served over the unit's components.
    Fcfs,
    /// FCFS with preemptive priorities: a higher-priority failure
    /// interrupts the repair in progress (the interrupted repair resumes
    /// its phase later).
    PreemptivePriority,
    /// FCFS with non-preemptive priorities: the repair in progress
    /// finishes, then the highest-priority waiting component is served.
    NonPreemptivePriority,
}

impl RepairStrategy {
    /// The strategy's keyword in the textual syntax.
    pub fn keyword(self) -> &'static str {
        match self {
            Self::Dedicated => "DEDICATED",
            Self::Fcfs => "FCFS",
            Self::PreemptivePriority => "PP",
            Self::NonPreemptivePriority => "PNP",
        }
    }
}

/// A repair unit definition (§3.5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct RuDef {
    /// Unique unit name.
    pub name: String,
    /// Names of the components this unit repairs.
    pub components: Vec<String>,
    /// The repair strategy.
    pub strategy: RepairStrategy,
    /// Priority per component (higher value = served first); required for
    /// the priority strategies, ignored otherwise.
    pub priorities: Vec<u32>,
}

impl RuDef {
    /// Creates a repair unit over the given components.
    pub fn new(
        name: impl Into<String>,
        components: impl IntoIterator<Item = impl Into<String>>,
        strategy: RepairStrategy,
    ) -> Self {
        Self {
            name: name.into(),
            components: components.into_iter().map(Into::into).collect(),
            strategy,
            priorities: Vec::new(),
        }
    }

    /// Sets component priorities (same order as `components`).
    pub fn with_priorities(mut self, priorities: impl Into<Vec<u32>>) -> Self {
        self.priorities = priorities.into();
        self
    }
}

/// A spare management unit definition (§3.5.3).
#[derive(Debug, Clone, PartialEq)]
pub struct SmuDef {
    /// Unique unit name.
    pub name: String,
    /// The primary component (always active; not managed by the SMU).
    pub primary: String,
    /// Spare components in activation order; each must have an
    /// `active`/`inactive` OM group.
    pub spares: Vec<String>,
    /// Optional failover delay (§3.6 extension, Fig. 9): the time to
    /// detect a primary failure and activate the spare.
    pub failover: Option<Dist>,
}

impl SmuDef {
    /// Creates an SMU with one primary and the given spares.
    pub fn new(
        name: impl Into<String>,
        primary: impl Into<String>,
        spares: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Self {
            name: name.into(),
            primary: primary.into(),
            spares: spares.into_iter().map(Into::into).collect(),
            failover: None,
        }
    }

    /// Adds an exponential/phase-type failover time.
    pub fn with_failover(mut self, failover: Dist) -> Self {
        self.failover = Some(failover);
        self
    }
}

/// A named rate parameter for parametric sweeps.
///
/// A parameter binds to every *raw* distribution rate in the definition
/// that is bitwise equal to its `base` value — the value the model was
/// declared with. Declaring `lambda` with base `0.001` makes every
/// `Dist::exp(0.001)` (and every Erlang/hypoexponential phase with that
/// exact rate) follow the parameter when the model is re-rated at another
/// point, while rates that merely happen to be *close* stay fixed. Choose
/// distinct base values for distinct parameters (validated by
/// [`crate::model::validate`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RateParam {
    /// Unique parameter name.
    pub name: String,
    /// The declared base value the parameter binds to (finite, positive).
    pub base: f64,
}

/// A complete Arcade system definition.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemDef {
    /// Model name (used in reports).
    pub name: String,
    /// The basic components.
    pub components: Vec<BcDef>,
    /// The repair units.
    pub repair_units: Vec<RuDef>,
    /// The spare management units.
    pub smus: Vec<SmuDef>,
    /// The `SYSTEM DOWN` criterion (§3.5.4).
    pub system_down: Option<Expr>,
    /// Declared rate parameters for sweeps (empty = concrete model).
    pub params: Vec<RateParam>,
}

impl SystemDef {
    /// Creates an empty system.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            components: Vec::new(),
            repair_units: Vec::new(),
            smus: Vec::new(),
            system_down: None,
            params: Vec::new(),
        }
    }

    /// Adds a basic component.
    pub fn add_component(&mut self, bc: BcDef) -> &mut Self {
        self.components.push(bc);
        self
    }

    /// Adds a repair unit.
    pub fn add_repair_unit(&mut self, ru: RuDef) -> &mut Self {
        self.repair_units.push(ru);
        self
    }

    /// Adds a spare management unit.
    pub fn add_smu(&mut self, smu: SmuDef) -> &mut Self {
        self.smus.push(smu);
        self
    }

    /// Sets the system failure criterion.
    pub fn set_system_down(&mut self, expr: Expr) -> &mut Self {
        self.system_down = Some(expr);
        self
    }

    /// Declares a rate parameter binding to every raw distribution rate
    /// bitwise equal to `base` (see [`RateParam`]).
    pub fn add_param(&mut self, name: impl Into<String>, base: f64) -> &mut Self {
        self.params.push(RateParam {
            name: name.into(),
            base,
        });
        self
    }

    /// Whether the definition declares any rate parameters.
    pub fn is_parametric(&self) -> bool {
        !self.params.is_empty()
    }

    /// The concrete definition at the given parameter point: every raw
    /// distribution rate bitwise equal to a parameter's base is replaced
    /// by the corresponding entry of `values`, and the parameter
    /// declarations are dropped. Values must be positive and finite —
    /// `Dist::exp(0.0)` is a *structurally* different model
    /// ([`Dist::Never`]), not a limit of rates.
    ///
    /// This is the reference semantics of a sweep point: analyzing
    /// `def.at_point(v)` from scratch describes the same CTMC the sweep
    /// engine reaches by re-rating the aggregated quotient.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of declared
    /// parameters.
    pub fn at_point(&self, values: &[f64]) -> Self {
        assert_eq!(
            values.len(),
            self.params.len(),
            "one value per declared parameter"
        );
        let table: Vec<(u64, f64)> = self
            .params
            .iter()
            .zip(values)
            .map(|(p, &v)| (p.base.to_bits(), v))
            .collect();
        let subst = |r: f64| {
            table
                .iter()
                .find(|&&(bits, _)| bits == r.to_bits())
                .map_or(r, |&(_, v)| v)
        };
        let mut out = self.clone();
        out.params = Vec::new();
        for bc in &mut out.components {
            for d in &mut bc.ttf {
                *d = d.map_rates(subst);
            }
            for d in &mut bc.ttr {
                *d = d.map_rates(subst);
            }
            if let Some(d) = &mut bc.ttr_df {
                *d = d.map_rates(subst);
            }
        }
        for smu in &mut out.smus {
            if let Some(d) = &mut smu.failover {
                *d = d.map_rates(subst);
            }
        }
        out
    }

    /// Looks up a component definition by name.
    pub fn component(&self, name: &str) -> Option<&BcDef> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Looks up a declared parameter's index by name.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// The reliability variant of the model: all repair units removed, so
    /// no component is ever repaired. This is the configuration under which
    /// the paper computes the DDS reliability numbers of Table 1 (§5.1.2).
    pub fn without_repair(&self) -> Self {
        let mut out = self.clone();
        out.name = format!("{}-norepair", self.name);
        out.repair_units.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bc_builder_covers_fields() {
        let bc = BcDef::new("db", Dist::exp(0.01), Dist::exp(1.0))
            .with_om_group(OmGroup::OnOff(Expr::down("psu")))
            .with_ttf([Dist::exp(0.01), Dist::Never])
            .with_inaccessible_means_down(true);
        assert_eq!(bc.num_operational_states(), 2);
        assert_eq!(bc.num_failure_modes(), 1);
        assert!(!bc.has_active_inactive());
        assert!(bc.inaccessible_means_down);
    }

    #[test]
    fn spare_has_active_inactive() {
        let bc = BcDef::new("ps", Dist::exp(0.0005), Dist::exp(1.0))
            .with_om_group(OmGroup::ActiveInactive)
            .with_ttf([Dist::exp(0.0005), Dist::exp(0.0005)]);
        assert!(bc.has_active_inactive());
        assert_eq!(OmGroup::ActiveInactive.num_modes(), 2);
        assert!(OmGroup::ActiveInactive.trigger().is_none());
    }

    #[test]
    fn system_accessors() {
        let mut sys = SystemDef::new("s");
        sys.add_component(BcDef::new("a", Dist::exp(1.0), Dist::exp(1.0)));
        sys.add_repair_unit(RuDef::new("r", ["a"], RepairStrategy::Dedicated));
        sys.set_system_down(Expr::down("a"));
        assert!(sys.component("a").is_some());
        assert!(sys.component("zz").is_none());
        let nr = sys.without_repair();
        assert!(nr.repair_units.is_empty());
        assert!(!sys.repair_units.is_empty());
        assert!(nr.name.contains("norepair"));
    }

    #[test]
    fn strategy_keywords() {
        assert_eq!(RepairStrategy::Fcfs.keyword(), "FCFS");
        assert_eq!(RepairStrategy::Dedicated.keyword(), "DEDICATED");
        assert_eq!(RepairStrategy::PreemptivePriority.keyword(), "PP");
        assert_eq!(RepairStrategy::NonPreemptivePriority.keyword(), "PNP");
    }

    #[test]
    fn smu_with_failover() {
        let smu = SmuDef::new("m", "pp", ["ps"]).with_failover(Dist::exp(10.0));
        assert_eq!(smu.primary, "pp");
        assert_eq!(smu.spares, vec!["ps"]);
        assert!(smu.failover.is_some());
    }

    #[test]
    fn at_point_substitutes_by_bit_equality() {
        let mut sys = SystemDef::new("s");
        sys.add_component(BcDef::new("a", Dist::exp(0.001), Dist::exp(0.5)));
        sys.add_component(BcDef::new("b", Dist::erlang(2, 0.001), Dist::exp(1.0)));
        sys.add_param("lambda", 0.001);
        assert!(sys.is_parametric());
        assert_eq!(sys.param_index("lambda"), Some(0));
        assert_eq!(sys.param_index("mu"), None);

        let moved = sys.at_point(&[0.004]);
        assert!(!moved.is_parametric());
        assert_eq!(moved.components[0].ttf[0], Dist::Exp(0.004));
        assert_eq!(moved.components[1].ttf[0], Dist::Erlang(2, 0.004));
        // Rates not bitwise equal to the base stay fixed.
        assert_eq!(moved.components[0].ttr[0], Dist::Exp(0.5));
        assert_eq!(moved.components[1].ttr[0], Dist::Exp(1.0));
        // The original is untouched.
        assert_eq!(sys.components[0].ttf[0], Dist::Exp(0.001));
    }

    #[test]
    #[should_panic(expected = "one value per declared parameter")]
    fn at_point_checks_arity() {
        let mut sys = SystemDef::new("s");
        sys.add_param("lambda", 0.001);
        let _ = sys.at_point(&[]);
    }

    #[test]
    fn om_group_names() {
        assert!(OmGroup::OnOff(Expr::down("x")).name().contains("on"));
        assert!(OmGroup::NormalDegraded(Expr::down("x")).trigger().is_some());
    }
}
