//! Compositional aggregation (paper §4).
//!
//! The engine is the reproduction of the paper's `Composer` tool: it
//! evaluates a composition [`Plan`] — by default a hierarchical plan along
//! the fault-tree structure — and after every pairwise composition
//!
//! 1. **hides** the accumulated outputs that no block outside the current
//!    accumulation listens to,
//! 2. **prunes** the accumulated inputs that no outside block can drive
//!    (such transitions can never fire in the closed system),
//! 3. **aggregates** — minimizes modulo branching bisimulation with
//!    Markovian lumping.
//!
//! Groups are composed *in isolation*: inside a module group everything
//! that is module-internal can be hidden as soon as the module is
//! complete, so only a tiny quotient joins the parent fold. The final
//! closed automaton is converted into a labelled CTMC by eliminating the
//! vanishing (zero-sojourn) states.

use std::collections::HashSet;

use bisim::pipeline::{
    reduce_legacy, reduce_seeded, reduce_threaded, ReduceOptions, Reduced, RefineStats, Strategy,
};
use bisim::vanishing::eliminate_vanishing;
use ctmc::Ctmc;
use ioimc::compose::{parallel, parallel_with_pairs};
use ioimc::hide::{hide_outputs, prune_inputs};
use ioimc::{ActionId, IoImc, Stats};

use crate::error::ArcadeError;
use crate::model::SystemModel;
use crate::order::{resolve_plan, OrderPolicy, Plan};

/// How each intermediate reduction obtains its initial partition and
/// refinement loop (see the `bisim` crate docs for the cross-step
/// incremental contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RefineMode {
    /// Worklist refinement seeded with the quotient partition of the
    /// previous step: after `parallel(prev, next)` every product state
    /// remembers which (already minimal) `prev` class it came from, and
    /// refinement of the product starts from the meet of that hint with
    /// the label partition. The seed is a *finer* start than the label
    /// partition, so a from-labels confirmation pass must still run on
    /// the seeded quotient; on strongly symmetric models (e.g. the RCS
    /// pump lines) the carried classes forbid exactly the cross-component
    /// merges minimization would make, and that confirmation pass re-pays
    /// most of the refinement — which is why this is not the default.
    Incremental,
    /// Worklist refinement from the label partition at every step. The
    /// default: measured on `rcs_scaled(2)` it beats both the legacy
    /// recompute-all loop (~2.7×) and the seeded mode (~1.3×).
    #[default]
    Fresh,
    /// The pre-worklist recompute-all refinement loops
    /// ([`bisim::pipeline::reduce_legacy`]), serial only. Kept as the
    /// differential-testing oracle for the `exp_scaling --smoke` gate.
    Legacy,
}

/// Options controlling the aggregation.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Bisimulation strategy for intermediate and final reductions.
    pub strategy: Strategy,
    /// Refinement engine for the per-step reductions.
    pub refine: RefineMode,
    /// Composition order policy.
    pub order: OrderPolicy,
    /// When `false`, skip the intermediate reductions (compose everything
    /// flat, reduce once at the end) — the "no compositional aggregation"
    /// ablation. Default `true`.
    pub reduce_intermediate: bool,
    /// Worker threads for aggregating independent plan groups (and, in the
    /// callers that honor it, independent modules/configurations). `0`
    /// means one worker per available core; `1` forces the sequential
    /// path. Results are bitwise identical for every value — sibling
    /// groups are evaluated by the same code either way and their step
    /// reports are merged back in plan order.
    pub threads: usize,
    /// Configuration of the CTMC numerics the downstream measure layers
    /// ([`crate::query::Session`], [`crate::analysis::Analysis`],
    /// [`crate::modular::modular_analysis`]) run on the aggregated chain:
    /// the dense-vs-iterative solver crossover, the iterative
    /// tolerance/sweep-cap, and the sharded uniformization engine
    /// ([`ctmc::SolverOptions::transient`] — worker threads, shard
    /// granularity, steady-state detection). Aggregation itself ignores
    /// it.
    pub solver: ctmc::SolverOptions,
    /// Ceiling on the states of any intermediate model built during
    /// aggregation (`0` = unlimited, the default). When exceeded the
    /// aggregation aborts with [`ArcadeError::Budget`] instead of
    /// exhausting memory — the containment the server's `--max-states`
    /// flag relies on for wire-loaded models. Layered *under* any ambient
    /// request budget ([`ioimc::budget`]), so a per-request deadline still
    /// applies on top.
    pub max_states: u64,
    /// Ceiling on the transitions of any intermediate model (`0` =
    /// unlimited). See [`EngineOptions::max_states`].
    pub max_transitions: u64,
}

impl EngineOptions {
    /// The default configuration: branching bisimulation, hierarchical
    /// bottom-up order, intermediate reductions on, auto thread count.
    pub fn new() -> Self {
        Self {
            strategy: Strategy::Branching,
            refine: RefineMode::Fresh,
            order: OrderPolicy::BottomUp,
            reduce_intermediate: true,
            threads: 0,
            solver: ctmc::SolverOptions::default(),
            max_states: 0,
            max_transitions: 0,
        }
    }

    /// Returns a copy with the given worker thread count (see
    /// [`EngineOptions::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy with the given CTMC solver configuration (see
    /// [`EngineOptions::solver`]).
    pub fn with_solver(mut self, solver: ctmc::SolverOptions) -> Self {
        self.solver = solver;
        self
    }

    /// Returns a copy with an intermediate-model state ceiling (see
    /// [`EngineOptions::max_states`]; `0` disables).
    pub fn with_max_states(mut self, max_states: u64) -> Self {
        self.max_states = max_states;
        self
    }

    /// Returns a copy with an intermediate-model transition ceiling (see
    /// [`EngineOptions::max_transitions`]; `0` disables).
    pub fn with_max_transitions(mut self, max_transitions: u64) -> Self {
        self.max_transitions = max_transitions;
        self
    }
}

/// The record of one composition step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Name of the block (or `"<group>"`) composed in this step.
    pub block: String,
    /// Size right after composition (before hiding/reduction).
    pub composed: Stats,
    /// Size after hiding, pruning and reduction.
    pub reduced: Stats,
}

/// The result of compositional aggregation.
#[derive(Debug, Clone)]
pub struct Aggregation {
    /// The final labelled CTMC (label bit 0 = system down).
    pub ctmc: Ctmc,
    /// Size of the final CTMC.
    pub ctmc_stats: Stats,
    /// The largest intermediate I/O-IMC encountered (the number the paper
    /// reports for the case studies).
    pub largest_intermediate: Stats,
    /// Per-step size log.
    pub steps: Vec<StepReport>,
    /// Aggregation-phase breakdown summed over every reduction of the run
    /// (intermediate folds plus the final close). Zeroed under
    /// [`RefineMode::Legacy`].
    pub refine: RefineStats,
}

/// Runs compositional aggregation on `model` and extracts the CTMC.
///
/// # Errors
///
/// Returns an error if composition fails (signature clash) or the closed
/// model is not weakly deterministic.
pub fn aggregate(model: &SystemModel, opts: &EngineOptions) -> Result<Aggregation, ArcadeError> {
    // Layer the per-call size ceiling (if any) under the ambient request
    // budget, so a wire `--max-states` and a request deadline compose.
    if opts.max_states > 0 || opts.max_transitions > 0 {
        let mut child = ioimc::budget::Budget::unlimited()
            .with_max_states(opts.max_states)
            .with_max_transitions(opts.max_transitions);
        if let Some(parent) = ioimc::budget::current() {
            child = child.with_parent(parent);
        }
        return ioimc::budget::scope(Some(std::sync::Arc::new(child)), || {
            aggregate_inner(model, opts)
        });
    }
    aggregate_inner(model, opts)
}

fn aggregate_inner(model: &SystemModel, opts: &EngineOptions) -> Result<Aggregation, ArcadeError> {
    let plan = resolve_plan(model, &opts.order)?;
    let env = EvalEnv {
        model,
        ropts: ReduceOptions {
            strategy: opts.strategy,
            tau: model.tau,
        },
        refine: opts.refine,
        reduce_intermediate: opts.reduce_intermediate,
        threads: ioimc::par::effective_threads(opts.threads),
    };
    let out = eval_plan(&env, &plan, &Interface::default())?;
    let mut acc = out.imc;
    let mut largest = out.largest;
    let mut refine = out.refine;

    // Close the system completely and reduce. Hiding does not renumber
    // states, so the final reduce could in principle be seeded too; it is
    // left unseeded because the close dominates neither the work nor the
    // timings.
    let outs = acc.outputs().to_vec();
    acc = hide_outputs(acc, &outs);
    let ins = acc.inputs().to_vec();
    acc = prune_inputs(acc, &ins);
    let red = reduce_step(env.refine, &acc, &env.ropts, env.threads, None);
    refine.merge(&red.refine);
    acc = red.imc;
    largest = largest.max(Stats::of(&acc));
    let markovian_only = eliminate_vanishing(&acc)?;
    let ctmc = Ctmc::from_ioimc(&markovian_only)?;
    let ctmc_stats = Stats::of(&markovian_only);
    Ok(Aggregation {
        ctmc,
        ctmc_stats,
        largest_intermediate: largest,
        steps: out.steps,
        refine,
    })
}

/// Dispatches one reduction to the configured refinement engine. The hint
/// (previous-step quotient classes per state) is only consulted by
/// [`RefineMode::Incremental`].
fn reduce_step(
    mode: RefineMode,
    imc: &IoImc,
    ropts: &ReduceOptions,
    threads: usize,
    hint: Option<&[u32]>,
) -> Reduced {
    match mode {
        RefineMode::Incremental => reduce_seeded(imc, ropts, threads, hint),
        RefineMode::Fresh => reduce_threaded(imc, ropts, threads),
        RefineMode::Legacy => reduce_legacy(imc, ropts),
    }
}

/// Read-only evaluation environment shared by every (possibly concurrent)
/// plan evaluation.
#[derive(Clone, Copy)]
struct EvalEnv<'m> {
    model: &'m SystemModel,
    ropts: ReduceOptions,
    refine: RefineMode,
    reduce_intermediate: bool,
    /// Worker budget for sibling groups at this level (already resolved
    /// via [`ioimc::par::effective_threads`]).
    threads: usize,
}

/// Result of evaluating one plan node: the aggregated automaton plus the
/// node's own step log and peak sizes, merged into the parent in
/// deterministic plan order.
struct EvalOut {
    imc: IoImc,
    steps: Vec<StepReport>,
    largest: Stats,
    refine: RefineStats,
}

/// The externally visible signals of everything *outside* the automaton
/// being built: the accumulated automaton may only hide outputs no
/// external input listens to, and prune inputs no external output drives.
#[derive(Debug, Clone, Default)]
struct Interface {
    inputs: HashSet<ActionId>,
    outputs: HashSet<ActionId>,
}

impl Interface {
    fn union(&self, other: &Interface) -> Interface {
        Interface {
            inputs: self.inputs.union(&other.inputs).copied().collect(),
            outputs: self.outputs.union(&other.outputs).copied().collect(),
        }
    }
}

/// The visible signature of a plan subtree (over the original blocks — a
/// safe overapproximation of the signature after internal hiding).
fn plan_interface(model: &SystemModel, plan: &Plan) -> Interface {
    let mut iface = Interface::default();
    for i in plan.blocks() {
        let imc = &model.blocks[i].imc;
        iface.inputs.extend(imc.inputs().iter().copied());
        iface.outputs.extend(imc.outputs().iter().copied());
    }
    iface
}

fn eval_plan(env: &EvalEnv<'_>, plan: &Plan, external: &Interface) -> Result<EvalOut, ArcadeError> {
    match plan {
        Plan::Block(i) => Ok(EvalOut {
            imc: env.model.blocks[*i].imc.clone(),
            steps: Vec::new(),
            largest: Stats::default(),
            refine: RefineStats::default(),
        }),
        Plan::Group(items) => {
            assert!(!items.is_empty(), "empty plan group");
            let ifaces: Vec<Interface> =
                items.iter().map(|p| plan_interface(env.model, p)).collect();
            // Everything outside item `k`: the external context plus the
            // other items of this group (composed or still pending).
            let item_externals: Vec<Interface> = (0..items.len())
                .map(|k| {
                    let mut ext = external.clone();
                    for (j, other) in ifaces.iter().enumerate() {
                        if j != k {
                            ext = ext.union(other);
                        }
                    }
                    ext
                })
                .collect();

            // Sibling groups are aggregated in isolation (each only reads
            // the shared model and its own external interface), so they
            // are embarrassingly parallel. Pre-evaluate them on worker
            // threads; the fold below then consumes the results in plan
            // order, which keeps the composition sequence — and therefore
            // every automaton and measure — identical to the sequential
            // path. The thread budget is split across the workers so a
            // dominant child still gets multi-threaded reductions without
            // oversubscribing the machine.
            let group_jobs: Vec<usize> = items
                .iter()
                .enumerate()
                .filter(|(_, p)| matches!(p, Plan::Group(_)))
                .map(|(k, _)| k)
                .collect();
            let mut pre: Vec<Option<Result<EvalOut, ArcadeError>>> =
                items.iter().map(|_| None).collect();
            if env.threads > 1 && group_jobs.len() > 1 {
                let worker_env = EvalEnv {
                    threads: ioimc::par::split_budget(env.threads, group_jobs.len()),
                    ..*env
                };
                // The ambient budget is a thread-local: carry it across
                // the fan-out so workers stay under the caller's limits.
                let budget = ioimc::budget::current();
                let results = ioimc::par::par_map(env.threads, &group_jobs, |_, &k| {
                    ioimc::budget::scope(budget.clone(), || {
                        eval_plan(&worker_env, &items[k], &item_externals[k])
                    })
                });
                for (&k, r) in group_jobs.iter().zip(results) {
                    pre[k] = Some(r);
                }
            }

            let mut acc: Option<IoImc> = None;
            let mut steps: Vec<StepReport> = Vec::new();
            let mut largest = Stats::default();
            let mut refine = RefineStats::default();
            for (k, item) in items.iter().enumerate() {
                let part = match pre[k].take() {
                    Some(out) => out?,
                    None => eval_plan(env, item, &item_externals[k])?,
                };
                // Deterministic merge: the child's own step log and peaks
                // land right before the fold step that consumes it.
                steps.extend(part.steps);
                largest = largest.max(part.largest);
                refine.merge(&part.refine);
                let part = part.imc;
                acc = Some(match acc {
                    None => part,
                    Some(prev) => {
                        // Incremental refinement: `prev` is already minimal,
                        // so the left component of each product state is a
                        // valid coarse grouping of the product — carry it as
                        // the refinement seed of this step. Hiding/pruning
                        // below never renumber states, so the per-state hint
                        // stays aligned.
                        let seeded =
                            env.reduce_intermediate && env.refine == RefineMode::Incremental;
                        let (mut composed, hint) = if seeded {
                            let (c, pairs) = parallel_with_pairs(&prev, &part)?;
                            let hint: Vec<u32> = pairs.into_iter().map(|(l, _)| l).collect();
                            (c, Some(hint))
                        } else {
                            (parallel(&prev, &part)?, None)
                        };
                        let composed_stats = Stats::of(&composed);
                        largest = largest.max(composed_stats);
                        // Outside of the accumulation: external plus the
                        // pending items of this group.
                        let mut outside = external.clone();
                        for iface in ifaces.iter().skip(k + 1) {
                            outside = outside.union(iface);
                        }
                        composed = hide_and_prune(composed, &outside);
                        composed = if env.reduce_intermediate {
                            let red = reduce_step(
                                env.refine,
                                &composed,
                                &env.ropts,
                                env.threads,
                                hint.as_deref(),
                            );
                            refine.merge(&red.refine);
                            red.imc
                        } else {
                            ioimc::reach::restrict_reachable(&composed)
                        };
                        steps.push(StepReport {
                            block: match item {
                                Plan::Block(i) => env.model.blocks[*i].name.clone(),
                                Plan::Group(_) => "<group>".to_owned(),
                            },
                            composed: composed_stats,
                            reduced: Stats::of(&composed),
                        });
                        composed
                    }
                });
            }
            Ok(EvalOut {
                imc: acc.expect("non-empty group"),
                steps,
                largest,
                refine,
            })
        }
    }
}

/// Hides accumulated outputs nobody outside listens to; prunes accumulated
/// inputs nobody outside can drive. Both edits are in place (signature
/// move + CSR compaction) — no copy of the transition arrays.
fn hide_and_prune(acc: IoImc, outside: &Interface) -> IoImc {
    let hide: Vec<ActionId> = acc
        .outputs()
        .iter()
        .copied()
        .filter(|a| !outside.inputs.contains(a))
        .collect();
    let prune: Vec<ActionId> = acc
        .inputs()
        .iter()
        .copied()
        .filter(|a| !outside.outputs.contains(a))
        .collect();
    prune_inputs(hide_outputs(acc, &hide), &prune)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BcDef, RepairStrategy, RuDef, SystemDef};
    use crate::dist::Dist;
    use crate::expr::Expr;
    use ctmc::measures;

    /// One component with dedicated repair: the CTMC is the two-state
    /// machine with availability µ/(λ+µ).
    #[test]
    fn single_component_availability() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("x", Dist::exp(0.01), Dist::exp(2.0)));
        def.add_repair_unit(RuDef::new("r", ["x"], RepairStrategy::Dedicated));
        def.set_system_down(Expr::down("x"));
        let model = SystemModel::build(&def).unwrap();
        let agg = aggregate(&model, &EngineOptions::new()).unwrap();
        assert_eq!(agg.ctmc.num_states(), 2);
        let a = measures::steady_state_availability(&agg.ctmc, 1);
        assert!((a - 2.0 / 2.01).abs() < 1e-12, "availability {a}");
    }

    /// Two redundant components, no repair: reliability matches
    /// (1 - (1-e^{-λt})²).
    #[test]
    fn parallel_pair_reliability() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.1), Dist::exp(1.0)));
        def.add_component(BcDef::new("b", Dist::exp(0.1), Dist::exp(1.0)));
        def.set_system_down(Expr::and([Expr::down("a"), Expr::down("b")]));
        let model = SystemModel::build(&def.without_repair()).unwrap();
        let agg = aggregate(&model, &EngineOptions::new()).unwrap();
        let t = 5.0;
        let r = measures::reliability(&agg.ctmc, 1, t);
        let p = 1.0 - (-0.1f64 * t).exp();
        assert!((r - (1.0 - p * p)).abs() < 1e-9, "reliability {r}");
    }

    /// All order policies and strategies produce the same measure.
    #[test]
    fn orders_and_strategies_agree() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.02), Dist::exp(1.0)));
        def.add_component(BcDef::new("b", Dist::exp(0.05), Dist::exp(2.0)));
        def.add_repair_unit(RuDef::new("r", ["a", "b"], RepairStrategy::Fcfs));
        def.set_system_down(Expr::or([Expr::down("a"), Expr::down("b")]));
        let model = SystemModel::build(&def).unwrap();

        let reference = {
            let agg = aggregate(&model, &EngineOptions::new()).unwrap();
            measures::steady_state_availability(&agg.ctmc, 1)
        };
        for order in [
            OrderPolicy::Affinity,
            OrderPolicy::Declaration,
            OrderPolicy::Reverse,
        ] {
            for strategy in [Strategy::None, Strategy::Strong, Strategy::Branching] {
                let opts = EngineOptions {
                    strategy,
                    order: order.clone(),
                    ..EngineOptions::new()
                };
                let agg = aggregate(&model, &opts).unwrap();
                let a = measures::steady_state_availability(&agg.ctmc, 1);
                assert!(
                    (a - reference).abs() < 1e-10,
                    "{order:?}/{strategy:?}: {a} vs {reference}"
                );
            }
        }
    }

    /// The flat (non-compositional) ablation agrees but visits larger
    /// intermediate models.
    #[test]
    fn flat_ablation_agrees_and_is_larger() {
        let mut def = SystemDef::new("t");
        for n in ["a", "b", "c"] {
            def.add_component(BcDef::new(n, Dist::exp(0.02), Dist::exp(1.0)));
        }
        def.add_repair_unit(RuDef::new("r", ["a", "b", "c"], RepairStrategy::Fcfs));
        def.set_system_down(Expr::k_of_n(
            2,
            [Expr::down("a"), Expr::down("b"), Expr::down("c")],
        ));
        let model = SystemModel::build(&def).unwrap();
        let comp = aggregate(&model, &EngineOptions::new()).unwrap();
        let flat = aggregate(
            &model,
            &EngineOptions {
                reduce_intermediate: false,
                ..EngineOptions::new()
            },
        )
        .unwrap();
        let a1 = measures::steady_state_availability(&comp.ctmc, 1);
        let a2 = measures::steady_state_availability(&flat.ctmc, 1);
        assert!((a1 - a2).abs() < 1e-10);
        assert!(
            flat.largest_intermediate.states >= comp.largest_intermediate.states,
            "flat {:?} vs comp {:?}",
            flat.largest_intermediate,
            comp.largest_intermediate
        );
    }

    /// A cause-specific literal goes false when the down-cause changes
    /// without the component ever coming up: repaired under a still-active
    /// destructive dependency, the component re-fails urgently as `df`,
    /// and `c2.down.m2` must hand over to false even though no `up` was
    /// ever emitted in between. Reference value hand-solved from the
    /// 7-state product chain.
    #[test]
    fn mode_literal_hands_over_on_df_refailure() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("c0", Dist::exp(1.0), Dist::exp(1.0)));
        def.add_component(
            BcDef::new("c2", Dist::exp(1.0), Dist::exp(1.0))
                .with_failure_modes([0.375, 0.625], [Dist::exp(1.0), Dist::exp(1.0)])
                .with_df(Expr::down("c0"), Dist::exp(0.0013)),
        );
        def.add_repair_unit(RuDef::new("r0", ["c0"], RepairStrategy::Dedicated));
        def.add_repair_unit(RuDef::new("r2", ["c2"], RepairStrategy::Dedicated));
        def.set_system_down(Expr::down_mode("c2", 2));
        let model = SystemModel::build(&def).unwrap();
        let agg = aggregate(&model, &EngineOptions::new()).unwrap();
        let u = 1.0 - measures::steady_state_availability(&agg.ctmc, 1);
        assert!(
            (u - 3.041_931_860_726_e-4).abs() < 1e-12,
            "unavailability {u}"
        );
    }

    /// A spare managed by an SMU takes over when the primary fails.
    #[test]
    fn smu_keeps_system_up() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("pp", Dist::exp(0.01), Dist::exp(1.0)));
        def.add_component(
            BcDef::new("ps", Dist::exp(0.01), Dist::exp(1.0))
                .with_om_group(crate::ast::OmGroup::ActiveInactive)
                .with_ttf([Dist::exp(0.01), Dist::exp(0.01)]),
        );
        def.add_repair_unit(RuDef::new("r", ["pp", "ps"], RepairStrategy::Fcfs));
        def.add_smu(crate::ast::SmuDef::new("smu", "pp", ["ps"]));
        def.set_system_down(Expr::and([Expr::down("pp"), Expr::down("ps")]));
        let model = SystemModel::build(&def).unwrap();
        let agg = aggregate(&model, &EngineOptions::new()).unwrap();
        let a = measures::steady_state_availability(&agg.ctmc, 1);
        // both must be down simultaneously: availability very high
        assert!(a > 0.999, "availability {a}");
        assert!(a < 1.0);
    }

    /// Parallel group aggregation is a pure scheduling change: the CTMC,
    /// the step log and every measure must be *bitwise* identical to the
    /// single-threaded path, for any worker count.
    #[test]
    fn parallel_aggregation_is_bitwise_deterministic() {
        let mut def = SystemDef::new("t");
        for n in ["a", "b", "c", "d", "e", "f"] {
            def.add_component(BcDef::new(n, Dist::exp(0.02), Dist::exp(1.0)));
        }
        def.add_repair_unit(RuDef::new("r1", ["a", "b"], RepairStrategy::Fcfs));
        def.add_repair_unit(RuDef::new("r2", ["c", "d"], RepairStrategy::Fcfs));
        def.add_repair_unit(RuDef::new("r3", ["e", "f"], RepairStrategy::Fcfs));
        def.set_system_down(Expr::or([
            Expr::and([Expr::down("a"), Expr::down("b")]),
            Expr::and([Expr::down("c"), Expr::down("d")]),
            Expr::and([Expr::down("e"), Expr::down("f")]),
        ]));
        let model = SystemModel::build(&def).unwrap();
        let seq = aggregate(&model, &EngineOptions::new().with_threads(1)).unwrap();
        for threads in [2, 4, 8] {
            let par = aggregate(&model, &EngineOptions::new().with_threads(threads)).unwrap();
            assert_eq!(par.ctmc, seq.ctmc, "{threads} threads: CTMC differs");
            assert_eq!(par.largest_intermediate, seq.largest_intermediate);
            assert_eq!(par.steps.len(), seq.steps.len());
            for (p, s) in par.steps.iter().zip(&seq.steps) {
                assert_eq!(p.block, s.block, "{threads} threads: step order differs");
                assert_eq!(p.composed, s.composed);
                assert_eq!(p.reduced, s.reduced);
            }
            let a_seq = measures::steady_state_availability(&seq.ctmc, 1);
            let a_par = measures::steady_state_availability(&par.ctmc, 1);
            assert_eq!(
                a_par.to_bits(),
                a_seq.to_bits(),
                "measure not bitwise equal"
            );
        }
    }

    /// A state ceiling turns a too-large aggregation into a structured
    /// [`ArcadeError::Budget`] instead of an ever-growing composition.
    #[test]
    fn state_ceiling_aborts_aggregation() {
        let mut def = SystemDef::new("t");
        for n in ["a", "b", "c", "d", "e", "f"] {
            def.add_component(BcDef::new(n, Dist::exp(0.02), Dist::exp(1.0)));
        }
        def.add_repair_unit(RuDef::new(
            "r",
            ["a", "b", "c", "d", "e", "f"],
            RepairStrategy::Fcfs,
        ));
        def.set_system_down(Expr::and([
            Expr::down("a"),
            Expr::down("b"),
            Expr::down("c"),
            Expr::down("d"),
            Expr::down("e"),
            Expr::down("f"),
        ]));
        let model = SystemModel::build(&def).unwrap();
        // Flat, unreduced composition of six components blows through a
        // tiny ceiling long before the final model exists.
        let opts = EngineOptions {
            reduce_intermediate: false,
            ..EngineOptions::new()
        }
        .with_max_states(16);
        match aggregate(&model, &opts) {
            Err(ArcadeError::Budget(e)) => {
                assert_eq!(e.kind, ioimc::budget::BudgetKind::States);
                assert_eq!(e.limit, 16);
            }
            other => panic!("expected budget abort, got {other:?}"),
        }
        // The same aggregation under a generous ceiling completes.
        let ok = aggregate(&model, &EngineOptions::new().with_max_states(1_000_000));
        assert!(ok.is_ok());
    }

    /// Hierarchical (grouped) plans beat flat orders on the peak size for
    /// modular systems.
    #[test]
    fn hierarchical_plan_shrinks_peak() {
        let mut def = SystemDef::new("t");
        for n in ["a", "b", "c", "d", "e", "f"] {
            def.add_component(BcDef::new(n, Dist::exp(0.02), Dist::exp(1.0)));
        }
        def.add_repair_unit(RuDef::new("r1", ["a", "b"], RepairStrategy::Fcfs));
        def.add_repair_unit(RuDef::new("r2", ["c", "d"], RepairStrategy::Fcfs));
        def.add_repair_unit(RuDef::new("r3", ["e", "f"], RepairStrategy::Fcfs));
        def.set_system_down(Expr::or([
            Expr::and([Expr::down("a"), Expr::down("b")]),
            Expr::and([Expr::down("c"), Expr::down("d")]),
            Expr::and([Expr::down("e"), Expr::down("f")]),
        ]));
        let model = SystemModel::build(&def).unwrap();
        let tree = aggregate(&model, &EngineOptions::new()).unwrap();
        let flat = aggregate(
            &model,
            &EngineOptions {
                order: OrderPolicy::Declaration,
                ..EngineOptions::new()
            },
        )
        .unwrap();
        let a1 = measures::steady_state_availability(&tree.ctmc, 1);
        let a2 = measures::steady_state_availability(&flat.ctmc, 1);
        assert!((a1 - a2).abs() < 1e-10);
        assert!(
            tree.largest_intermediate.states <= flat.largest_intermediate.states,
            "tree {:?} vs flat {:?}",
            tree.largest_intermediate,
            flat.largest_intermediate
        );
    }
}
