//! Serialization of a [`SystemDef`] back to the paper's textual syntax.
//!
//! `parse_system(&to_arcade_text(def))` reproduces `def` — the round trip
//! is checked by property tests. Useful for exporting programmatically
//! built models (e.g. the DDS/RCS case studies) as `.arcade` files.

use std::fmt::Write as _;

use crate::ast::{OmGroup, RepairStrategy, SystemDef};
use crate::dist::Dist;

/// Renders `def` in the §3.5 textual syntax.
pub fn to_arcade_text(def: &SystemDef) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", def.name);
    for bc in &def.components {
        let _ = writeln!(out);
        let _ = writeln!(out, "COMPONENT: {}", bc.name);
        if !bc.om_groups.is_empty() {
            let groups: Vec<&str> = bc.om_groups.iter().map(OmGroup::name).collect();
            let _ = writeln!(out, "OPERATIONAL MODES: {}", groups.join(" "));
        }
        for g in &bc.om_groups {
            match g {
                OmGroup::ActiveInactive => {}
                OmGroup::OnOff(e) => {
                    let _ = writeln!(out, "ON-TO-OFF: {e}");
                }
                OmGroup::AccessibleInaccessible(e) => {
                    let _ = writeln!(out, "ACCESSIBLE-TO-INACCESSIBLE: {e}");
                }
                OmGroup::NormalDegraded(e) => {
                    let _ = writeln!(out, "NORMAL-TO-DEGRADED: {e}");
                }
            }
        }
        if bc.inaccessible_means_down {
            let _ = writeln!(out, "INACCESSIBLE MEANS DOWN: YES");
        }
        let _ = writeln!(out, "TIME-TO-FAILURES: {}", dists(&bc.ttf));
        if bc.failure_mode_probs.len() > 1 {
            let probs: Vec<String> = bc.failure_mode_probs.iter().map(f64::to_string).collect();
            let _ = writeln!(out, "FAILURE MODE PROBABILITIES: {}", probs.join(", "));
        }
        // With a DF, the last repair entry is µ_df (§3.5.1 line (9)).
        let mut ttr = bc.ttr.clone();
        if let Some(df_ttr) = &bc.ttr_df {
            ttr.push(df_ttr.clone());
        }
        let _ = writeln!(out, "TIME-TO-REPAIRS: {}", dists(&ttr));
        if let Some(df) = &bc.df {
            let _ = writeln!(out, "DESTRUCTIVE FDEP: {df}");
        }
    }
    for ru in &def.repair_units {
        let _ = writeln!(out);
        let _ = writeln!(out, "REPAIR UNIT: {}", ru.name);
        let _ = writeln!(out, "COMPONENTS: {}", ru.components.join(", "));
        let _ = writeln!(out, "REPAIR STRATEGY: {}", ru.strategy.keyword());
        if matches!(
            ru.strategy,
            RepairStrategy::PreemptivePriority | RepairStrategy::NonPreemptivePriority
        ) {
            let prios: Vec<String> = ru.priorities.iter().map(u32::to_string).collect();
            let _ = writeln!(out, "PRIORITIES: {}", prios.join(", "));
        }
    }
    for smu in &def.smus {
        let _ = writeln!(out);
        let _ = writeln!(out, "SMU: {}", smu.name);
        let comps: Vec<&str> = std::iter::once(smu.primary.as_str())
            .chain(smu.spares.iter().map(String::as_str))
            .collect();
        let _ = writeln!(out, "COMPONENTS: {}", comps.join(", "));
        if let Some(f) = &smu.failover {
            let _ = writeln!(out, "FAILOVER-TIME: {f}");
        }
    }
    if let Some(down) = &def.system_down {
        let _ = writeln!(out);
        let _ = writeln!(out, "SYSTEM DOWN: {down}");
    }
    out
}

fn dists(ds: &[Dist]) -> String {
    ds.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BcDef, RuDef, SmuDef};
    use crate::expr::Expr;
    use crate::parser::parse_system;

    fn round_trip(def: &SystemDef) -> SystemDef {
        let text = to_arcade_text(def);
        parse_system(&text).unwrap_or_else(|e| panic!("round trip failed: {e}\n{text}"))
    }

    #[test]
    fn round_trips_the_dds() {
        let def = crate::cases::dds::dds();
        let back = round_trip(&def);
        assert_eq!(back.components, def.components);
        assert_eq!(back.repair_units, def.repair_units);
        assert_eq!(back.smus, def.smus);
        assert_eq!(back.system_down, def.system_down);
    }

    #[test]
    fn round_trips_the_rcs() {
        let def = crate::cases::rcs::rcs();
        let back = round_trip(&def);
        assert_eq!(back.components, def.components);
        assert_eq!(back.repair_units, def.repair_units);
        assert_eq!(back.system_down, def.system_down);
    }

    #[test]
    fn round_trips_df_and_failover() {
        let mut def = SystemDef::new("x");
        def.add_component(BcDef::new("fan", Dist::exp(0.001), Dist::exp(1.0)));
        def.add_component(
            BcDef::new("cpu", Dist::exp(1e-4), Dist::exp(1.0))
                .with_df(Expr::down("fan"), Dist::exp(0.5)),
        );
        def.add_component(
            BcDef::new("sp", Dist::exp(1e-4), Dist::exp(1.0))
                .with_om_group(OmGroup::ActiveInactive)
                .with_ttf([Dist::Never, Dist::exp(1e-4)]),
        );
        def.add_repair_unit(
            RuDef::new("r", ["fan", "cpu"], RepairStrategy::PreemptivePriority)
                .with_priorities([1, 2]),
        );
        def.add_smu(SmuDef::new("m", "cpu", ["sp"]).with_failover(Dist::erlang(2, 5.0)));
        def.set_system_down(Expr::pand([Expr::down("fan"), Expr::down("cpu")]));
        let back = round_trip(&def);
        assert_eq!(back.components, def.components);
        assert_eq!(back.repair_units, def.repair_units);
        assert_eq!(back.smus, def.smus);
        assert_eq!(back.system_down, def.system_down);
    }
}
