//! High-level analysis API.
//!
//! [`Analysis`] bundles the whole Arcade pipeline: elaborate the model,
//! run compositional aggregation for the *availability* configuration
//! (repairs active) and for the *reliability* configuration (no repairs,
//! following the paper's definition for Table 1), and expose the measures.

use ctmc::measures;
use ioimc::Stats;

use crate::ast::SystemDef;
use crate::build::observer::DOWN_BIT;
use crate::engine::{aggregate, Aggregation, EngineOptions};
use crate::error::ArcadeError;
use crate::model::SystemModel;

/// A configured analysis of one system definition.
#[derive(Debug, Clone)]
pub struct Analysis {
    def: SystemDef,
    opts: EngineOptions,
}

impl Analysis {
    /// Creates an analysis with default engine options. Validates the
    /// definition eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::Invalid`] for inconsistent definitions.
    pub fn new(def: &SystemDef) -> Result<Self, ArcadeError> {
        crate::model::validate(def)?;
        if def.system_down.is_none() {
            return Err(ArcadeError::invalid("SYSTEM DOWN criterion missing"));
        }
        Ok(Self {
            def: def.clone(),
            opts: EngineOptions::new(),
        })
    }

    /// Overrides the engine options.
    pub fn with_options(mut self, opts: EngineOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Runs aggregation for both the availability model (repairs active)
    /// and the reliability model (repairs stripped, §5.1.2).
    ///
    /// # Errors
    ///
    /// Propagates composition/determinism/analysis errors.
    pub fn run(&self) -> Result<AnalysisReport, ArcadeError> {
        let model = SystemModel::build(&self.def)?;
        let availability = aggregate(&model, &self.opts)?;
        let no_repair_def = self.def.without_repair();
        let no_repair_model = SystemModel::build(&no_repair_def)?;
        let reliability = aggregate(&no_repair_model, &self.opts)?;
        Ok(AnalysisReport {
            availability,
            reliability,
        })
    }

    /// Runs aggregation for the availability model only (faster when
    /// reliability is not needed).
    ///
    /// # Errors
    ///
    /// Propagates composition/determinism/analysis errors.
    pub fn run_availability_only(&self) -> Result<Aggregation, ArcadeError> {
        let model = SystemModel::build(&self.def)?;
        aggregate(&model, &self.opts)
    }
}

/// The measures of a completed analysis.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Aggregation of the model with repairs (availability measures).
    pub availability: Aggregation,
    /// Aggregation of the model without any repair (reliability measures,
    /// the paper's Table 1 definition).
    pub reliability: Aggregation,
}

impl AnalysisReport {
    /// Long-run availability `A`.
    pub fn steady_state_availability(&self) -> f64 {
        measures::steady_state_availability(&self.availability.ctmc, DOWN_BIT)
    }

    /// Long-run unavailability `1 - A` (computed directly for precision).
    pub fn steady_state_unavailability(&self) -> f64 {
        measures::steady_state_unavailability(&self.availability.ctmc, DOWN_BIT)
    }

    /// Point availability `A(t)`.
    pub fn point_availability(&self, t: f64) -> f64 {
        measures::point_availability(&self.availability.ctmc, DOWN_BIT, t)
    }

    /// Point unavailability `1 - A(t)`.
    pub fn point_unavailability(&self, t: f64) -> f64 {
        measures::point_unavailability(&self.availability.ctmc, DOWN_BIT, t)
    }

    /// Reliability `R(t)` with **no repairs at all** — the definition used
    /// for the DDS case study (§5.1.2, following \[19\]).
    pub fn reliability(&self, t: f64) -> f64 {
        measures::reliability(&self.reliability.ctmc, DOWN_BIT, t)
    }

    /// Unreliability `1 - R(t)` of the no-repair model.
    pub fn unreliability(&self, t: f64) -> f64 {
        measures::unreliability(&self.reliability.ctmc, DOWN_BIT, t)
    }

    /// First-passage unreliability **with component repairs active** —
    /// the definition used for the RCS case study (§5.2.2): components
    /// keep being repaired, but the first system-level failure counts.
    pub fn unreliability_with_repair(&self, t: f64) -> f64 {
        measures::unreliability(&self.availability.ctmc, DOWN_BIT, t)
    }

    /// Mean time to the first system failure (repairs active).
    pub fn mttf(&self) -> f64 {
        measures::mttf(&self.availability.ctmc, DOWN_BIT)
    }

    /// Interval availability: expected fraction of `[0, t]` the system is
    /// up (a CSL-layer measure, §6 future work).
    pub fn interval_availability(&self, t: f64) -> f64 {
        1.0 - ctmc::csl::interval_down_fraction(
            &self.availability.ctmc,
            &ctmc::csl::StateFormula::down(),
            t,
        )
    }

    /// Evaluates `P[Φ U≤t Ψ]` on the availability CTMC (CSL layer, §6
    /// future work). Atomic propositions are label formulas;
    /// [`ctmc::csl::StateFormula::down`] is the system-down bit.
    pub fn until_bounded(
        &self,
        phi: &ctmc::csl::StateFormula,
        psi: &ctmc::csl::StateFormula,
        t: f64,
    ) -> f64 {
        ctmc::csl::until_bounded(&self.availability.ctmc, phi, psi, t)
    }

    /// Size of the final availability CTMC.
    pub fn ctmc_stats(&self) -> Stats {
        self.availability.ctmc_stats
    }

    /// Largest intermediate I/O-IMC of the availability aggregation.
    pub fn largest_intermediate(&self) -> Stats {
        self.availability.largest_intermediate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BcDef, RepairStrategy, RuDef};
    use crate::dist::Dist;
    use crate::expr::Expr;

    fn series_pair() -> SystemDef {
        let mut def = SystemDef::new("series");
        def.add_component(BcDef::new("a", Dist::exp(0.01), Dist::exp(1.0)));
        def.add_component(BcDef::new("b", Dist::exp(0.02), Dist::exp(2.0)));
        def.add_repair_unit(RuDef::new("ra", ["a"], RepairStrategy::Dedicated));
        def.add_repair_unit(RuDef::new("rb", ["b"], RepairStrategy::Dedicated));
        def.set_system_down(Expr::or([Expr::down("a"), Expr::down("b")]));
        def
    }

    #[test]
    fn series_system_closed_forms() {
        let report = Analysis::new(&series_pair()).unwrap().run().unwrap();
        // independent dedicated repair: A = Π µ/(λ+µ)
        let expected_a = (1.0 / 1.01) * (2.0 / 2.02);
        let a = report.steady_state_availability();
        assert!((a - expected_a).abs() < 1e-10, "{a} vs {expected_a}");
        // no repair: R(t) = e^{-(λ1+λ2)t}
        let t = 7.0;
        let r = report.reliability(t);
        assert!((r - (-0.03f64 * t).exp()).abs() < 1e-9);
        // unavailability + availability = 1
        assert!((report.steady_state_unavailability() + a - 1.0).abs() < 1e-12);
        // point availability starts at 1 and decreases toward steady state
        assert!((report.point_availability(0.0) - 1.0).abs() < 1e-12);
        assert!(report.point_unavailability(1000.0) > 0.0);
        // MTTF of a series system: 1/(λ1+λ2) (both dedicated repairs can't
        // prevent the first failure)
        assert!((report.mttf() - 1.0 / 0.03).abs() < 1e-6);
    }

    #[test]
    fn missing_system_down_rejected() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.01), Dist::exp(1.0)));
        assert!(Analysis::new(&def).is_err());
    }

    #[test]
    fn first_passage_differs_from_no_repair_reliability() {
        // redundant pair with repair: first-passage unreliability is much
        // smaller than the no-repair unreliability
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.1), Dist::exp(5.0)));
        def.add_component(BcDef::new("b", Dist::exp(0.1), Dist::exp(5.0)));
        def.add_repair_unit(RuDef::new("ra", ["a"], RepairStrategy::Dedicated));
        def.add_repair_unit(RuDef::new("rb", ["b"], RepairStrategy::Dedicated));
        def.set_system_down(Expr::and([Expr::down("a"), Expr::down("b")]));
        let report = Analysis::new(&def).unwrap().run().unwrap();
        let t = 10.0;
        let with_repair = report.unreliability_with_repair(t);
        let without = report.unreliability(t);
        assert!(with_repair < without);
        assert!(with_repair > 0.0);
    }
}
