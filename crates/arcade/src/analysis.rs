//! High-level analysis API — a compatibility wrapper over the query
//! engine.
//!
//! [`Analysis`] bundles the whole Arcade pipeline the way the first
//! version of this crate did: elaborate the model, run compositional
//! aggregation for the *availability* configuration (repairs active) and
//! for the *reliability* configuration (no repairs, following the paper's
//! definition for Table 1), and expose the measures. Since the
//! introduction of [`crate::query`], both `Analysis` and
//! [`AnalysisReport`] are thin wrappers over a [`Session`]: `run()`
//! forces both configurations eagerly (preserving the old semantics),
//! and every measure method delegates to the session, which memoizes the
//! steady-state vector, down-state lists and absorbing chains across
//! calls. New code that wants lazy configuration building or batched
//! curves should use [`Session`] directly.

use ioimc::Stats;

use crate::ast::SystemDef;
use crate::engine::{Aggregation, EngineOptions};
use crate::error::ArcadeError;
use crate::query::{Measure, Session};

/// A configured analysis of one system definition.
#[derive(Debug, Clone)]
pub struct Analysis {
    def: SystemDef,
    opts: EngineOptions,
}

impl Analysis {
    /// Creates an analysis with default engine options. Validates the
    /// definition eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::Invalid`] for inconsistent definitions.
    pub fn new(def: &SystemDef) -> Result<Self, ArcadeError> {
        crate::model::validate(def)?;
        if def.system_down.is_none() {
            return Err(ArcadeError::invalid("SYSTEM DOWN criterion missing"));
        }
        Ok(Self {
            def: def.clone(),
            opts: EngineOptions::new(),
        })
    }

    /// Overrides the engine options.
    pub fn with_options(mut self, opts: EngineOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Runs aggregation for both the availability model (repairs active)
    /// and the reliability model (repairs stripped, §5.1.2), eagerly —
    /// the two configurations are independent and are aggregated on
    /// concurrent workers when more than one thread is available.
    ///
    /// # Errors
    ///
    /// Propagates composition/determinism/analysis errors.
    pub fn run(&self) -> Result<AnalysisReport, ArcadeError> {
        let session = Session::new(&self.def)?.with_options(self.opts.clone());
        session.prefetch_all()?;
        Ok(AnalysisReport { session })
    }

    /// Runs aggregation for the availability model only (faster when
    /// reliability is not needed).
    ///
    /// # Errors
    ///
    /// Propagates composition/determinism/analysis errors.
    pub fn run_availability_only(&self) -> Result<Aggregation, ArcadeError> {
        let session = Session::new(&self.def)?.with_options(self.opts.clone());
        Ok((*session.availability_model()?).clone())
    }
}

/// The measures of a completed analysis.
///
/// Everything answers through the inner [`Session`]: the aggregations
/// live there once, and steady-state vectors, down-state lists and
/// absorbing-transformed chains are computed once and shared across the
/// measure methods.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    session: Session,
}

impl AnalysisReport {
    fn get(&self, m: Measure) -> f64 {
        self.session
            .value(&m)
            .expect("both configurations were built by run()")
    }

    /// The aggregation of the availability configuration (repairs
    /// active).
    pub fn availability(&self) -> std::sync::Arc<Aggregation> {
        self.session.availability_model().expect("built by run()")
    }

    /// The aggregation of the no-repair configuration (§5.1.2).
    pub fn reliability_aggregation(&self) -> std::sync::Arc<Aggregation> {
        self.session.reliability_model().expect("built by run()")
    }

    /// Evaluates a whole batch of measures in one pass (one uniformization
    /// sweep per measure kind) — see [`Session::evaluate`].
    pub fn evaluate(&self, measures: &[Measure]) -> Vec<f64> {
        self.session
            .evaluate(measures)
            .expect("both configurations were built by run()")
    }

    /// Long-run availability `A`.
    pub fn steady_state_availability(&self) -> f64 {
        self.get(Measure::SteadyStateAvailability)
    }

    /// Long-run unavailability `1 - A` (computed directly for precision).
    pub fn steady_state_unavailability(&self) -> f64 {
        self.get(Measure::SteadyStateUnavailability)
    }

    /// Point availability `A(t)`.
    pub fn point_availability(&self, t: f64) -> f64 {
        self.get(Measure::PointAvailability(t))
    }

    /// Point unavailability `1 - A(t)`.
    pub fn point_unavailability(&self, t: f64) -> f64 {
        self.get(Measure::PointUnavailability(t))
    }

    /// Point unavailability over a whole time grid in one batched sweep.
    pub fn point_unavailability_many(&self, ts: &[f64]) -> Vec<f64> {
        self.evaluate(
            &ts.iter()
                .map(|&t| Measure::PointUnavailability(t))
                .collect::<Vec<_>>(),
        )
    }

    /// Reliability `R(t)` with **no repairs at all** — the definition used
    /// for the DDS case study (§5.1.2, following \[19\]).
    pub fn reliability(&self, t: f64) -> f64 {
        self.get(Measure::Reliability(t))
    }

    /// Reliability over a whole time grid in one batched sweep.
    pub fn reliability_many(&self, ts: &[f64]) -> Vec<f64> {
        self.evaluate(
            &ts.iter()
                .map(|&t| Measure::Reliability(t))
                .collect::<Vec<_>>(),
        )
    }

    /// Unreliability `1 - R(t)` of the no-repair model.
    pub fn unreliability(&self, t: f64) -> f64 {
        self.get(Measure::Unreliability(t))
    }

    /// First-passage unreliability **with component repairs active** —
    /// the definition used for the RCS case study (§5.2.2): components
    /// keep being repaired, but the first system-level failure counts.
    pub fn unreliability_with_repair(&self, t: f64) -> f64 {
        self.get(Measure::UnreliabilityWithRepair(t))
    }

    /// First-passage unreliability (repairs active) over a whole time
    /// grid in one batched sweep.
    pub fn unreliability_with_repair_many(&self, ts: &[f64]) -> Vec<f64> {
        self.evaluate(
            &ts.iter()
                .map(|&t| Measure::UnreliabilityWithRepair(t))
                .collect::<Vec<_>>(),
        )
    }

    /// Mean time to the first system failure (repairs active).
    pub fn mttf(&self) -> f64 {
        self.get(Measure::Mttf)
    }

    /// Interval availability: expected fraction of `[0, t]` the system is
    /// up (a CSL-layer measure, §6 future work).
    pub fn interval_availability(&self, t: f64) -> f64 {
        self.get(Measure::IntervalAvailability(t))
    }

    /// Evaluates `P[Φ U≤t Ψ]` on the availability CTMC (CSL layer, §6
    /// future work). Atomic propositions are label formulas;
    /// [`ctmc::csl::StateFormula::down`] is the system-down bit.
    pub fn until_bounded(
        &self,
        phi: &ctmc::csl::StateFormula,
        psi: &ctmc::csl::StateFormula,
        t: f64,
    ) -> f64 {
        self.get(Measure::BoundedUntil {
            phi: phi.clone(),
            psi: psi.clone(),
            t,
        })
    }

    /// Size of the final availability CTMC.
    pub fn ctmc_stats(&self) -> Stats {
        self.availability().ctmc_stats
    }

    /// Largest intermediate I/O-IMC of the availability aggregation.
    pub fn largest_intermediate(&self) -> Stats {
        self.availability().largest_intermediate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BcDef, RepairStrategy, RuDef};
    use crate::dist::Dist;
    use crate::expr::Expr;

    fn series_pair() -> SystemDef {
        let mut def = SystemDef::new("series");
        def.add_component(BcDef::new("a", Dist::exp(0.01), Dist::exp(1.0)));
        def.add_component(BcDef::new("b", Dist::exp(0.02), Dist::exp(2.0)));
        def.add_repair_unit(RuDef::new("ra", ["a"], RepairStrategy::Dedicated));
        def.add_repair_unit(RuDef::new("rb", ["b"], RepairStrategy::Dedicated));
        def.set_system_down(Expr::or([Expr::down("a"), Expr::down("b")]));
        def
    }

    #[test]
    fn series_system_closed_forms() {
        let report = Analysis::new(&series_pair()).unwrap().run().unwrap();
        // independent dedicated repair: A = Π µ/(λ+µ)
        let expected_a = (1.0 / 1.01) * (2.0 / 2.02);
        let a = report.steady_state_availability();
        assert!((a - expected_a).abs() < 1e-10, "{a} vs {expected_a}");
        // no repair: R(t) = e^{-(λ1+λ2)t}
        let t = 7.0;
        let r = report.reliability(t);
        assert!((r - (-0.03f64 * t).exp()).abs() < 1e-9);
        // unavailability + availability = 1
        assert!((report.steady_state_unavailability() + a - 1.0).abs() < 1e-12);
        // point availability starts at 1 and decreases toward steady state
        assert!((report.point_availability(0.0) - 1.0).abs() < 1e-12);
        assert!(report.point_unavailability(1000.0) > 0.0);
        // MTTF of a series system: 1/(λ1+λ2) (both dedicated repairs can't
        // prevent the first failure)
        assert!((report.mttf() - 1.0 / 0.03).abs() < 1e-6);
    }

    #[test]
    fn missing_system_down_rejected() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.01), Dist::exp(1.0)));
        assert!(Analysis::new(&def).is_err());
    }

    #[test]
    fn first_passage_differs_from_no_repair_reliability() {
        // redundant pair with repair: first-passage unreliability is much
        // smaller than the no-repair unreliability
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.1), Dist::exp(5.0)));
        def.add_component(BcDef::new("b", Dist::exp(0.1), Dist::exp(5.0)));
        def.add_repair_unit(RuDef::new("ra", ["a"], RepairStrategy::Dedicated));
        def.add_repair_unit(RuDef::new("rb", ["b"], RepairStrategy::Dedicated));
        def.set_system_down(Expr::and([Expr::down("a"), Expr::down("b")]));
        let report = Analysis::new(&def).unwrap().run().unwrap();
        let t = 10.0;
        let with_repair = report.unreliability_with_repair(t);
        let without = report.unreliability(t);
        assert!(with_repair < without);
        assert!(with_repair > 0.0);
    }

    #[test]
    fn batched_report_methods_match_scalars() {
        let report = Analysis::new(&series_pair()).unwrap().run().unwrap();
        let ts = [1.0, 5.0, 25.0];
        let rel = report.reliability_many(&ts);
        let unav = report.point_unavailability_many(&ts);
        let fp = report.unreliability_with_repair_many(&ts);
        for (i, &t) in ts.iter().enumerate() {
            assert!((rel[i] - report.reliability(t)).abs() < 1e-12);
            assert!((unav[i] - report.point_unavailability(t)).abs() < 1e-12);
            assert!((fp[i] - report.unreliability_with_repair(t)).abs() < 1e-12);
        }
    }
}
