//! **Arcade** — architectural dependability evaluation.
//!
//! A from-scratch reproduction of *"Architectural dependability evaluation
//! with Arcade"* (Boudali, Crouzen, Haverkort, Kuntz, Stoelinga — DSN 2008).
//!
//! Arcade models a system as interacting building blocks:
//!
//! * **Basic components** ([`ast::BcDef`]) with operational-mode groups
//!   (active/inactive, on/off, accessible/inaccessible, normal/degraded),
//!   phase-type failure distributions, multiple failure modes and
//!   destructive functional dependencies,
//! * **Repair units** ([`ast::RuDef`]) with dedicated, FCFS, and
//!   priority-based (preemptive/non-preemptive) strategies,
//! * **Spare management units** ([`ast::SmuDef`]) with optional exponential
//!   failover times,
//! * a **system failure criterion** ([`expr::Expr`]) — a fault-tree style
//!   AND/OR/K-of-N expression over component failure modes.
//!
//! Every block has a formal semantics as an Input/Output Interactive Markov
//! Chain (crate [`ioimc`]); the [`engine`] composes the blocks pairwise,
//! hides signals that no remaining block listens to, and minimizes modulo
//! branching bisimulation (crate [`bisim`]) after every step — the
//! *compositional aggregation* that keeps the state space small. The final
//! closed model becomes a labelled CTMC (crate [`ctmc`]) from which
//! availability, reliability and MTTF are computed.
//!
//! # Quick start
//!
//! Two redundant processors sharing an FCFS repair unit, queried through
//! the lazy [`query::Session`]: nothing is aggregated until the first
//! measure needs it, and a whole batch of measures — including every
//! point of a reliability curve — is answered in one pass:
//!
//! ```
//! use arcade::prelude::*;
//!
//! let mut sys = SystemDef::new("redundant-pair");
//! for name in ["p1", "p2"] {
//!     sys.add_component(BcDef::new(name, Dist::exp(0.001), Dist::exp(0.5)));
//! }
//! sys.add_repair_unit(RuDef::new("rep", ["p1", "p2"], RepairStrategy::Fcfs));
//! sys.set_system_down(Expr::and([Expr::down("p1"), Expr::down("p2")]));
//!
//! let session = Session::new(&sys)?; // validates; builds nothing yet
//! let values = session.evaluate(&[
//!     Measure::SteadyStateAvailability, // availability configuration
//!     Measure::Reliability(1000.0),     // no-repair configuration
//!     Measure::Reliability(5000.0),     // same sweep as the line above
//!     Measure::Mttf,
//! ])?;
//! assert!(values[0] > 0.99999 && values[0] < 1.0);
//! assert!(values[2] < values[1]);
//! # Ok::<(), arcade::ArcadeError>(())
//! ```
//!
//! The eager [`Analysis`] API remains as a thin compatibility wrapper
//! over the session. The same model can be written in the paper's textual
//! syntax and parsed with [`parser::parse_system`].
//!
//! # Serving
//!
//! For repeated queries, pay the aggregation once and keep the session
//! **resident**: the [`serve`] module implements `arcaded`, a
//! dependency-free TCP daemon speaking newline-delimited JSON that owns a
//! registry of named models and a concurrent cache of warm sessions.
//! Identical cold requests are deduplicated in flight (N clients → one
//! aggregation), and a `stats` command surfaces cache/dedup counters plus
//! per-phase latency quantiles. Run it with
//! `cargo run --release -p arcade --bin arcaded`, or embed the server
//! in-process via [`serve::serve`]. See [`serve`] for the wire protocol
//! and [`serve::protocol`] for the measure-spec reference.
//!
//! # Sweeping
//!
//! Design-space exploration evaluates the *same* measures at thousands of
//! rate configurations. Declare named rate parameters on the definition
//! ([`ast::SystemDef::add_param`] binds a name to a base rate by exact
//! f64 bit equality) and hand [`query::Session::sweep`] a
//! [`query::ParamGrid`] (cartesian axes or an explicit point list):
//!
//! * **Quotient-reuse contract.** Changing a *declared Markovian rate*
//!   never changes the interactive structure, so the expensive
//!   aggregation/bisimulation quotient is computed **once per
//!   configuration** at the base rates and each grid point only clones
//!   the reduced CTMC and rewrites its rate entries in place (same CSR
//!   layout — no re-aggregation, no re-refinement). Anything that *does*
//!   change structure — components, repair strategies, the failure
//!   criterion, or a rate the model was not parameterized over — needs a
//!   new [`query::Session`].
//! * **Determinism.** Per-point solves fan out over the worker pool and
//!   every value is bitwise identical to what a fresh session's
//!   [`query::Session::evaluate_at`] returns at that point, at any
//!   thread count.
//! * **Sensitivities.** On cartesian grids, [`query::SweepResult`]
//!   carries finite-difference sensitivities ∂measure/∂parameter
//!   (central differences interior, one-sided at the edges).
//!
//! The same engine is exposed as the `arcade sweep --json` CLI
//! subcommand and as the `sweep` wire command of `arcaded`.
//!
//! # Fuzzing
//!
//! The repository tests itself differentially: the [`fuzz`] module holds
//! a seeded random [`ast::SystemDef`] generator ([`fuzz::gen_system`],
//! one model space shared by the property-test suites and the fuzzer),
//! four oracle pairs that must agree on every model
//! ([`fuzz::OraclePair`]: monolithic vs modular decomposition, adaptive
//! vs exact transient, dense vs iterative steady solvers, exact vs
//! seeded Monte-Carlo), a delta-debugging shrinker
//! ([`fuzz::shrink_system`]) that reduces any disagreement to a minimal
//! model, and schema-versioned [`fuzz::Evidence`] artifacts committed
//! under `artifacts/fuzz/` so every failure replays offline from its
//! seed. The `fuzz_diff` bench binary drives the loop in CI
//! (`fuzz_diff --smoke`); its chaos twin `serve_chaos --smoke --seed N`
//! walks randomized [`chaos`] failpoint/fault-class combinations against
//! a live server and asserts the containment contract every iteration.
//! Everything is deterministic for a fixed seed, so committed seeds
//! cannot flake.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod analytic;
pub mod ast;
pub mod build;
pub mod cases;
pub mod chaos;
pub mod dist;
pub mod engine;
pub mod error;
pub mod expr;
pub mod fuzz;
pub mod model;
pub mod modular;
pub mod order;
pub mod parser;
pub mod printer;
pub mod query;
pub mod serve;
pub mod sim;
pub mod sync;

pub use analysis::Analysis;
pub use error::ArcadeError;
pub use query::{Measure, ParamGrid, Session, SweepResult};

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::analysis::Analysis;
    pub use crate::ast::{BcDef, OmGroup, RateParam, RepairStrategy, RuDef, SmuDef, SystemDef};
    pub use crate::dist::Dist;
    pub use crate::error::ArcadeError;
    pub use crate::expr::Expr;
    pub use crate::query::{Measure, ParamGrid, Session, SweepResult};
}
