//! Differential oracle pairs.
//!
//! Each [`OraclePair`] names two independent ways of computing the same
//! dependability measures; [`check_pair`] runs both on a model and
//! reports every disagreement beyond tolerance. The four pairs cover
//! the main redundant code paths of the engine:
//!
//! * [`OraclePair::Modular`] — the monolithic [`Session`] pipeline vs
//!   the dependency-closure module decomposition of
//!   [`crate::modular::modular_analysis`] (both exact; product
//!   combination of per-module measures).
//! * [`OraclePair::AdaptiveTransient`] — windowed steady-state-aware
//!   uniformization vs the exact global-Λ scheme.
//! * [`OraclePair::SteadySolver`] — dense elimination vs the iterative
//!   (Gauss–Seidel/Krylov) steady-state and MTTF solvers.
//! * [`OraclePair::MonteCarlo`] — the exact no-repair unreliability vs
//!   a seeded discrete-event simulation, compared against a widened
//!   confidence interval. Deterministic for a fixed seed, so a committed
//!   seed can never flake in CI.
//!
//! Tolerances are relative (`|a-b| ≤ tol · (1 + max(|a|,|b|))`) except
//! for Monte Carlo, where the tolerance is derived from the estimate's
//! own standard error.

use crate::ast::SystemDef;
use crate::engine::EngineOptions;
use crate::error::ArcadeError;
use crate::modular::modular_analysis;
use crate::query::{Measure, Session};
use crate::sim;

/// One redundant pair of computation paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OraclePair {
    /// Monolithic session vs modular decomposition.
    Modular,
    /// Adaptive (windowed) vs exact uniformization.
    AdaptiveTransient,
    /// Dense vs iterative steady/MTTF solvers.
    SteadySolver,
    /// Exact engine vs Monte-Carlo simulation.
    MonteCarlo,
}

impl OraclePair {
    /// All four pairs, in the order `fuzz_diff` runs them.
    pub const ALL: [Self; 4] = [
        Self::Modular,
        Self::AdaptiveTransient,
        Self::SteadySolver,
        Self::MonteCarlo,
    ];

    /// Stable machine-readable name (used in artifacts and summaries).
    pub fn name(self) -> &'static str {
        match self {
            Self::Modular => "modular",
            Self::AdaptiveTransient => "adaptive-transient",
            Self::SteadySolver => "steady-solver",
            Self::MonteCarlo => "monte-carlo",
        }
    }
}

/// One measure on which a pair's two paths disagreed beyond tolerance.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// Which oracle pair disagreed.
    pub pair: OraclePair,
    /// Human-readable measure description (includes the time point).
    pub measure: String,
    /// The primary path's value.
    pub primary: f64,
    /// The oracle path's value.
    pub oracle: f64,
    /// The absolute tolerance that was exceeded.
    pub tolerance: f64,
}

/// Engine options shared by every oracle run: a state budget keeps a
/// pathological draw from stalling the fuzz loop (the caller treats the
/// budget error as a skip), and one thread keeps runs bitwise
/// reproducible regardless of the host.
fn base_opts() -> EngineOptions {
    let mut opts = EngineOptions::new().with_max_states(100_000);
    opts.threads = 1;
    opts.solver.transient.threads = 1;
    opts
}

/// Relative agreement with protection against non-finite values (two
/// infinite MTTFs of the same sign agree).
fn agree(a: f64, b: f64, tol: f64) -> Option<f64> {
    if !a.is_finite() || !b.is_finite() {
        return (a == b || (a.is_nan() && b.is_nan())).then_some(0.0);
    }
    let abs_tol = tol * (1.0 + a.abs().max(b.abs()));
    ((a - b).abs() <= abs_tol).then_some(abs_tol)
}

fn push_if_disagrees(
    out: &mut Vec<Disagreement>,
    pair: OraclePair,
    measure: String,
    primary: f64,
    oracle: f64,
    tol: f64,
) {
    if agree(primary, oracle, tol).is_none() {
        let abs_tol = tol * (1.0 + primary.abs().max(oracle.abs()));
        out.push(Disagreement {
            pair,
            measure,
            primary,
            oracle,
            tolerance: abs_tol,
        });
    }
}

/// Picks a time horizon at which the model's unreliability is
/// informative (away from 0 and 1), scanning a log grid capped so that
/// `rate_max · t` stays bounded — the stiff generator profile produces
/// rates up to ~1e5, and an uncapped horizon would push exact
/// uniformization into hundreds of millions of steps. Deterministic in
/// the model alone.
fn pick_horizon(def: &SystemDef, session: &Session) -> Result<f64, ArcadeError> {
    let cap = 2e4 / max_rate(def);
    let grid: Vec<f64> = [1.0, 10.0, 100.0, 1000.0]
        .into_iter()
        .filter(|t| *t <= cap)
        .collect();
    let grid = if grid.is_empty() { vec![cap] } else { grid };
    let mut best = grid[0];
    let mut best_score = f64::NEG_INFINITY;
    for &t in &grid {
        let u = session.value(&Measure::Unreliability(t))?;
        // Score peaks when u is near 0.5 and collapses at the extremes.
        let score = -(u - 0.5).abs();
        if score > best_score {
            best_score = score;
            best = t;
        }
    }
    Ok(best)
}

/// The largest phase rate anywhere in the definition (TTF, TTR, FDEP
/// repair, SMU failover) — a proxy for the uniformization constant Λ.
fn max_rate(def: &SystemDef) -> f64 {
    let comp_rates = def.components.iter().flat_map(|bc| {
        bc.ttf
            .iter()
            .chain(bc.ttr.iter())
            .chain(bc.ttr_df.iter())
            .flat_map(|d| d.phase_rates())
    });
    let failover_rates = def
        .smus
        .iter()
        .filter_map(|smu| smu.failover.as_ref())
        .flat_map(|d| d.phase_rates());
    comp_rates.chain(failover_rates).fold(1e-12, f64::max)
}

/// Raises every rate below `max_rate / max_ratio` up to that floor.
///
/// The steady-solver pair compares two linear-solver *implementations*;
/// beyond a stiffness of ~1e4 the iterative methods legitimately lose
/// digits on the ill-conditioned steady/MTTF systems, so a disagreement
/// there would measure conditioning, not correctness. Clamping is a
/// deterministic function of the draw, so the pair still exercises
/// every generated structure.
fn clamp_stiffness(def: &SystemDef, max_ratio: f64) -> SystemDef {
    let floor = max_rate(def) / max_ratio;
    let mut out = def.clone();
    for bc in &mut out.components {
        for d in bc
            .ttf
            .iter_mut()
            .chain(bc.ttr.iter_mut())
            .chain(bc.ttr_df.iter_mut())
        {
            *d = d.map_rates(|r| r.max(floor));
        }
    }
    for smu in &mut out.smus {
        if let Some(f) = &mut smu.failover {
            *f = f.map_rates(|r| r.max(floor));
        }
    }
    out
}

/// The concrete model an oracle run analyzes: parametric definitions are
/// pinned at their declared base point.
fn concretize(def: &SystemDef) -> SystemDef {
    if def.is_parametric() {
        let bases: Vec<f64> = def.params.iter().map(|p| p.base).collect();
        def.at_point(&bases)
    } else {
        def.clone()
    }
}

/// Runs one oracle pair on `def` and returns every disagreement.
///
/// `seed` only affects [`OraclePair::MonteCarlo`] (the simulation
/// stream); the exact pairs ignore it. Parametric definitions are
/// evaluated at their base point.
///
/// # Errors
///
/// Propagates validation/build errors (including state-budget refusals)
/// — callers treat these as "model unsuitable", not as disagreements.
pub fn check_pair(
    def: &SystemDef,
    pair: OraclePair,
    seed: u64,
) -> Result<Vec<Disagreement>, ArcadeError> {
    let def = concretize(def);
    let mut out = Vec::new();
    match pair {
        OraclePair::Modular => {
            let session = Session::new(&def)?.with_options(base_opts());
            let t = pick_horizon(&def, &session)?;
            let values = session.evaluate(&[
                Measure::SteadyStateUnavailability,
                Measure::PointUnavailability(t),
                Measure::Unreliability(t),
                Measure::UnreliabilityWithRepair(t),
            ])?;
            let m = modular_analysis(&def, &base_opts())?;
            let oracle = [
                m.steady_state_unavailability(),
                m.point_unavailability(t),
                1.0 - m.reliability(t),
                m.unreliability_with_repair(t),
            ];
            let names = [
                "steady_state_unavailability".to_owned(),
                format!("point_unavailability({t})"),
                format!("unreliability({t})"),
                format!("unreliability_with_repair({t})"),
            ];
            for ((name, &a), b) in names.iter().zip(&values).zip(oracle) {
                push_if_disagrees(&mut out, pair, name.clone(), a, b, 1e-7);
            }
        }
        OraclePair::AdaptiveTransient => {
            let mut adaptive = base_opts();
            adaptive.solver.transient.adaptive = true;
            let mut exact = base_opts();
            exact.solver.transient.adaptive = false;
            let s1 = Session::new(&def)?.with_options(adaptive);
            let t = pick_horizon(&def, &s1)?;
            let measures = [
                Measure::PointUnavailability(t),
                Measure::Unreliability(t),
                Measure::UnreliabilityWithRepair(t),
            ];
            let a = s1.evaluate(&measures)?;
            let b = Session::new(&def)?
                .with_options(exact)
                .evaluate(&measures)?;
            let names = [
                format!("point_unavailability({t})"),
                format!("unreliability({t})"),
                format!("unreliability_with_repair({t})"),
            ];
            for ((name, &x), &y) in names.iter().zip(&a).zip(&b) {
                push_if_disagrees(&mut out, pair, name.clone(), x, y, 1e-7);
            }
        }
        OraclePair::SteadySolver => {
            let def = clamp_stiffness(&def, 1e4);
            let mut dense = base_opts();
            dense.solver.dense_limit = usize::MAX;
            let mut iterative = base_opts();
            iterative.solver.dense_limit = 0;
            iterative.solver.tol = 1e-13;
            iterative.solver.max_sweeps = 50_000;
            let measures = [Measure::SteadyStateUnavailability, Measure::Mttf];
            let a = Session::new(&def)?
                .with_options(dense)
                .evaluate(&measures)?;
            let b = Session::new(&def)?
                .with_options(iterative)
                .evaluate(&measures)?;
            push_if_disagrees(
                &mut out,
                pair,
                "steady_state_unavailability".to_owned(),
                a[0],
                b[0],
                1e-6,
            );
            push_if_disagrees(&mut out, pair, "mttf".to_owned(), a[1], b[1], 1e-6);
        }
        OraclePair::MonteCarlo => {
            let session = Session::new(&def)?.with_options(base_opts());
            let t = pick_horizon(&def, &session)?;
            let exact = session.value(&Measure::Unreliability(t))?;
            let est = sim::simulate_unreliability(&def, t, 1200, seed, false)?;
            // Four standard errors plus an absolute cushion: wide enough
            // that a correct engine essentially never trips it, narrow
            // enough that a mis-rated transition (the bug class this pair
            // exists for) still does. Deterministic for a fixed seed.
            let sigma = est.half_width / 1.96;
            let tol = 4.0 * sigma + 0.015;
            if (exact - est.mean).abs() > tol {
                out.push(Disagreement {
                    pair,
                    measure: format!("unreliability({t}) [mc reps={}]", est.reps),
                    primary: exact,
                    oracle: est.mean,
                    tolerance: tol,
                });
            }
        }
    }
    Ok(out)
}

/// Runs all four oracle pairs and concatenates their disagreements.
///
/// # Errors
///
/// Propagates the first build/validation error (see [`check_pair`]).
pub fn check_all(def: &SystemDef, seed: u64) -> Result<Vec<Disagreement>, ArcadeError> {
    let mut out = Vec::new();
    for pair in OraclePair::ALL {
        out.extend(check_pair(def, pair, seed)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BcDef, RepairStrategy, RuDef};
    use crate::dist::Dist;
    use crate::expr::Expr;

    fn two_comp() -> SystemDef {
        let mut def = SystemDef::new("oracle-fixture");
        def.add_component(BcDef::new("a", Dist::exp(0.02), Dist::exp(0.5)));
        def.add_component(BcDef::new("b", Dist::erlang(2, 0.01), Dist::exp(1.0)));
        def.add_repair_unit(RuDef::new("ra", ["a"], RepairStrategy::Dedicated));
        def.add_repair_unit(RuDef::new("rb", ["b"], RepairStrategy::Dedicated));
        def.set_system_down(Expr::and([Expr::down("a"), Expr::down("b")]));
        def
    }

    #[test]
    fn a_healthy_model_passes_all_four_pairs() {
        let def = two_comp();
        let ds = check_all(&def, 11).expect("oracles run");
        assert!(ds.is_empty(), "unexpected disagreements: {ds:?}");
    }

    #[test]
    fn parametric_models_are_checked_at_their_base_point() {
        let mut def = two_comp();
        def.add_param("lambda", 0.02);
        let ds = check_all(&def, 5).expect("oracles run");
        assert!(ds.is_empty(), "unexpected disagreements: {ds:?}");
    }

    #[test]
    fn pair_names_are_stable() {
        let names: Vec<&str> = OraclePair::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "modular",
                "adaptive-transient",
                "steady-solver",
                "monte-carlo"
            ]
        );
    }
}
