//! Delta-debugging reduction of failing [`SystemDef`]s.
//!
//! [`shrink_system`] takes a model and a predicate that holds on it
//! (typically "this oracle pair disagrees on this model") and greedily
//! applies the smallest semantic edits that keep the predicate true:
//! dropping whole components (with reference fix-ups everywhere a name
//! can appear), stripping features (FDEPs, mode groups, failure modes,
//! SMUs, parameters), flattening repair strategies, simplifying the
//! SYSTEM DOWN expression, and collapsing phase-type distributions to
//! exponentials. Candidates are generated in a fixed order and the
//! first accepted edit restarts the scan, so for a deterministic
//! predicate the minimal model is a pure function of the input — the
//! property the planted-bug regression test pins down.
//!
//! Candidates are always structurally valid models; a predicate built
//! on an analysis that can fail should simply return `false` on error,
//! which rejects the candidate and keeps shrinking sound.

use crate::ast::{BcDef, OmGroup, RepairStrategy, SystemDef};
use crate::dist::Dist;
use crate::expr::{Expr, ModeRef};

/// The result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The reduced model; the predicate still holds on it, and no single
    /// candidate edit keeps the predicate true.
    pub def: SystemDef,
    /// Number of accepted edits.
    pub steps: usize,
    /// Number of predicate evaluations.
    pub checks: usize,
}

/// Greedily minimizes `def` under `failing` (which must hold on `def`).
///
/// Deterministic: same input and same predicate behaviour produce the
/// same minimal model, step count, and check count.
pub fn shrink_system(
    def: &SystemDef,
    mut failing: impl FnMut(&SystemDef) -> bool,
) -> ShrinkOutcome {
    let mut cur = def.clone();
    let mut steps = 0usize;
    let mut checks = 0usize;
    loop {
        let mut advanced = false;
        for cand in candidates(&cur) {
            checks += 1;
            if failing(&cand) {
                cur = cand;
                steps += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    ShrinkOutcome {
        def: cur,
        steps,
        checks,
    }
}

/// All single-edit reductions of `def`, most aggressive first.
fn candidates(def: &SystemDef) -> Vec<SystemDef> {
    let mut out: Vec<SystemDef> = Vec::new();

    // 1. Drop each component outright (the biggest single win).
    if def.components.len() > 1 {
        for i in 0..def.components.len() {
            if let Some(cand) = drop_component(def, i) {
                out.push(cand);
            }
        }
    }

    // 2. Strip per-component features.
    for i in 0..def.components.len() {
        let bc = &def.components[i];
        if bc.df.is_some() {
            let mut d = def.clone();
            d.components[i].df = None;
            d.components[i].ttr_df = None;
            let name = bc.name.clone();
            // `x.down.df` literals would dangle; widen them to `x.down`.
            map_exprs(&mut d, |e| demote_mode(e, &name, MatchMode::Df));
            out.push(d);
        }
        for j in 0..bc.om_groups.len() {
            let mut d = def.clone();
            d.components[i] = drop_om_group(bc, j);
            if matches!(bc.om_groups[j], OmGroup::ActiveInactive) {
                drop_spare_refs(&mut d, &bc.name);
            }
            out.push(d);
        }
        if bc.failure_mode_probs.len() > 1 {
            let mut d = def.clone();
            d.components[i].failure_mode_probs = vec![1.0];
            d.components[i].ttr.truncate(1);
            let name = bc.name.clone();
            map_exprs(&mut d, |e| demote_mode(e, &name, MatchMode::HighModes));
            out.push(d);
        }
    }

    // 3. SMU reductions: drop the failover delay, then whole units.
    for k in 0..def.smus.len() {
        if def.smus[k].failover.is_some() {
            let mut d = def.clone();
            d.smus[k].failover = None;
            out.push(d);
        }
        let mut d = def.clone();
        d.smus.remove(k);
        out.push(d);
    }

    // 4. Parameter declarations.
    for k in 0..def.params.len() {
        let mut d = def.clone();
        d.params.remove(k);
        out.push(d);
    }

    // 5. Repair-unit flattening: priorities → FCFS, shared → dedicated.
    for k in 0..def.repair_units.len() {
        let ru = &def.repair_units[k];
        if matches!(
            ru.strategy,
            RepairStrategy::PreemptivePriority | RepairStrategy::NonPreemptivePriority
        ) {
            let mut d = def.clone();
            d.repair_units[k].strategy = RepairStrategy::Fcfs;
            d.repair_units[k].priorities.clear();
            out.push(d);
        }
        if ru.components.len() > 1 {
            let mut d = def.clone();
            let ru = d.repair_units.remove(k);
            for (m, comp) in ru.components.iter().enumerate() {
                d.repair_units.insert(
                    k + m,
                    crate::ast::RuDef::new(
                        format!("{}.{m}", ru.name),
                        [comp.clone()],
                        RepairStrategy::Dedicated,
                    ),
                );
            }
            out.push(d);
        }
    }

    // 6. SYSTEM DOWN simplifications.
    if let Some(root) = &def.system_down {
        for e in expr_shrinks(root) {
            let mut d = def.clone();
            d.system_down = Some(e);
            out.push(d);
        }
    }

    // 7. Distribution collapses: phase types → exponential with the first
    // phase rate, then rates → 1 (the gentlest edits, tried last).
    for_each_dist_slot(def, &mut out, |d| match d {
        Dist::Erlang(_, r) => Some(Dist::Exp(*r)),
        Dist::Hypo(rs) => Some(Dist::Exp(rs[0])),
        _ => None,
    });
    for_each_dist_slot(def, &mut out, |d| match d {
        Dist::Exp(r) if *r != 1.0 => Some(Dist::Exp(1.0)),
        _ => None,
    });

    out
}

/// Pushes one candidate per distribution slot that `edit` rewrites.
fn for_each_dist_slot(
    def: &SystemDef,
    out: &mut Vec<SystemDef>,
    edit: impl Fn(&Dist) -> Option<Dist>,
) {
    for i in 0..def.components.len() {
        let bc = &def.components[i];
        for j in 0..bc.ttf.len() {
            if let Some(new) = edit(&bc.ttf[j]) {
                let mut d = def.clone();
                // Keep the shared-phase-structure invariant: rewrite every
                // TTF slot of the component together.
                for slot in &mut d.components[i].ttf {
                    if !matches!(slot, Dist::Never) {
                        *slot = edit(slot).unwrap_or(new.clone());
                    }
                }
                out.push(d);
                break;
            }
        }
        for j in 0..bc.ttr.len() {
            if let Some(new) = edit(&bc.ttr[j]) {
                let mut d = def.clone();
                d.components[i].ttr[j] = new;
                out.push(d);
            }
        }
        if let Some(ttr_df) = &bc.ttr_df {
            if let Some(new) = edit(ttr_df) {
                let mut d = def.clone();
                d.components[i].ttr_df = Some(new);
                out.push(d);
            }
        }
    }
    for k in 0..def.smus.len() {
        if let Some(f) = &def.smus[k].failover {
            if let Some(new) = edit(f) {
                let mut d = def.clone();
                d.smus[k].failover = Some(new);
                out.push(d);
            }
        }
    }
}

/// Removes component `i`, fixing every structure that can reference it.
/// Returns `None` when the removal would leave no SYSTEM DOWN criterion.
fn drop_component(def: &SystemDef, i: usize) -> Option<SystemDef> {
    let name = def.components[i].name.clone();
    let down = expr_drop_comp(def.system_down.as_ref()?, &name)?;

    let mut d = def.clone();
    d.components.remove(i);
    d.system_down = Some(down);

    // Triggers and FDEPs in the surviving components.
    for bc in &mut d.components {
        // Walk groups back-to-front so dropping one leaves earlier
        // indices (and their TTF slots) stable.
        for j in (0..bc.om_groups.len()).rev() {
            let Some(trigger) = bc.om_groups[j].trigger() else {
                continue;
            };
            match expr_drop_comp(trigger, &name) {
                Some(t2) => {
                    bc.om_groups[j] = match &bc.om_groups[j] {
                        OmGroup::OnOff(_) => OmGroup::OnOff(t2),
                        OmGroup::AccessibleInaccessible(_) => OmGroup::AccessibleInaccessible(t2),
                        OmGroup::NormalDegraded(_) => OmGroup::NormalDegraded(t2),
                        OmGroup::ActiveInactive => unreachable!("no trigger"),
                    };
                }
                None => *bc = drop_om_group(bc, j),
            }
        }
        if let Some(dep) = &bc.df {
            match expr_drop_comp(dep, &name) {
                Some(d2) => bc.df = Some(d2),
                None => {
                    bc.df = None;
                    bc.ttr_df = None;
                }
            }
        }
    }

    // Any `x.down.df` literal pointing at a component whose FDEP we just
    // removed must widen to `x.down`.
    let df_less: Vec<String> = d
        .components
        .iter()
        .filter(|c| c.df.is_none())
        .map(|c| c.name.clone())
        .collect();
    for dfn in &df_less {
        map_exprs(&mut d, |e| demote_mode(e, dfn, MatchMode::Df));
    }

    // Repair units.
    for ru in &mut d.repair_units {
        if let Some(pos) = ru.components.iter().position(|c| *c == name) {
            ru.components.remove(pos);
            if pos < ru.priorities.len() {
                ru.priorities.remove(pos);
            }
        }
    }
    d.repair_units.retain(|ru| !ru.components.is_empty());
    for ru in &mut d.repair_units {
        if ru.strategy == RepairStrategy::Dedicated && ru.components.len() != 1 {
            ru.strategy = RepairStrategy::Fcfs;
        }
    }

    // Spare management units.
    d.smus.retain(|smu| smu.primary != name);
    drop_spare_refs(&mut d, &name);
    Some(d)
}

/// Removes `name` from every SMU's spare list; SMUs left with no spares
/// are dropped entirely.
fn drop_spare_refs(def: &mut SystemDef, name: &str) {
    for smu in &mut def.smus {
        smu.spares.retain(|s| s != name);
    }
    def.smus.retain(|smu| !smu.spares.is_empty());
}

/// Removes OM group `j` of `bc`, keeping the TTF entries where the
/// dropped group sits in its initial mode (the groups enumerate
/// operational states as a cross product, last group fastest).
fn drop_om_group(bc: &BcDef, j: usize) -> BcDef {
    let mut out = bc.clone();
    let groups = bc.om_groups.len();
    out.om_groups.remove(j);
    let bit = groups - 1 - j;
    let ttf: Vec<Dist> = bc
        .ttf
        .iter()
        .enumerate()
        .filter(|(idx, _)| (idx >> bit) & 1 == 0)
        .map(|(_, d)| d.clone())
        .collect();
    // A malformed input TTF table falls back to a safe single entry.
    out.ttf = if ttf.is_empty() {
        vec![bc.ttf.first().cloned().unwrap_or(Dist::Exp(1.0))]
    } else {
        ttf
    };
    out
}

/// Which literals of a component [`demote_mode`] widens to `.down`.
enum MatchMode {
    /// `x.down.df` (the FDEP was removed).
    Df,
    /// `x.down.mK` with `K ≥ 2` (failure modes were collapsed to one).
    HighModes,
}

/// Rewrites matching mode-specific literals of `name` to plain `.down`.
fn demote_mode(e: &Expr, name: &str, which: MatchMode) -> Option<Expr> {
    let mut out = e.clone();
    demote_in_place(&mut out, name, &which);
    Some(out)
}

fn demote_in_place(e: &mut Expr, name: &str, which: &MatchMode) {
    match e {
        Expr::Lit(l) => {
            if l.component == name {
                let demote = match (which, &l.mode) {
                    (MatchMode::Df, ModeRef::Df) => true,
                    (MatchMode::HighModes, ModeRef::Mode(k)) => *k >= 2,
                    _ => false,
                };
                if demote {
                    l.mode = ModeRef::Any;
                }
            }
        }
        Expr::And(cs) | Expr::Or(cs) | Expr::KofN(_, cs) | Expr::Pand(cs) => {
            for c in cs {
                demote_in_place(c, name, which);
            }
        }
    }
}

/// Applies `f` to every expression of the definition (OM triggers,
/// FDEPs, SYSTEM DOWN), replacing each where `f` returns `Some`.
fn map_exprs(def: &mut SystemDef, f: impl Fn(&Expr) -> Option<Expr>) {
    for bc in &mut def.components {
        for g in &mut bc.om_groups {
            let rewritten = match g {
                OmGroup::ActiveInactive => None,
                OmGroup::OnOff(t) => f(t).map(OmGroup::OnOff),
                OmGroup::AccessibleInaccessible(t) => f(t).map(OmGroup::AccessibleInaccessible),
                OmGroup::NormalDegraded(t) => f(t).map(OmGroup::NormalDegraded),
            };
            if let Some(g2) = rewritten {
                *g = g2;
            }
        }
        if let Some(d) = &bc.df {
            if let Some(d2) = f(d) {
                bc.df = Some(d2);
            }
        }
    }
    if let Some(down) = &def.system_down {
        if let Some(d2) = f(down) {
            def.system_down = Some(d2);
        }
    }
}

/// Removes every literal of `name` from the expression. `None` means the
/// expression vanishes entirely. Gates left with one child unwrap; a
/// k-of-n clamps `k` into range.
fn expr_drop_comp(e: &Expr, name: &str) -> Option<Expr> {
    match e {
        Expr::Lit(l) => (l.component != name).then(|| e.clone()),
        Expr::And(cs) => rebuild_gate(cs, name, Expr::And),
        Expr::Or(cs) => rebuild_gate(cs, name, Expr::Or),
        Expr::Pand(cs) => match rebuild_gate(cs, name, Expr::Pand) {
            // PAND needs two children; a unary survivor is just itself.
            Some(Expr::Pand(kept)) if kept.len() < 2 => kept.into_iter().next(),
            other => other,
        },
        Expr::KofN(k, cs) => {
            let kept: Vec<Expr> = cs.iter().filter_map(|c| expr_drop_comp(c, name)).collect();
            match kept.len() {
                0 => None,
                1 => kept.into_iter().next(),
                n => Some(Expr::KofN((*k).clamp(1, n as u32), kept)),
            }
        }
    }
}

fn rebuild_gate(cs: &[Expr], name: &str, gate: impl Fn(Vec<Expr>) -> Expr) -> Option<Expr> {
    let kept: Vec<Expr> = cs.iter().filter_map(|c| expr_drop_comp(c, name)).collect();
    match kept.len() {
        0 => None,
        1 => kept.into_iter().next(),
        _ => Some(gate(kept)),
    }
}

/// One-step simplifications of an expression: each direct child of the
/// root gate, the root with one child removed, and k-of-n weakened to OR.
fn expr_shrinks(root: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    let children: &[Expr] = match root {
        Expr::Lit(_) => return out,
        Expr::And(cs) | Expr::Or(cs) | Expr::KofN(_, cs) | Expr::Pand(cs) => cs,
    };
    out.extend(children.iter().cloned());
    if children.len() > 2 {
        for skip in 0..children.len() {
            let kept: Vec<Expr> = children
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, c)| c.clone())
                .collect();
            let n = kept.len() as u32;
            out.push(match root {
                Expr::And(_) => Expr::And(kept),
                Expr::Or(_) => Expr::Or(kept),
                Expr::Pand(_) => Expr::Pand(kept),
                Expr::KofN(k, _) => Expr::KofN((*k).clamp(1, n), kept),
                Expr::Lit(_) => unreachable!(),
            });
        }
    }
    if let Expr::KofN(_, cs) = root {
        out.push(Expr::Or(cs.clone()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::gen::{gen_system, GenConfig};
    use crate::model::validate;
    use smallrand::SmallRng;

    /// Every candidate edit of a valid generated model is itself valid —
    /// the guarantee that keeps shrinking from wasting predicate calls.
    #[test]
    fn candidates_preserve_validity() {
        let cfg = GenConfig::engine();
        for seed in 0..48u64 {
            let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ seed);
            let def = gen_system(&mut rng, &cfg);
            validate(&def).expect("generated model valid");
            for (ci, cand) in candidates(&def).iter().enumerate() {
                validate(cand).unwrap_or_else(|e| {
                    panic!("seed {seed} candidate {ci}: invalid: {e}\n{cand:#?}")
                });
            }
        }
    }

    /// A predicate that only needs one component pins the model down to
    /// that component and a trivial criterion.
    #[test]
    fn shrinks_to_the_single_relevant_component() {
        let cfg = GenConfig::engine();
        let mut rng = SmallRng::seed_from_u64(42);
        let def = gen_system(&mut rng, &cfg);
        let target = def.components[0].name.clone();
        let pred = |d: &SystemDef| d.component(&target).is_some();
        assert!(pred(&def));
        let outcome = shrink_system(&def, pred);
        assert_eq!(outcome.def.components.len(), 1);
        assert_eq!(outcome.def.components[0].name, target);
        assert!(outcome.steps > 0);
        assert!(outcome.checks >= outcome.steps);
        validate(&outcome.def).expect("minimal model valid");
    }

    /// Same input, same predicate → bitwise the same minimum.
    #[test]
    fn shrinking_is_deterministic() {
        let cfg = GenConfig::engine();
        let mut rng = SmallRng::seed_from_u64(7);
        let def = gen_system(&mut rng, &cfg);
        let pred = |d: &SystemDef| !d.components.is_empty();
        let a = shrink_system(&def, pred);
        let b = shrink_system(&def, pred);
        assert_eq!(a.def, b.def);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.checks, b.checks);
    }
}
