//! Machine-readable disagreement evidence.
//!
//! When `fuzz_diff` finds and shrinks an oracle disagreement it commits
//! an [`Evidence`] record under `artifacts/fuzz/` so the failure is
//! reproducible offline: the seed, the original and minimal model texts,
//! both oracle outputs and the tolerance they broke, plus shrink
//! statistics. The JSON layout is versioned by [`SCHEMA_VERSION`];
//! consumers must reject records whose `schema` field they don't know.

use crate::fuzz::oracle::Disagreement;
use crate::serve::Json;

/// Version of the evidence JSON layout.
pub const SCHEMA_VERSION: u32 = 1;

/// One committed disagreement: everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Evidence {
    /// The iteration's generator/simulation seed.
    pub seed: u64,
    /// Iteration index within the fuzz run.
    pub iteration: u64,
    /// The disagreement (pair, measure, both values, tolerance).
    pub disagreement: Disagreement,
    /// Textual syntax of the originally generated model.
    pub original: String,
    /// Textual syntax of the shrunk (minimal) model.
    pub minimal: String,
    /// Accepted shrink edits.
    pub shrink_steps: usize,
    /// Predicate evaluations spent shrinking.
    pub shrink_checks: usize,
}

impl Evidence {
    /// The record as a JSON value (serialize with `to_string()`).
    pub fn to_json(&self) -> Json {
        let d = &self.disagreement;
        Json::obj([
            ("schema", Json::Num(f64::from(SCHEMA_VERSION))),
            ("seed", Json::Num(self.seed as f64)),
            ("iteration", Json::Num(self.iteration as f64)),
            ("pair", Json::str(d.pair.name())),
            ("measure", Json::str(d.measure.clone())),
            ("primary", Json::Num(d.primary)),
            ("oracle", Json::Num(d.oracle)),
            ("tolerance", Json::Num(d.tolerance)),
            ("original_model", Json::str(self.original.clone())),
            ("minimal_model", Json::str(self.minimal.clone())),
            ("shrink_steps", Json::Num(self.shrink_steps as f64)),
            ("shrink_checks", Json::Num(self.shrink_checks as f64)),
        ])
    }

    /// Canonical artifact file name: unique per pair and seed, stable
    /// across reruns so a committed artifact overwrites its predecessor.
    pub fn file_name(&self) -> String {
        format!(
            "disagreement-{}-seed{}.json",
            self.disagreement.pair.name(),
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::oracle::OraclePair;

    fn sample() -> Evidence {
        Evidence {
            seed: 42,
            iteration: 7,
            disagreement: Disagreement {
                pair: OraclePair::Modular,
                measure: "steady_state_unavailability".to_owned(),
                primary: 0.25,
                oracle: 0.5,
                tolerance: 1e-7,
            },
            original: "SYSTEM DOWN c0.down".to_owned(),
            minimal: "SYSTEM DOWN c0.down".to_owned(),
            shrink_steps: 3,
            shrink_checks: 19,
        }
    }

    #[test]
    fn evidence_round_trips_through_json() {
        let e = sample();
        let text = e.to_json().to_string();
        let back = Json::parse(&text).expect("valid JSON");
        assert_eq!(
            back.get("schema").and_then(Json::as_f64),
            Some(f64::from(SCHEMA_VERSION))
        );
        assert_eq!(back.get("pair").and_then(Json::as_str), Some("modular"));
        assert_eq!(back.get("primary").and_then(Json::as_f64), Some(0.25));
        assert_eq!(back.get("shrink_steps").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn file_names_identify_pair_and_seed() {
        assert_eq!(sample().file_name(), "disagreement-modular-seed42.json");
    }
}
