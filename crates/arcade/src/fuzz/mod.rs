//! Differential fuzzing: generation, oracles, shrinking, evidence.
//!
//! This module is the shared substrate of the repository's randomized
//! testing. The property-test suites (`tests/proptest_roundtrip.rs`,
//! `tests/proptest_laws.rs`) draw their models from [`gen::gen_system`];
//! the `fuzz_diff` binary drives the same generator through the four
//! differential [`oracle::OraclePair`]s, reduces any disagreement with
//! [`shrink::shrink_system`], and commits the result as a
//! schema-versioned [`evidence::Evidence`] artifact.
//!
//! Everything here is deterministic for a fixed seed — including the
//! Monte-Carlo oracle, whose simulation stream is seeded — so any
//! failure a fuzz run reports can be replayed exactly from its artifact
//! and committed seeds can never flake in CI.

pub mod evidence;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use evidence::{Evidence, SCHEMA_VERSION};
pub use gen::{gen_system, GenConfig};
pub use oracle::{check_all, check_pair, Disagreement, OraclePair};
pub use shrink::{shrink_system, ShrinkOutcome};
