//! Seeded random [`SystemDef`] generation.
//!
//! One generator, three profiles. The property-test suites and the
//! `fuzz_diff` differential fuzzer all draw from [`gen_system`] so the
//! covered model space is defined in exactly one place:
//!
//! * [`GenConfig::syntax`] — the widest *structural* space (deep nested
//!   gates, k-of-n, phase-type distributions, multiple failure modes,
//!   destructive FDEPs, spares, shared repair with priorities) for
//!   parser/printer round-trip testing.
//! * [`GenConfig::engine`] — the same space restricted to models the
//!   exact engine, the modular decomposition and the Monte-Carlo
//!   simulator all accept, plus stiff rate ratios and optional rate
//!   parameters. This is the differential-fuzzing profile.
//! * [`GenConfig::independent`] — exponential components with dedicated
//!   repair, each appearing exactly once in a flat gate. On this
//!   sub-space the analytic independent-component formulas are exact,
//!   so it backs the engine-vs-analytic law tests.
//!
//! Every model produced under any profile passes
//! [`crate::model::validate`]; rates are of the form `m · 10^e` with
//! `m < 1000`, which Rust prints shortest-exact and the parser reads
//! back verbatim, so models also survive text round trips bit-for-bit.

use smallrand::SmallRng;

use crate::ast::{BcDef, OmGroup, RepairStrategy, RuDef, SmuDef, SystemDef};
use crate::dist::Dist;
use crate::expr::Expr;

/// Knobs selecting the sub-space [`gen_system`] draws from.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Minimum number of basic components (inclusive).
    pub min_components: usize,
    /// Maximum number of basic components (inclusive).
    pub max_components: usize,
    /// Maximum nesting depth of the SYSTEM DOWN expression.
    pub expr_depth: u32,
    /// Allow Erlang / hypoexponential distributions.
    pub phase_type: bool,
    /// Allow expression-driven operational-mode groups.
    pub om_groups: bool,
    /// Allow components with two inherent failure modes.
    pub multi_failure_modes: bool,
    /// Allow destructive functional dependencies.
    pub df: bool,
    /// Allow a spare (active/inactive component) managed by an SMU.
    pub spares: bool,
    /// Allow multi-component repair units with FCFS/priority strategies
    /// (otherwise every component gets a dedicated unit).
    pub shared_repair: bool,
    /// Widen the rate exponent range so failure/repair ratios span up to
    /// ~12 orders of magnitude (stress for stiff transient solves).
    pub stiff: bool,
    /// Sometimes declare a rate parameter bound to a generated rate.
    pub params: bool,
    /// Force the SYSTEM DOWN criterion to be one flat gate mentioning
    /// every component exactly once (the independence requirement of the
    /// analytic evaluator).
    pub flat_unique_criterion: bool,
}

impl GenConfig {
    /// Widest structural space — for parser/printer round trips.
    pub fn syntax() -> Self {
        Self {
            min_components: 2,
            max_components: 6,
            expr_depth: 3,
            phase_type: true,
            om_groups: true,
            multi_failure_modes: true,
            df: true,
            spares: true,
            shared_repair: true,
            stiff: false,
            params: false, // the textual syntax has no parameter form
            flat_unique_criterion: false,
        }
    }

    /// Oracle-safe space with stiff rates and parameters — for
    /// differential fuzzing of the analysis pipeline.
    pub fn engine() -> Self {
        Self {
            min_components: 2,
            max_components: 5,
            expr_depth: 2,
            phase_type: true,
            om_groups: true,
            multi_failure_modes: true,
            df: true,
            spares: true,
            shared_repair: true,
            stiff: true,
            params: true,
            flat_unique_criterion: false,
        }
    }

    /// Independent exponential components — the space where the analytic
    /// closed forms are exact.
    pub fn independent() -> Self {
        Self {
            min_components: 2,
            max_components: 4,
            expr_depth: 1,
            phase_type: false,
            om_groups: false,
            multi_failure_modes: false,
            df: false,
            spares: false,
            shared_repair: false,
            stiff: false,
            params: false,
            flat_unique_criterion: true,
        }
    }
}

/// A rate of the form `m · 10^e`, `1 ≤ m < 1000`. Such values print
/// shortest-exact and parse back bitwise identical, so generated models
/// survive text round trips. The stiff profile widens `e` to
/// `[-8, 2]`, the default keeps the classic `[-6, 2]`.
fn gen_rate(rng: &mut SmallRng, cfg: &GenConfig) -> f64 {
    let mantissa = f64::from(rng.range_u32(1, 999));
    let exp = if cfg.stiff {
        rng.range_u32(0, 11) as i32 - 8
    } else {
        rng.range_u32(0, 9) as i32 - 6
    };
    mantissa * 10f64.powi(exp)
}

/// A random distribution; exponential-only unless the profile allows
/// phase types.
fn gen_dist(rng: &mut SmallRng, cfg: &GenConfig) -> Dist {
    let rate = gen_rate(rng, cfg);
    if !cfg.phase_type {
        return Dist::exp(rate);
    }
    match rng.range_u32(0, 4) {
        0 => Dist::erlang(rng.range_u32(2, 5), rate),
        1 => Dist::hypo([rate, rate * 2.0]),
        _ => Dist::exp(rate),
    }
}

/// A variant of `d` with the same phase structure but scaled rates —
/// used for the second operational state of a mode group, where
/// [`crate::model::validate`] requires one shared phase structure.
fn scaled_variant(d: &Dist, factor: f64) -> Dist {
    d.map_rates(|r| r * factor)
}

/// A random failure literal over the already-generated components;
/// mode-specific (`.mK` / `.df`) literals only where the target
/// component has them.
fn gen_literal(rng: &mut SmallRng, comps: &[BcDef]) -> Expr {
    let c = &comps[rng.range_usize(0, comps.len())];
    if c.num_failure_modes() > 1 && rng.flip() {
        Expr::down_mode(&c.name, rng.range_u32(1, c.num_failure_modes() as u32 + 1))
    } else if c.df.is_some() && rng.flip() {
        Expr::down_df(&c.name)
    } else {
        Expr::down(&c.name)
    }
}

/// A random AND/OR/K-of-N expression of bounded depth.
fn gen_expr(rng: &mut SmallRng, comps: &[BcDef], depth: u32) -> Expr {
    if depth == 0 || rng.range_u32(0, 4) == 0 {
        return gen_literal(rng, comps);
    }
    let n = rng.range_usize(2, 5);
    let children: Vec<Expr> = (0..n).map(|_| gen_expr(rng, comps, depth - 1)).collect();
    match rng.range_u32(0, 3) {
        0 => Expr::and(children),
        1 => Expr::or(children),
        _ => Expr::k_of_n(rng.range_u32(1, n as u32 + 1), children),
    }
}

/// Draws one random system definition from the space selected by `cfg`.
///
/// The result always passes [`crate::model::validate`] — spares carry
/// their active/inactive group, repair strategies match their member
/// counts, priority lists align, time-to-failure distributions share one
/// phase structure per component, and expressions only reference
/// components (and modes) that exist.
pub fn gen_system(rng: &mut SmallRng, cfg: &GenConfig) -> SystemDef {
    let mut def = SystemDef::new(format!("gen{}", rng.range_u32(0, 1000)));
    let n = rng.range_usize(cfg.min_components, cfg.max_components + 1);

    // Component index 1 may be a spare for index 0; decided up front so
    // the spare gets its active/inactive group instead of a trigger.
    let spare_idx = if cfg.spares && n >= 3 && rng.range_u32(0, 3) == 0 {
        Some(1usize)
    } else {
        None
    };

    let mut comps: Vec<BcDef> = Vec::new();
    for i in 0..n {
        let ttf = gen_dist(rng, cfg);
        let mut bc = BcDef::new(format!("c{i}"), ttf.clone(), gen_dist(rng, cfg));
        if spare_idx == Some(i) {
            // Initially inactive; cold (Never) or warm (reduced rate).
            let inactive = if rng.flip() {
                Dist::Never
            } else {
                scaled_variant(&ttf, 0.25)
            };
            bc = bc
                .with_om_group(OmGroup::ActiveInactive)
                .with_ttf([inactive, ttf]);
        } else if cfg.om_groups && i > 0 && rng.flip() {
            // One expression-driven group over *earlier* components only,
            // so triggers are acyclic and never self-referencing.
            let trigger = gen_literal(rng, &comps);
            let group = match rng.range_u32(0, 3) {
                0 => OmGroup::OnOff(trigger),
                1 => OmGroup::AccessibleInaccessible(trigger),
                _ => OmGroup::NormalDegraded(trigger),
            };
            let off_state = match group {
                // `off` typically fails not at all or slower.
                OmGroup::OnOff(_) if rng.flip() => Dist::Never,
                OmGroup::NormalDegraded(_) => scaled_variant(&ttf, 2.0),
                _ => scaled_variant(&ttf, 0.5),
            };
            let inaccessible = matches!(group, OmGroup::AccessibleInaccessible(_));
            bc = bc.with_om_group(group).with_ttf([ttf, off_state]);
            if inaccessible && rng.flip() {
                bc = bc.with_inaccessible_means_down(true);
            }
        }
        if cfg.multi_failure_modes && rng.flip() {
            // k/128 is exact in binary, so p + (1-p) sums to exactly 1.
            let p = f64::from(rng.range_u32(1, 100)) / 128.0;
            bc = bc.with_failure_modes([p, 1.0 - p], [gen_dist(rng, cfg), gen_dist(rng, cfg)]);
        }
        if cfg.df && i > 0 && spare_idx != Some(i) && rng.range_u32(0, 4) == 0 {
            bc = bc.with_df(gen_literal(rng, &comps), gen_dist(rng, cfg));
        }
        comps.push(bc);
    }
    for bc in &comps {
        def.add_component(bc.clone());
    }

    // Repair: either a random partition into shared units, or one
    // dedicated unit per component.
    if cfg.shared_repair {
        let mut names: Vec<String> = comps.iter().map(|c| c.name.clone()).collect();
        let mut ri = 0usize;
        while !names.is_empty() {
            let take = rng.range_usize(1, names.len() + 1);
            let members: Vec<String> = names.drain(..take).collect();
            let strategy = match rng.range_u32(0, 5) {
                0 if members.len() == 1 => RepairStrategy::Dedicated,
                1 | 0 => RepairStrategy::Fcfs,
                2 => RepairStrategy::PreemptivePriority,
                3 => RepairStrategy::NonPreemptivePriority,
                _ => RepairStrategy::Fcfs,
            };
            let mut ru = RuDef::new(format!("ru{ri}"), members.clone(), strategy);
            if matches!(
                strategy,
                RepairStrategy::PreemptivePriority | RepairStrategy::NonPreemptivePriority
            ) {
                let prios: Vec<u32> = members.iter().map(|_| rng.range_u32(0, 9)).collect();
                ru = ru.with_priorities(prios);
            }
            def.add_repair_unit(ru);
            ri += 1;
        }
    } else {
        for bc in &comps {
            def.add_repair_unit(RuDef::new(
                format!("{}.rep", bc.name),
                [bc.name.clone()],
                RepairStrategy::Dedicated,
            ));
        }
    }

    if let Some(si) = spare_idx {
        let mut smu = SmuDef::new("smu0", comps[0].name.clone(), [comps[si].name.clone()]);
        if rng.flip() {
            smu = smu.with_failover(gen_dist(rng, cfg));
        }
        def.add_smu(smu);
    }

    let criterion = if cfg.flat_unique_criterion {
        let lits: Vec<Expr> = comps.iter().map(|c| Expr::down(&c.name)).collect();
        let k = (lits.len() as u32).div_ceil(2);
        match rng.range_u32(0, 3) {
            0 => Expr::Or(lits),
            1 => Expr::And(lits),
            _ => Expr::KofN(k, lits),
        }
    } else {
        gen_expr(rng, &comps, cfg.expr_depth)
    };
    def.set_system_down(criterion);

    if cfg.params && rng.flip() {
        // Bind a parameter to component 0's base failure rate. Component 0
        // never has OM groups, so ttf[0] is a plain generated distribution
        // with at least one phase.
        let base = def.components[0].ttf[0].phase_rates()[0];
        def.add_param("lambda", base);
    }
    def
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate;

    #[test]
    fn all_profiles_generate_valid_models() {
        for (profile, cfg) in [
            ("syntax", GenConfig::syntax()),
            ("engine", GenConfig::engine()),
            ("independent", GenConfig::independent()),
        ] {
            for seed in 0..128u64 {
                let mut rng = SmallRng::seed_from_u64(0xD1CE ^ seed);
                let def = gen_system(&mut rng, &cfg);
                validate(&def)
                    .unwrap_or_else(|e| panic!("{profile} seed {seed}: invalid model: {e}"));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::engine();
        for seed in 0..16u64 {
            let a = gen_system(&mut SmallRng::seed_from_u64(seed), &cfg);
            let b = gen_system(&mut SmallRng::seed_from_u64(seed), &cfg);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn independent_profile_mentions_each_component_once_flat() {
        let cfg = GenConfig::independent();
        for seed in 0..32u64 {
            let mut rng = SmallRng::seed_from_u64(77 ^ seed);
            let def = gen_system(&mut rng, &cfg);
            let down = def.system_down.as_ref().expect("criterion");
            let lits = down.literals();
            assert_eq!(lits.len(), def.components.len(), "seed {seed}");
            for bc in &def.components {
                assert!(bc.om_groups.is_empty());
                assert_eq!(bc.ttf.len(), 1);
                assert!(matches!(bc.ttf[0], Dist::Exp(_)));
            }
            assert!(def.smus.is_empty());
            assert!(def
                .repair_units
                .iter()
                .all(|ru| ru.strategy == RepairStrategy::Dedicated));
        }
    }

    #[test]
    fn engine_profile_eventually_uses_every_feature() {
        let cfg = GenConfig::engine();
        let (mut spares, mut params, mut dfs, mut stiff) = (false, false, false, false);
        for seed in 0..256u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let def = gen_system(&mut rng, &cfg);
            spares |= !def.smus.is_empty();
            params |= def.is_parametric();
            dfs |= def.components.iter().any(|c| c.df.is_some());
            let rates: Vec<f64> = def
                .components
                .iter()
                .flat_map(|c| c.ttf.iter().chain(c.ttr.iter()))
                .flat_map(|d| d.phase_rates())
                .collect();
            if let (Some(min), Some(max)) = (
                rates.iter().cloned().reduce(f64::min),
                rates.iter().cloned().reduce(f64::max),
            ) {
                stiff |= max / min > 1e8;
            }
        }
        assert!(spares && params && dfs && stiff);
    }
}
