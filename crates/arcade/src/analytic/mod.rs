//! Analytic (static fault tree) evaluation — the Galileo-role baseline.
//!
//! The paper cross-checks the DDS reliability against the Galileo DFT tool
//! in a *static* configuration: without repair, the components fail
//! independently, so the system unreliability is the fault-tree expression
//! evaluated over per-component failure probabilities. That computation is
//! exactly reproducible analytically, which is what this module does — it
//! is both a baseline column for Table 1 and an independent oracle for the
//! I/O-IMC pipeline.
//!
//! **Validity.** The combinatorial evaluation assumes (a) no repair, (b)
//! no stochastic coupling between components (no load-sharing triggers, no
//! destructive dependencies, spares failing at the same rate in both
//! modes), and (c) every component appearing at most once in the
//! criterion. [`static_unreliability`] rejects models that violate these
//! conditions instead of silently returning a wrong number.

use std::collections::HashSet;

use crate::ast::SystemDef;
use crate::error::ArcadeError;
use crate::expr::{Expr, Literal, ModeRef};

/// System unreliability at time `t` without repair, by combinatorial
/// fault-tree evaluation over independent components.
///
/// # Errors
///
/// Returns [`ArcadeError::Invalid`] if the model has stochastic coupling
/// that invalidates the independence assumption (see module docs).
pub fn static_unreliability(def: &SystemDef, t: f64) -> Result<f64, ArcadeError> {
    let down = def
        .system_down
        .as_ref()
        .ok_or_else(|| ArcadeError::invalid("SYSTEM DOWN criterion missing"))?;
    check_independence(def, down)?;
    let prob = |lit: &Literal| -> f64 {
        let bc = def.component(&lit.component).expect("validated");
        // Without activation signals a spare stays in its first-listed
        // mode; without trigger events all expression-driven groups stay
        // in mode 0. Operational state 0 is therefore the static one.
        let cdf = bc.ttf[0].cdf(t);
        match &lit.mode {
            ModeRef::Any => cdf,
            ModeRef::Mode(k) => cdf * bc.failure_mode_probs[(*k - 1) as usize],
            ModeRef::Df => 0.0, // rejected by check_independence
        }
    };
    Ok(down.probability(&prob))
}

/// System reliability at `t` without repair (complement of
/// [`static_unreliability`]).
///
/// # Errors
///
/// Same conditions as [`static_unreliability`].
pub fn static_reliability(def: &SystemDef, t: f64) -> Result<f64, ArcadeError> {
    Ok(1.0 - static_unreliability(def, t)?)
}

/// Steady-state system unavailability assuming *independent* component
/// repair: each component alternates between MTTF and an effective MTTR
/// (failure-mode-weighted), giving `u = MTTR / (MTTF + MTTR)`.
///
/// This is exact for dedicated repair and an approximation for shared
/// (FCFS/priority) repair units — repair queueing correlates the
/// components; the experiments report it next to the exact engine result
/// to show how small the gap is for lightly-loaded repair shops like the
/// DDS.
///
/// # Errors
///
/// Returns [`ArcadeError::Invalid`] under the same coupling conditions as
/// [`static_unreliability`], except that repair is of course allowed.
pub fn independent_unavailability(def: &SystemDef) -> Result<f64, ArcadeError> {
    let down = def
        .system_down
        .as_ref()
        .ok_or_else(|| ArcadeError::invalid("SYSTEM DOWN criterion missing"))?;
    check_independence(def, down)?;
    let repaired: HashSet<&str> = def
        .repair_units
        .iter()
        .flat_map(|ru| ru.components.iter().map(String::as_str))
        .collect();
    let prob = |lit: &Literal| -> f64 {
        let bc = def.component(&lit.component).expect("validated");
        if !repaired.contains(lit.component.as_str()) {
            return 1.0; // never repaired: down in the long run
        }
        let mttf = bc.ttf[0].mean();
        let mttr: f64 = bc
            .failure_mode_probs
            .iter()
            .zip(&bc.ttr)
            .map(|(p, d)| p * d.mean())
            .sum();
        let u = mttr / (mttf + mttr);
        match &lit.mode {
            ModeRef::Any => u,
            ModeRef::Mode(k) => {
                let pk = bc.failure_mode_probs[(*k - 1) as usize];
                (pk * bc.ttr[(*k - 1) as usize].mean()) / (mttf + mttr)
            }
            ModeRef::Df => 0.0,
        }
    };
    Ok(down.probability(&prob))
}

/// Steady-state availability under the independence assumption.
///
/// # Errors
///
/// Same conditions as [`independent_unavailability`].
pub fn independent_availability(def: &SystemDef) -> Result<f64, ArcadeError> {
    Ok(1.0 - independent_unavailability(def)?)
}

fn check_independence(def: &SystemDef, down: &Expr) -> Result<(), ArcadeError> {
    for bc in &def.components {
        if bc.df.is_some() {
            return Err(ArcadeError::invalid(format!(
                "static evaluation: component `{}` has a destructive dependency",
                bc.name
            )));
        }
        for g in &bc.om_groups {
            if g.trigger().is_some() {
                return Err(ArcadeError::invalid(format!(
                    "static evaluation: component `{}` has an expression-driven mode group",
                    bc.name
                )));
            }
        }
        // A spare is acceptable only if its rates do not depend on the mode
        // (activation timing then does not matter for its failure law).
        if bc.has_active_inactive() && bc.ttf.windows(2).any(|w| w[0] != w[1]) {
            return Err(ArcadeError::invalid(format!(
                "static evaluation: spare `{}` has mode-dependent failure rates",
                bc.name
            )));
        }
    }
    let mut seen = HashSet::new();
    check_distinct(down, &mut seen)
}

/// Every literal occurrence must name a distinct component (literals()
/// deduplicates, so walk the tree directly).
fn check_distinct<'e>(e: &'e Expr, seen: &mut HashSet<&'e str>) -> Result<(), ArcadeError> {
    match e {
        Expr::Lit(l) => {
            if !seen.insert(l.component.as_str()) {
                return Err(ArcadeError::invalid(format!(
                    "static evaluation: component `{}` appears more than once in SYSTEM DOWN",
                    l.component
                )));
            }
            Ok(())
        }
        Expr::Pand(_) => Err(ArcadeError::invalid(
            "static evaluation: PAND gates are order-dependent and have no \
             combinatorial evaluation",
        )),
        Expr::And(cs) | Expr::Or(cs) | Expr::KofN(_, cs) => {
            cs.iter().try_for_each(|c| check_distinct(c, seen))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BcDef, RepairStrategy, RuDef};
    use crate::dist::Dist;

    fn pair(and: bool) -> SystemDef {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.1), Dist::exp(1.0)));
        def.add_component(BcDef::new("b", Dist::exp(0.2), Dist::exp(1.0)));
        let e = if and {
            Expr::and([Expr::down("a"), Expr::down("b")])
        } else {
            Expr::or([Expr::down("a"), Expr::down("b")])
        };
        def.set_system_down(e);
        def
    }

    #[test]
    fn unreliability_of_parallel_pair() {
        let def = pair(true);
        let t = 3.0;
        let pa = 1.0 - (-0.1f64 * t).exp();
        let pb = 1.0 - (-0.2f64 * t).exp();
        let u = static_unreliability(&def, t).unwrap();
        assert!((u - pa * pb).abs() < 1e-12);
        assert!((static_reliability(&def, t).unwrap() + u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unavailability_with_dedicated_repair() {
        let mut def = pair(false);
        def.add_repair_unit(RuDef::new("ra", ["a"], RepairStrategy::Dedicated));
        def.add_repair_unit(RuDef::new("rb", ["b"], RepairStrategy::Dedicated));
        let ua = (1.0 / 1.0) / (10.0 + 1.0);
        let ub = (1.0 / 1.0) / (5.0 + 1.0);
        let u = independent_unavailability(&def).unwrap();
        let expected = 1.0 - (1.0 - ua) * (1.0 - ub);
        assert!((u - expected).abs() < 1e-12, "{u} vs {expected}");
        assert!((independent_availability(&def).unwrap() + u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coupling_is_rejected() {
        let mut def = pair(true);
        def.components[1] = BcDef::new("b", Dist::exp(0.2), Dist::exp(1.0))
            .with_df(Expr::down("a"), Dist::exp(1.0));
        assert!(static_unreliability(&def, 1.0).is_err());
    }

    #[test]
    fn repeated_component_rejected() {
        let mut def = pair(true);
        def.set_system_down(Expr::and([Expr::down("a"), Expr::down("a")]));
        assert!(static_unreliability(&def, 1.0).is_err());
    }

    #[test]
    fn mode_literal_scales_by_probability() {
        let mut def = SystemDef::new("t");
        def.add_component(
            BcDef::new("v", Dist::exp(0.1), Dist::exp(1.0))
                .with_failure_modes([0.25, 0.75], [Dist::exp(1.0), Dist::exp(1.0)]),
        );
        def.set_system_down(Expr::down_mode("v", 2));
        let t = 2.0;
        let u = static_unreliability(&def, t).unwrap();
        let cdf = 1.0 - (-0.1f64 * t).exp();
        assert!((u - 0.75 * cdf).abs() < 1e-12);
    }
}
