//! Error type of the Arcade crate.

use std::fmt;

/// All the ways building or analyzing an Arcade model can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum ArcadeError {
    /// A parse error in the textual syntax, with 1-based line number.
    Parse {
        /// Line where the error occurred.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The model definition is inconsistent (dangling names, arity
    /// mismatches, …).
    Invalid(String),
    /// Internal consistency failure while building the I/O-IMC semantics.
    Build(String),
    /// The composed model is not weakly deterministic (no underlying CTMC).
    Nondeterministic(String),
    /// A numerical analysis failed.
    Analysis(String),
    /// The evaluation exceeded a compute budget — a deadline, an explicit
    /// cancellation, or a state/transition ceiling (see [`ioimc::budget`]).
    /// Unlike the other variants this says nothing about the model: the
    /// same query can succeed with a larger budget.
    Budget(ioimc::budget::BudgetExceeded),
    /// An evaluation panicked. The panic was contained (caught at the
    /// session or server boundary); the message is the panic payload.
    Internal(String),
}

impl ArcadeError {
    /// Convenience constructor for [`ArcadeError::Invalid`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        Self::Invalid(msg.into())
    }

    /// Convenience constructor for [`ArcadeError::Build`].
    pub fn build(msg: impl Into<String>) -> Self {
        Self::Build(msg.into())
    }
}

impl fmt::Display for ArcadeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            Self::Invalid(m) => write!(f, "invalid model: {m}"),
            Self::Build(m) => write!(f, "semantics construction failed: {m}"),
            Self::Nondeterministic(m) => write!(f, "model is not weakly deterministic: {m}"),
            Self::Analysis(m) => write!(f, "analysis failed: {m}"),
            Self::Budget(e) => write!(f, "evaluation aborted: {e}"),
            Self::Internal(m) => write!(f, "internal panic: {m}"),
        }
    }
}

impl std::error::Error for ArcadeError {}

impl From<ioimc::ValidationError> for ArcadeError {
    fn from(e: ioimc::ValidationError) -> Self {
        Self::Build(e.to_string())
    }
}

impl From<ioimc::compose::ComposeError> for ArcadeError {
    fn from(e: ioimc::compose::ComposeError) -> Self {
        match e {
            ioimc::compose::ComposeError::Budget(b) => Self::Budget(b),
            other => Self::Build(other.to_string()),
        }
    }
}

impl From<ioimc::budget::BudgetExceeded> for ArcadeError {
    fn from(e: ioimc::budget::BudgetExceeded) -> Self {
        Self::Budget(e)
    }
}

impl From<bisim::NondeterminismError> for ArcadeError {
    fn from(e: bisim::NondeterminismError) -> Self {
        Self::Nondeterministic(e.to_string())
    }
}

impl From<ctmc::CtmcError> for ArcadeError {
    fn from(e: ctmc::CtmcError) -> Self {
        Self::Analysis(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ArcadeError::Parse {
            line: 12,
            message: "expected COMPONENT".into(),
        };
        assert!(e.to_string().contains("line 12"));
        assert!(ArcadeError::invalid("x").to_string().contains("invalid"));
        assert!(ArcadeError::build("y").to_string().contains("y"));
    }
}
