//! Composition-order policies and composition plans.
//!
//! The paper leaves the composition order to the user ("The order in which
//! the I/O-IMC models are composed is given by the user", §4). The order
//! matters enormously for the size of the intermediate models — the
//! `exp_ablation` experiment quantifies this — so besides user-given
//! orders we provide automatic policies, the best of which
//! ([`OrderPolicy::BottomUp`]) produces *hierarchical* composition plans:
//! each fault-tree module is aggregated in isolation, where everything
//! internal can be hidden immediately, and only the module's tiny quotient
//! joins the system-level fold.

use std::collections::HashSet;

use ioimc::ActionId;

use crate::error::ArcadeError;
use crate::expr::Expr;
use crate::model::SystemModel;

/// How to order the blocks for composition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// Hierarchical bottom-up plan along the fault tree (default): every
    /// gate subtree (components, then covering units, then the gate)
    /// becomes a group aggregated standalone; at the top level the top
    /// gate and observer are composed right after the first module so
    /// completed modules are hidden — and structurally identical sibling
    /// modules lumped — as they arrive.
    #[default]
    BottomUp,
    /// Greedy signal-affinity clustering (flat order): repeatedly compose
    /// the block that shares the most signals with what has been composed
    /// so far.
    Affinity,
    /// Declaration order (components, then units, then gates, observer).
    Declaration,
    /// Reverse declaration order — a deliberately bad order used by the
    /// ordering ablation.
    Reverse,
    /// Explicit flat order by block name (the paper's user-given order).
    Custom(Vec<String>),
}

/// A composition plan: either a single block or a group composed (and
/// reduced) in isolation before joining its parent group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// One block (index into `model.blocks`).
    Block(usize),
    /// A sub-composition evaluated standalone.
    Group(Vec<Plan>),
}

impl Plan {
    /// All block indices in the plan, in fold order.
    pub fn blocks(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<usize>) {
        match self {
            Plan::Block(i) => out.push(*i),
            Plan::Group(items) => {
                for item in items {
                    item.collect(out);
                }
            }
        }
    }
}

/// Resolves `policy` to a composition [`Plan`].
///
/// # Errors
///
/// Returns [`ArcadeError::Invalid`] if a custom order misses or duplicates
/// blocks.
pub fn resolve_plan(model: &SystemModel, policy: &OrderPolicy) -> Result<Plan, ArcadeError> {
    match policy {
        OrderPolicy::BottomUp => Ok(bottom_up_plan(model)),
        other => Ok(Plan::Group(
            resolve_order(model, other)?
                .into_iter()
                .map(Plan::Block)
                .collect(),
        )),
    }
}

/// Resolves `policy` to a flat permutation of block indices (hierarchical
/// plans are flattened).
///
/// # Errors
///
/// Returns [`ArcadeError::Invalid`] if a custom order misses or duplicates
/// blocks.
pub fn resolve_order(model: &SystemModel, policy: &OrderPolicy) -> Result<Vec<usize>, ArcadeError> {
    let n = model.blocks.len();
    match policy {
        OrderPolicy::BottomUp => Ok(bottom_up_plan(model).blocks()),
        OrderPolicy::Declaration => Ok((0..n).collect()),
        OrderPolicy::Reverse => Ok((0..n).rev().collect()),
        OrderPolicy::Custom(names) => {
            if names.len() != n {
                return Err(ArcadeError::invalid(format!(
                    "custom order lists {} blocks, model has {n}",
                    names.len()
                )));
            }
            let mut seen = HashSet::new();
            let mut order = Vec::with_capacity(n);
            for name in names {
                let idx = model
                    .blocks
                    .iter()
                    .position(|b| &b.name == name)
                    .ok_or_else(|| {
                        ArcadeError::invalid(format!("custom order: unknown block `{name}`"))
                    })?;
                if !seen.insert(idx) {
                    return Err(ArcadeError::invalid(format!(
                        "custom order lists `{name}` twice"
                    )));
                }
                order.push(idx);
            }
            Ok(order)
        }
        OrderPolicy::Affinity => Ok(affinity_order(model)),
    }
}

/// Builder state for [`bottom_up_plan`].
struct PlanBuilder<'m> {
    model: &'m SystemModel,
    placed: Vec<bool>,
    /// Post-order gate numbers per pre-order node index.
    numbers: Vec<(usize, usize)>,
}

impl PlanBuilder<'_> {
    fn index_of(&self, name: &str) -> Option<usize> {
        self.model.blocks.iter().position(|b| b.name == name)
    }

    fn take(&mut self, name: &str, out: &mut Vec<Plan>) {
        if let Some(i) = self.index_of(name) {
            if !self.placed[i] {
                self.placed[i] = true;
                out.push(Plan::Block(i));
            }
        }
    }

    /// Places a component plus the components its trigger/DF expressions
    /// depend on (its automaton listens to their signals).
    fn take_component(&mut self, root: &str, out: &mut Vec<Plan>) {
        let mut stack = vec![root.to_owned()];
        while let Some(name) = stack.pop() {
            if let Some(bc) = self.model.def.component(&name) {
                for e in bc
                    .om_groups
                    .iter()
                    .filter_map(|g| g.trigger())
                    .chain(bc.df.as_ref())
                {
                    for l in e.literals() {
                        let dep = l.component.clone();
                        if self.index_of(&dep).is_some_and(|i| !self.placed[i]) {
                            stack.push(dep);
                        }
                    }
                }
            }
            self.take(&name, out);
        }
    }

    /// Units become placeable once all their components are placed.
    fn take_ready_units(&mut self, out: &mut Vec<Plan>) {
        let mut ready: Vec<String> = Vec::new();
        {
            let placed_comp = |c: &String| self.index_of(c).is_some_and(|i| self.placed[i]);
            for ru in &self.model.def.repair_units {
                if ru.components.iter().all(placed_comp) {
                    ready.push(ru.name.clone());
                }
            }
            for smu in &self.model.def.smus {
                if placed_comp(&smu.primary) && smu.spares.iter().all(placed_comp) {
                    ready.push(smu.name.clone());
                }
            }
        }
        for name in ready {
            self.take(&name, out);
        }
    }

    /// Plan items for one expression node. Composite nodes become groups:
    /// `[child plans…, ready units…, own gate]`; at the top level the gate
    /// and observer come right after the first child instead.
    fn subtree(&mut self, expr: &Expr, pre: &mut usize, is_top: bool) -> Vec<Plan> {
        let my_pre = *pre;
        *pre += 1;
        match expr {
            Expr::Lit(lit) => {
                let mut items = Vec::new();
                self.take_component(&lit.component, &mut items);
                items
            }
            Expr::And(cs) | Expr::Or(cs) | Expr::KofN(_, cs) | Expr::Pand(cs) => {
                let gate_no = self
                    .numbers
                    .iter()
                    .find(|(p, _)| *p == my_pre)
                    .map(|(_, g)| *g)
                    .expect("numbered in first pass");
                let mut items = Vec::new();
                for (k, c) in cs.iter().enumerate() {
                    let sub = self.subtree(c, pre, false);
                    if matches!(c, Expr::Lit(_)) || sub.len() <= 1 {
                        items.extend(sub);
                    } else {
                        items.push(Plan::Group(sub));
                    }
                    self.take_ready_units(&mut items);
                    if is_top && k == 0 {
                        self.take(&format!("gate{gate_no}"), &mut items);
                        self.take("observer", &mut items);
                    }
                }
                if !is_top {
                    self.take(&format!("gate{gate_no}"), &mut items);
                }
                items
            }
        }
    }
}

/// Post-order gate numbering matching `build_gate_tree`.
fn assign_numbers(
    expr: &Expr,
    pre: &mut usize,
    post: &mut usize,
    numbers: &mut Vec<(usize, usize)>,
) {
    let my_pre = *pre;
    *pre += 1;
    match expr {
        Expr::Lit(_) => {}
        Expr::And(cs) | Expr::Or(cs) | Expr::KofN(_, cs) | Expr::Pand(cs) => {
            for c in cs {
                assign_numbers(c, pre, post, numbers);
            }
            numbers.push((my_pre, *post));
            *post += 1;
        }
    }
}

fn bottom_up_plan(model: &SystemModel) -> Plan {
    let n = model.blocks.len();
    let mut builder = PlanBuilder {
        model,
        placed: vec![false; n],
        numbers: Vec::new(),
    };
    let mut items = Vec::new();
    if let Some(down) = &model.def.system_down {
        let (mut pre, mut post) = (0usize, 0usize);
        assign_numbers(down, &mut pre, &mut post, &mut builder.numbers);
        let mut pre = 0usize;
        items = builder.subtree(down, &mut pre, true);
    }
    // Stragglers (blocks not reachable from the tree; also the wrapper
    // gate when SYSTEM DOWN is a bare literal), observer last.
    for i in 0..n {
        if !builder.placed[i] && model.blocks[i].name != "observer" {
            builder.placed[i] = true;
            items.push(Plan::Block(i));
        }
    }
    if let Some(obs) = model.blocks.iter().position(|b| b.name == "observer") {
        if !builder.placed[obs] {
            items.push(Plan::Block(obs));
        }
    }
    Plan::Group(items)
}

/// Visible signals (inputs + outputs) of block `i`.
fn visible_signals(model: &SystemModel, i: usize) -> HashSet<ActionId> {
    let imc = &model.blocks[i].imc;
    imc.inputs().iter().chain(imc.outputs()).copied().collect()
}

fn affinity_order(model: &SystemModel) -> Vec<usize> {
    let n = model.blocks.len();
    let sigs: Vec<HashSet<ActionId>> = (0..n).map(|i| visible_signals(model, i)).collect();
    affinity_order_of(&sigs)
}

/// Greedy affinity clustering over visible-signal sets: repeatedly place
/// the block sharing the most signals with the frontier; ties prefer the
/// block introducing the fewest *new* signals, then declaration order.
///
/// The ranking is a true lexicographic comparison. An earlier version
/// packed it into `shared * 1000 + 999usize.saturating_sub(new)`, which
/// saturates (and collides) as soon as a block carries ≥1000 signals —
/// blocks with 1000 and 5000 fresh signals ranked equal, so large models
/// were mis-ordered towards whichever was declared first.
fn affinity_order_of(sigs: &[HashSet<ActionId>]) -> Vec<usize> {
    use std::cmp::Reverse;
    let n = sigs.len();
    let mut order = vec![0usize];
    let mut placed = vec![false; n];
    placed[0] = true;
    let mut frontier: HashSet<ActionId> = sigs[0].clone();
    for _ in 1..n {
        let best = (0..n)
            .filter(|&i| !placed[i])
            .max_by_key(|&i| {
                let shared = sigs[i].intersection(&frontier).count();
                let new = sigs[i].len() - shared;
                (shared, Reverse(new), Reverse(i))
            })
            .expect("unplaced block exists");
        placed[best] = true;
        frontier.extend(sigs[best].iter().copied());
        order.push(best);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BcDef, RepairStrategy, RuDef, SystemDef};
    use crate::dist::Dist;

    fn model() -> SystemModel {
        let mut def = SystemDef::new("t");
        for n in ["a", "b", "c", "d"] {
            def.add_component(BcDef::new(n, Dist::exp(0.01), Dist::exp(1.0)));
        }
        def.add_repair_unit(RuDef::new("rab", ["a", "b"], RepairStrategy::Fcfs));
        def.add_repair_unit(RuDef::new("rcd", ["c", "d"], RepairStrategy::Fcfs));
        def.set_system_down(Expr::or([
            Expr::and([Expr::down("a"), Expr::down("b")]),
            Expr::and([Expr::down("c"), Expr::down("d")]),
        ]));
        SystemModel::build(&def).unwrap()
    }

    #[test]
    fn declaration_and_reverse() {
        let m = model();
        let d = resolve_order(&m, &OrderPolicy::Declaration).unwrap();
        assert_eq!(d[0], 0);
        let r = resolve_order(&m, &OrderPolicy::Reverse).unwrap();
        assert_eq!(r[0], m.blocks.len() - 1);
    }

    #[test]
    fn affinity_groups_modules() {
        let m = model();
        let order = resolve_order(&m, &OrderPolicy::Affinity).unwrap();
        let names: Vec<&str> = order.iter().map(|&i| m.blocks[i].name.as_str()).collect();
        // block 0 is `a`; its repair unit and partner `b` must come before
        // the unrelated c/d module
        let pos = |n: &str| names.iter().position(|x| *x == n).unwrap();
        assert!(pos("b") < pos("c"));
        assert!(pos("rab") < pos("c"));
        assert!(pos("rab") < pos("rcd"));
    }

    /// Regression for the packed affinity ranking key: with ≥1000 signals
    /// per block the old `shared * 1000 + 999 - new` key saturated, so two
    /// candidates with equal overlap but wildly different fresh-signal
    /// counts tied and the earlier-declared (worse) one won.
    #[test]
    fn affinity_prefers_fewer_new_signals_on_wide_signatures() {
        let sig =
            |range: std::ops::Range<u32>| -> HashSet<ActionId> { range.map(ActionId).collect() };
        // Seed block 0 shares one signal with both candidates. Block 1
        // (declared first) drags in 2499 fresh signals, block 2 only
        // 1499 — the greedy step must pick block 2.
        let sigs = vec![sig(0..10), sig(9..2509), sig(9..1509)];
        let order = affinity_order_of(&sigs);
        assert_eq!(order, vec![0, 2, 1], "wide signatures mis-ordered");
        // Sanity at small scale: more shared signals still dominates
        // fewer new ones, and declaration order breaks exact ties.
        let sigs = vec![sig(0..4), sig(2..40), sig(0..4), sig(5..6)];
        let order = affinity_order_of(&sigs);
        assert_eq!(order, vec![0, 2, 1, 3]);
    }

    #[test]
    fn custom_order_validated() {
        let m = model();
        let all: Vec<String> = m.blocks.iter().map(|b| b.name.clone()).collect();
        assert!(resolve_order(&m, &OrderPolicy::Custom(all.clone())).is_ok());
        let mut dup = all.clone();
        dup[1] = dup[0].clone();
        assert!(resolve_order(&m, &OrderPolicy::Custom(dup)).is_err());
        assert!(resolve_order(&m, &OrderPolicy::Custom(vec!["a".into()])).is_err());
    }

    #[test]
    fn bottom_up_plan_covers_all_blocks_once() {
        let m = model();
        let plan = resolve_plan(&m, &OrderPolicy::BottomUp).unwrap();
        let mut blocks = plan.blocks();
        blocks.sort_unstable();
        let expected: Vec<usize> = (0..m.blocks.len()).collect();
        assert_eq!(blocks, expected);
    }

    #[test]
    fn bottom_up_groups_modules_and_places_observer_early() {
        let m = model();
        let Plan::Group(items) = resolve_plan(&m, &OrderPolicy::BottomUp).unwrap() else {
            panic!("top plan is a group");
        };
        // first item: the a/b module group (a, b, rab, gate0)
        let Plan::Group(first) = &items[0] else {
            panic!("first item should be a module group, got {:?}", items[0]);
        };
        let names: Vec<&str> = first
            .iter()
            .map(|p| match p {
                Plan::Block(i) => m.blocks[*i].name.as_str(),
                Plan::Group(_) => "<group>",
            })
            .collect();
        assert_eq!(names, vec!["a", "b", "rab", "gate0"]);
        // top gate + observer come right after the first module
        let flat: Vec<&str> = items
            .iter()
            .flat_map(|p| p.blocks())
            .map(|i| m.blocks[i].name.as_str())
            .collect();
        let pos = |n: &str| flat.iter().position(|x| *x == n).unwrap();
        assert!(
            pos("gate2") < pos("c"),
            "top gate before second module: {flat:?}"
        );
        assert!(pos("observer") < pos("c"));
    }
}
