//! Monte-Carlo discrete-event simulation of Arcade models.
//!
//! This is an *independent* implementation of the Arcade semantics — it
//! never touches the I/O-IMC pipeline — used in two roles:
//!
//! 1. as the second-tool column of Table 1 (the paper compared against a
//!    SAN model solved in UltraSAN; that tool is closed-source, so an
//!    independent estimator plays its role), and
//! 2. as a cross-validation oracle in the test suite: the engine's exact
//!    measures must fall inside the simulator's confidence intervals.
//!
//! Because every distribution is a chain of exponential phases, the
//! simulator advances phase-by-phase with the standard race semantics;
//! mode switches that change a rate mid-phase are exact thanks to
//! memorylessness. Instantaneous cascades (destructive dependencies, SMU
//! activation, repair-refail loops) are settled after every event.

use std::collections::HashMap;

use smallrand::SmallRng;

use crate::ast::{OmGroup, RepairStrategy, SystemDef};
use crate::dist::Dist;
use crate::error::ArcadeError;
use crate::expr::{Expr, Literal, ModeRef};

/// A Monte-Carlo estimate with a 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEstimate {
    /// Sample mean.
    pub mean: f64,
    /// 95% confidence half-width.
    pub half_width: f64,
    /// Number of replications.
    pub reps: usize,
}

impl McEstimate {
    /// Whether `value` lies inside the confidence interval (with a small
    /// numerical cushion).
    pub fn contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.half_width + 1e-12
    }
}

/// Estimates the probability that the system goes down before time `t`.
///
/// With `with_repair = false` this is the paper's DDS reliability
/// definition (§5.1.2, complemented); with `with_repair = true` it is the
/// RCS first-passage unreliability (§5.2.2).
///
/// # Errors
///
/// Returns [`ArcadeError::Invalid`] for inconsistent definitions.
pub fn simulate_unreliability(
    def: &SystemDef,
    t: f64,
    reps: usize,
    seed: u64,
    with_repair: bool,
) -> Result<McEstimate, ArcadeError> {
    crate::model::validate(def)?;
    let stripped;
    let def = if with_repair {
        def
    } else {
        stripped = def.without_repair();
        &stripped
    };
    let sim = Sim::new(def)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut failures = 0usize;
    for _ in 0..reps {
        if sim.first_passage_before(t, &mut rng) {
            failures += 1;
        }
    }
    let p = failures as f64 / reps as f64;
    Ok(McEstimate {
        mean: p,
        half_width: 1.96 * (p * (1.0 - p) / reps as f64).sqrt(),
        reps,
    })
}

/// Estimates the long-run unavailability as the time-average fraction of
/// down time over `horizon`, averaged over `reps` replications.
///
/// # Errors
///
/// Returns [`ArcadeError::Invalid`] for inconsistent definitions.
pub fn simulate_unavailability(
    def: &SystemDef,
    horizon: f64,
    reps: usize,
    seed: u64,
) -> Result<McEstimate, ArcadeError> {
    crate::model::validate(def)?;
    let sim = Sim::new(def)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let samples: Vec<f64> = (0..reps)
        .map(|_| sim.downtime_fraction(horizon, &mut rng))
        .collect();
    let mean = samples.iter().sum::<f64>() / reps as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
        / (reps.saturating_sub(1).max(1)) as f64;
    Ok(McEstimate {
        mean,
        half_width: 1.96 * (var / reps as f64).sqrt(),
        reps,
    })
}

/// The component failure position (mirror of the engine's micro-state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fail {
    Up { phase: u16 },
    DownM { mode: u8 },
    DownDf,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RepairItem {
    comp: usize,
    mode: usize,
    phase: u16,
}

/// Static simulation tables.
struct Sim<'a> {
    def: &'a SystemDef,
    /// Per component, per operational state: TTF phase rates.
    ttf_rates: Vec<Vec<Vec<f64>>>,
    /// Per component, per failure mode (inherent + df last): repair rates.
    ttr_rates: Vec<Vec<Vec<f64>>>,
    /// Component name -> index.
    index: HashMap<&'a str, usize>,
    /// Component -> repair unit index.
    ru_of: Vec<Option<usize>>,
    /// SMU spare/primary component indices.
    smu_primary: Vec<usize>,
    smu_spares: Vec<Vec<usize>>,
    smu_failover: Vec<Vec<f64>>,
    /// Component -> managing SMU (as a spare).
    down_expr: &'a Expr,
}

/// Dynamic simulation state.
struct State {
    fail: Vec<Fail>,
    /// Per RU: outstanding repairs in arrival order.
    queue: Vec<Vec<RepairItem>>,
    /// Per SMU: active spare (index into `smu_spares[s]`).
    active: Vec<Option<usize>>,
    failover_phase: Vec<Option<u16>>,
    /// Cached per-component visible-down status.
    visible: Vec<bool>,
}

#[allow(clippy::enum_variant_names)] // the shared suffix is the point: phase steps
enum Event {
    CompPhase(usize),
    RuPhase(usize),
    SmuPhase(usize),
}

impl<'a> Sim<'a> {
    fn new(def: &'a SystemDef) -> Result<Self, ArcadeError> {
        let index: HashMap<&str, usize> = def
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.as_str(), i))
            .collect();
        let mut ru_of = vec![None; def.components.len()];
        for (ri, ru) in def.repair_units.iter().enumerate() {
            for c in &ru.components {
                ru_of[index[c.as_str()]] = Some(ri);
            }
        }
        let ttf_rates = def
            .components
            .iter()
            .map(|c| c.ttf.iter().map(Dist::phase_rates).collect())
            .collect();
        let ttr_rates = def
            .components
            .iter()
            .map(|c| {
                let mut v: Vec<Vec<f64>> = c.ttr.iter().map(Dist::phase_rates).collect();
                v.push(c.ttr_df.as_ref().map(Dist::phase_rates).unwrap_or_default());
                v
            })
            .collect();
        let down_expr = def
            .system_down
            .as_ref()
            .ok_or_else(|| ArcadeError::invalid("SYSTEM DOWN criterion missing"))?;
        if down_expr.contains_pand() {
            return Err(ArcadeError::invalid(
                "the simulator evaluates SYSTEM DOWN statelessly and cannot \
                 track PAND failure order; use the I/O-IMC engine",
            ));
        }
        Ok(Self {
            down_expr,
            ttf_rates,
            ttr_rates,
            smu_primary: def.smus.iter().map(|s| index[s.primary.as_str()]).collect(),
            smu_spares: def
                .smus
                .iter()
                .map(|s| s.spares.iter().map(|n| index[n.as_str()]).collect())
                .collect(),
            smu_failover: def
                .smus
                .iter()
                .map(|s| {
                    s.failover
                        .as_ref()
                        .map(Dist::phase_rates)
                        .unwrap_or_default()
                })
                .collect(),
            index,
            ru_of,
            def,
        })
    }

    fn fresh(&self) -> State {
        State {
            fail: vec![Fail::Up { phase: 0 }; self.def.components.len()],
            queue: vec![Vec::new(); self.def.repair_units.len()],
            active: vec![None; self.def.smus.len()],
            failover_phase: vec![None; self.def.smus.len()],
            visible: vec![false; self.def.components.len()],
        }
    }

    /// Literal truth over the current state.
    fn literal(&self, st: &State, l: &Literal) -> bool {
        let c = self.index[l.component.as_str()];
        match &l.mode {
            ModeRef::Any => st.visible[c],
            ModeRef::Mode(k) => matches!(st.fail[c], Fail::DownM { mode } if mode as u32 + 1 == *k),
            ModeRef::Df => matches!(st.fail[c], Fail::DownDf),
        }
    }

    fn eval(&self, st: &State, e: &Expr) -> bool {
        e.eval(&|l| self.literal(st, l))
    }

    /// Recomputes visible statuses to a fixpoint (inaccessibility can
    /// cascade through trigger expressions).
    fn refresh_visible(&self, st: &mut State) {
        for (c, f) in st.fail.iter().enumerate() {
            st.visible[c] = !matches!(f, Fail::Up { .. });
        }
        for _ in 0..self.def.components.len().max(1) {
            let mut changed = false;
            for (c, bc) in self.def.components.iter().enumerate() {
                if !bc.inaccessible_means_down || !matches!(st.fail[c], Fail::Up { .. }) {
                    continue;
                }
                let inacc = bc.om_groups.iter().any(|g| match g {
                    OmGroup::AccessibleInaccessible(e) => self.eval(st, e),
                    _ => false,
                });
                let vis = inacc; // fail part is Up here
                if st.visible[c] != vis {
                    st.visible[c] = vis;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Settles instantaneous cascades: destructive dependencies, then SMU
    /// reconciliation.
    fn settle(&self, st: &mut State) {
        self.refresh_visible(st);
        loop {
            let mut changed = false;
            for (c, bc) in self.def.components.iter().enumerate() {
                if !matches!(st.fail[c], Fail::Up { .. }) {
                    continue;
                }
                if let Some(d) = &bc.df {
                    if self.eval(st, d) {
                        st.fail[c] = Fail::DownDf;
                        self.enqueue_repair(st, c, self.df_mode(c));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
            self.refresh_visible(st);
        }
        // SMU reconciliation (instant activation changes rates only).
        for s in 0..self.smu_primary.len() {
            let desired = if st.visible[self.smu_primary[s]] {
                self.smu_spares[s].iter().position(|&sp| !st.visible[sp])
            } else {
                None
            };
            if st.active[s] == desired {
                st.failover_phase[s] = None;
                continue;
            }
            if st.active[s].is_some() && st.active[s] != desired {
                st.active[s] = None;
            }
            if let Some(i) = desired {
                if self.smu_failover[s].is_empty() {
                    st.active[s] = Some(i);
                    st.failover_phase[s] = None;
                } else if st.failover_phase[s].is_none() {
                    st.failover_phase[s] = Some(0);
                }
            } else {
                st.failover_phase[s] = None;
            }
        }
    }

    fn df_mode(&self, c: usize) -> usize {
        self.def.components[c].failure_mode_probs.len()
    }

    fn enqueue_repair(&self, st: &mut State, c: usize, mode: usize) {
        if let Some(ri) = self.ru_of[c] {
            if !st.queue[ri].iter().any(|it| it.comp == c) {
                st.queue[ri].push(RepairItem {
                    comp: c,
                    mode,
                    phase: 0,
                });
            }
        }
    }

    /// The operational-state index of component `c`.
    fn op_state(&self, st: &State, c: usize) -> usize {
        let bc = &self.def.components[c];
        let mut idx = 0usize;
        for g in &bc.om_groups {
            let mode = match g {
                OmGroup::ActiveInactive => {
                    let active = self
                        .smu_spares
                        .iter()
                        .enumerate()
                        .any(|(s, spares)| st.active[s].is_some_and(|i| spares[i] == c));
                    usize::from(active)
                }
                OmGroup::OnOff(e)
                | OmGroup::AccessibleInaccessible(e)
                | OmGroup::NormalDegraded(e) => usize::from(self.eval(st, e)),
            };
            idx = idx * 2 + mode;
        }
        idx
    }

    /// Which item is in service at RU `ri`, if any.
    fn served(&self, st: &State, ri: usize) -> Option<usize> {
        let q = &st.queue[ri];
        if q.is_empty() {
            return None;
        }
        match self.def.repair_units[ri].strategy {
            RepairStrategy::PreemptivePriority => {
                let prio = |it: &RepairItem| {
                    let ru = &self.def.repair_units[ri];
                    let k = ru
                        .components
                        .iter()
                        .position(|n| self.index[n.as_str()] == it.comp)
                        .expect("component belongs to ru");
                    ru.priorities.get(k).copied().unwrap_or(0)
                };
                q.iter()
                    .enumerate()
                    .max_by_key(|(pos, it)| (prio(it), usize::MAX - pos))
                    .map(|(pos, _)| pos)
            }
            _ => Some(0),
        }
    }

    fn select_next(&self, st: &mut State, ri: usize) {
        let ru = &self.def.repair_units[ri];
        if ru.strategy == RepairStrategy::NonPreemptivePriority && st.queue[ri].len() > 1 {
            let prio = |it: &RepairItem| {
                let k = ru
                    .components
                    .iter()
                    .position(|n| self.index[n.as_str()] == it.comp)
                    .expect("component belongs to ru");
                ru.priorities.get(k).copied().unwrap_or(0)
            };
            let best = st.queue[ri]
                .iter()
                .enumerate()
                .max_by_key(|(pos, it)| (prio(it), usize::MAX - pos))
                .map(|(pos, _)| pos)
                .expect("non-empty");
            let item = st.queue[ri].remove(best);
            st.queue[ri].insert(0, item);
        }
    }

    /// Collects the enabled exponential races.
    fn races(&self, st: &State, out: &mut Vec<(f64, Event)>) {
        out.clear();
        for c in 0..self.def.components.len() {
            if let Fail::Up { phase } = st.fail[c] {
                let rates = &self.ttf_rates[c][self.op_state(st, c)];
                if !rates.is_empty() {
                    out.push((rates[phase as usize], Event::CompPhase(c)));
                }
            }
        }
        for ri in 0..st.queue.len() {
            if let Some(pos) = self.served(st, ri) {
                let it = st.queue[ri][pos];
                let rates = &self.ttr_rates[it.comp][it.mode];
                out.push((rates[it.phase as usize], Event::RuPhase(ri)));
            }
        }
        for s in 0..st.failover_phase.len() {
            if let Some(ph) = st.failover_phase[s] {
                out.push((self.smu_failover[s][ph as usize], Event::SmuPhase(s)));
            }
        }
    }

    /// Executes one sampled event.
    fn execute(&self, st: &mut State, ev: &Event, rng: &mut SmallRng) {
        match *ev {
            Event::CompPhase(c) => {
                let Fail::Up { phase } = st.fail[c] else {
                    return;
                };
                let rates = &self.ttf_rates[c][self.op_state(st, c)];
                if (phase as usize) + 1 < rates.len() {
                    st.fail[c] = Fail::Up { phase: phase + 1 };
                } else {
                    let bc = &self.def.components[c];
                    let mut u: f64 = rng.next_f64();
                    let mut mode = bc.failure_mode_probs.len() - 1;
                    for (j, &p) in bc.failure_mode_probs.iter().enumerate() {
                        if u < p {
                            mode = j;
                            break;
                        }
                        u -= p;
                    }
                    st.fail[c] = Fail::DownM { mode: mode as u8 };
                    self.enqueue_repair(st, c, mode);
                }
            }
            Event::RuPhase(ri) => {
                let pos = self.served(st, ri).expect("event only when serving");
                let it = st.queue[ri][pos];
                let rates = &self.ttr_rates[it.comp][it.mode];
                if (it.phase as usize) + 1 < rates.len() {
                    st.queue[ri][pos].phase += 1;
                } else {
                    st.queue[ri].remove(pos);
                    st.fail[it.comp] = Fail::Up { phase: 0 };
                    self.select_next(st, ri);
                    // A repair under an active destructive dependency
                    // re-fails instantly — settle() handles it.
                }
            }
            Event::SmuPhase(s) => {
                let ph = st.failover_phase[s].expect("event only when pending");
                if (ph as usize) + 1 < self.smu_failover[s].len() {
                    st.failover_phase[s] = Some(ph + 1);
                } else {
                    st.failover_phase[s] = None;
                    let desired = if st.visible[self.smu_primary[s]] {
                        self.smu_spares[s].iter().position(|&sp| !st.visible[sp])
                    } else {
                        None
                    };
                    st.active[s] = desired;
                }
            }
        }
    }

    /// Whether the system hits a down state before `t`.
    fn first_passage_before(&self, t: f64, rng: &mut SmallRng) -> bool {
        let mut st = self.fresh();
        self.settle(&mut st);
        let mut races = Vec::new();
        let mut now = 0.0;
        loop {
            if self.eval(&st, self.down_expr) {
                return true;
            }
            self.races(&st, &mut races);
            let total: f64 = races.iter().map(|(r, _)| r).sum();
            if total <= 0.0 {
                return false;
            }
            now += exp_sample(total, rng);
            if now >= t {
                return false;
            }
            let ev = pick(&races, total, rng);
            self.execute(&mut st, ev, rng);
            self.settle(&mut st);
        }
    }

    /// Fraction of `[0, horizon]` spent with the system down.
    fn downtime_fraction(&self, horizon: f64, rng: &mut SmallRng) -> f64 {
        let mut st = self.fresh();
        self.settle(&mut st);
        let mut races = Vec::new();
        let mut now = 0.0;
        let mut down_time = 0.0;
        loop {
            let down = self.eval(&st, self.down_expr);
            self.races(&st, &mut races);
            let total: f64 = races.iter().map(|(r, _)| r).sum();
            let dt = if total <= 0.0 {
                horizon - now
            } else {
                exp_sample(total, rng).min(horizon - now)
            };
            if down {
                down_time += dt;
            }
            now += dt;
            if now >= horizon {
                return down_time / horizon;
            }
            let ev = pick(&races, total, rng);
            self.execute(&mut st, ev, rng);
            self.settle(&mut st);
        }
    }
}

fn exp_sample(rate: f64, rng: &mut SmallRng) -> f64 {
    rng.exp(rate)
}

fn pick<'e>(races: &'e [(f64, Event)], total: f64, rng: &mut SmallRng) -> &'e Event {
    let mut x: f64 = rng.range_f64(0.0, total);
    for (r, e) in races {
        if x < *r {
            return e;
        }
        x -= r;
    }
    &races.last().expect("non-empty races").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BcDef, RuDef, SmuDef};

    #[test]
    fn single_component_unreliability_matches_exponential() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("x", Dist::exp(0.1), Dist::exp(1.0)));
        def.set_system_down(Expr::down("x"));
        let t = 5.0;
        let est = simulate_unreliability(&def, t, 20_000, 7, false).unwrap();
        let exact = 1.0 - (-0.1f64 * t).exp();
        assert!(est.contains(exact), "{est:?} vs {exact}");
    }

    #[test]
    fn redundant_pair_unreliability() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.1), Dist::exp(1.0)));
        def.add_component(BcDef::new("b", Dist::exp(0.1), Dist::exp(1.0)));
        def.set_system_down(Expr::and([Expr::down("a"), Expr::down("b")]));
        let t = 8.0;
        let est = simulate_unreliability(&def, t, 20_000, 12, false).unwrap();
        let p = 1.0 - (-0.1f64 * t).exp();
        assert!(est.contains(p * p), "{est:?} vs {}", p * p);
    }

    #[test]
    fn unavailability_of_repairable_machine() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("x", Dist::exp(0.2), Dist::exp(2.0)));
        def.add_repair_unit(RuDef::new("r", ["x"], RepairStrategy::Dedicated));
        def.set_system_down(Expr::down("x"));
        let est = simulate_unavailability(&def, 5_000.0, 60, 3).unwrap();
        let exact = 0.2 / 2.2;
        assert!(est.contains(exact), "{est:?} vs {exact}");
    }

    #[test]
    fn first_passage_with_repair_is_rarer() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.1), Dist::exp(5.0)));
        def.add_component(BcDef::new("b", Dist::exp(0.1), Dist::exp(5.0)));
        def.add_repair_unit(RuDef::new("ra", ["a"], RepairStrategy::Dedicated));
        def.add_repair_unit(RuDef::new("rb", ["b"], RepairStrategy::Dedicated));
        def.set_system_down(Expr::and([Expr::down("a"), Expr::down("b")]));
        let t = 20.0;
        let with = simulate_unreliability(&def, t, 10_000, 5, true).unwrap();
        let without = simulate_unreliability(&def, t, 10_000, 5, false).unwrap();
        assert!(with.mean < without.mean);
    }

    #[test]
    fn spare_activation_changes_rates() {
        // Spare that cannot fail while inactive: system much more reliable
        // than with an always-hot spare.
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("pp", Dist::exp(0.1), Dist::exp(1.0)));
        def.add_component(
            BcDef::new("ps", Dist::exp(0.1), Dist::exp(1.0))
                .with_om_group(OmGroup::ActiveInactive)
                .with_ttf([Dist::Never, Dist::exp(0.1)]),
        );
        def.add_smu(SmuDef::new("m", "pp", ["ps"]));
        def.set_system_down(Expr::and([Expr::down("pp"), Expr::down("ps")]));
        let t = 10.0;
        let est = simulate_unreliability(&def, t, 20_000, 13, false).unwrap();
        // cold spare: system failure = pp fails, then ps fails:
        // hypoexponential(0.1, 0.1) cdf
        let x = 0.1 * t;
        let exact = 1.0 - (-x).exp() * (1.0 + x);
        assert!(est.contains(exact), "{est:?} vs {exact}");
    }

    #[test]
    fn df_cascade_counts_as_down() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("fan", Dist::exp(0.2), Dist::exp(1.0)));
        def.add_component(
            BcDef::new("cpu", Dist::exp(0.0), Dist::exp(1.0))
                .with_df(Expr::down("fan"), Dist::exp(1.0)),
        );
        def.set_system_down(Expr::down_df("cpu"));
        let t = 5.0;
        let est = simulate_unreliability(&def, t, 20_000, 17, false).unwrap();
        let exact = 1.0 - (-0.2f64 * t).exp();
        assert!(est.contains(exact), "{est:?} vs {exact}");
    }
}
