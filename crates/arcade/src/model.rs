//! The elaborated system model: signal table, validation, and the I/O-IMC
//! semantics of every building block.

use std::collections::{HashMap, HashSet};

use ioimc::{ActionId, Alphabet, IoImc};

use crate::ast::{OmGroup, RepairStrategy, SystemDef};
use crate::error::ArcadeError;
use crate::expr::{Expr, Literal, ModeRef};

/// The interned signal vocabulary of a system.
///
/// Naming scheme (visible in DOT exports and error messages):
///
/// * `{bc}.failed.m{j}` — inherent failure mode `j` (1-based),
/// * `{bc}.failed.df` — destructive functional dependency failure,
/// * `{bc}.failed.na` — became inaccessible with `INACCESSIBLE MEANS
///   DOWN: YES`,
/// * `{bc}.up` — the component became operational/visible again,
/// * `{bc}.repaired` — sent by the repair unit,
/// * `{bc}.activate` / `{bc}.deactivate` — sent by the spare management
///   unit,
/// * `{gate}.failed` / `{gate}.up` — fault-tree gate outputs.
#[derive(Debug, Clone)]
pub struct Signals {
    index: HashMap<String, usize>,
    /// Per component, per inherent failure mode.
    pub failed_m: Vec<Vec<ActionId>>,
    /// Per component, if it has a destructive functional dependency.
    pub failed_df: Vec<Option<ActionId>>,
    /// Per component, if inaccessibility is environment-visible.
    pub failed_na: Vec<Option<ActionId>>,
    /// Per component.
    pub up: Vec<ActionId>,
    /// Per component.
    pub repaired: Vec<ActionId>,
    /// Per component, if it has an active/inactive OM group.
    pub activate: Vec<Option<ActionId>>,
    /// Per component, if it has an active/inactive OM group.
    pub deactivate: Vec<Option<ActionId>>,
}

impl Signals {
    fn build(def: &SystemDef, alphabet: &mut Alphabet) -> Self {
        let mut s = Signals {
            index: HashMap::new(),
            failed_m: Vec::new(),
            failed_df: Vec::new(),
            failed_na: Vec::new(),
            up: Vec::new(),
            repaired: Vec::new(),
            activate: Vec::new(),
            deactivate: Vec::new(),
        };
        for (i, bc) in def.components.iter().enumerate() {
            s.index.insert(bc.name.clone(), i);
            s.failed_m.push(
                (1..=bc.num_failure_modes())
                    .map(|j| alphabet.intern(&format!("{}.failed.m{j}", bc.name)))
                    .collect(),
            );
            s.failed_df.push(
                bc.df
                    .as_ref()
                    .map(|_| alphabet.intern(&format!("{}.failed.df", bc.name))),
            );
            s.failed_na.push(if bc.inaccessible_means_down {
                Some(alphabet.intern(&format!("{}.failed.na", bc.name)))
            } else {
                None
            });
            s.up.push(alphabet.intern(&format!("{}.up", bc.name)));
            s.repaired
                .push(alphabet.intern(&format!("{}.repaired", bc.name)));
            let ai = bc.has_active_inactive();
            s.activate.push(if ai {
                Some(alphabet.intern(&format!("{}.activate", bc.name)))
            } else {
                None
            });
            s.deactivate.push(if ai {
                Some(alphabet.intern(&format!("{}.deactivate", bc.name)))
            } else {
                None
            });
        }
        s
    }

    /// The index of a component by name.
    pub fn component_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The failure signals that make `literal` true.
    ///
    /// `x.down` matches every failure signal of `x` (inherent modes, DF,
    /// and inaccessibility if visible); `x.down.mK` and `x.down.df` match
    /// only the specific signal. The signals that make the literal false
    /// again are given by [`Signals::clear_signals`].
    pub fn down_signals(&self, literal: &Literal) -> Result<Vec<ActionId>, ArcadeError> {
        let i = self.component_index(&literal.component).ok_or_else(|| {
            ArcadeError::invalid(format!("unknown component `{}`", literal.component))
        })?;
        match &literal.mode {
            ModeRef::Any => {
                let mut v = self.failed_m[i].clone();
                v.extend(self.failed_df[i]);
                v.extend(self.failed_na[i]);
                Ok(v)
            }
            ModeRef::Mode(k) => {
                let j = *k as usize;
                if j == 0 || j > self.failed_m[i].len() {
                    return Err(ArcadeError::invalid(format!(
                        "component `{}` has no failure mode m{k}",
                        literal.component
                    )));
                }
                Ok(vec![self.failed_m[i][j - 1]])
            }
            ModeRef::Df => self.failed_df[i].map(|a| vec![a]).ok_or_else(|| {
                ArcadeError::invalid(format!(
                    "component `{}` has no destructive functional dependency",
                    literal.component
                ))
            }),
        }
    }

    /// The signals that make `literal` false again.
    ///
    /// Always includes the component's `up`. For a cause-specific literal
    /// (`x.down.mK`, `x.down.df`) it also includes every *other* failure
    /// signal of the component: a component repaired under a still-active
    /// destructive dependency (or while visibly inaccessible) re-announces
    /// the new cause urgently without ever passing through `up`, so a
    /// cause-specific observer must hand over on that re-announcement
    /// instead of waiting for an `up` that never comes.
    pub fn clear_signals(&self, literal: &Literal) -> Result<Vec<ActionId>, ArcadeError> {
        let i = self.component_index(&literal.component).ok_or_else(|| {
            ArcadeError::invalid(format!("unknown component `{}`", literal.component))
        })?;
        let mut v = vec![self.up[i]];
        match &literal.mode {
            ModeRef::Any => {}
            ModeRef::Mode(k) => {
                let j = *k as usize;
                v.extend(
                    self.failed_m[i]
                        .iter()
                        .enumerate()
                        .filter(|&(idx, _)| idx + 1 != j)
                        .map(|(_, &a)| a),
                );
                v.extend(self.failed_df[i]);
                v.extend(self.failed_na[i]);
            }
            ModeRef::Df => {
                v.extend(self.failed_m[i].iter().copied());
                v.extend(self.failed_na[i]);
            }
        }
        Ok(v)
    }

    /// The `up` signal that makes any literal about the component false.
    pub fn up_signal(&self, component: &str) -> Result<ActionId, ArcadeError> {
        let i = self
            .component_index(component)
            .ok_or_else(|| ArcadeError::invalid(format!("unknown component `{component}`")))?;
        Ok(self.up[i])
    }
}

/// One building block's automaton, with its role recorded for reporting and
/// composition-order heuristics.
#[derive(Debug, Clone)]
pub struct Block {
    /// Human-readable name (component/unit/gate name).
    pub name: String,
    /// The I/O-IMC semantics.
    pub imc: IoImc,
}

/// A fully elaborated system: every block translated to its I/O-IMC.
#[derive(Debug, Clone)]
pub struct SystemModel {
    /// The source definition.
    pub def: SystemDef,
    /// The shared action alphabet.
    pub alphabet: Alphabet,
    /// The signal table.
    pub signals: Signals,
    /// All block automata (components, repair units, SMUs, gates, and the
    /// observer — in that order).
    pub blocks: Vec<Block>,
    /// The canonical internal action for reductions.
    pub tau: ActionId,
}

impl SystemModel {
    /// Validates `def` and builds the I/O-IMC semantics of every block.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::Invalid`] for inconsistent definitions and
    /// [`ArcadeError::Build`] if a block's automaton cannot be constructed.
    pub fn build(def: &SystemDef) -> Result<Self, ArcadeError> {
        validate(def)?;
        let mut alphabet = Alphabet::new();
        let tau = alphabet.intern("tau");
        let signals = Signals::build(def, &mut alphabet);

        let mut blocks = Vec::new();
        for (i, bc) in def.components.iter().enumerate() {
            let imc = crate::build::bc::build_bc(def, i, &signals)?;
            blocks.push(Block {
                name: bc.name.clone(),
                imc,
            });
        }
        for ru in &def.repair_units {
            let imc = crate::build::ru::build_ru(def, ru, &signals)?;
            blocks.push(Block {
                name: ru.name.clone(),
                imc,
            });
        }
        for smu in &def.smus {
            let imc = crate::build::smu::build_smu(def, smu, &signals)?;
            blocks.push(Block {
                name: smu.name.clone(),
                imc,
            });
        }
        let down = def
            .system_down
            .as_ref()
            .ok_or_else(|| ArcadeError::invalid("SYSTEM DOWN criterion missing"))?;
        let gates = crate::build::gate::build_gate_tree(down, &signals, &mut alphabet)?;
        let top_gate_name = gates
            .last()
            .map(|b| b.name.clone())
            .expect("gate tree is never empty");
        blocks.extend(gates);
        blocks.push(crate::build::observer::build_observer(
            &top_gate_name,
            &mut alphabet,
        )?);

        Ok(Self {
            def: def.clone(),
            alphabet,
            signals,
            blocks,
            tau,
        })
    }

    /// The automata of all blocks, in declaration order.
    pub fn automata(&self) -> Vec<&IoImc> {
        self.blocks.iter().map(|b| &b.imc).collect()
    }

    /// Looks up a block by name.
    pub fn block(&self, name: &str) -> Option<&Block> {
        self.blocks.iter().find(|b| b.name == name)
    }
}

/// Static validation of a [`SystemDef`] (name uniqueness, arities,
/// cross-references, SMU/RU constraints).
pub fn validate(def: &SystemDef) -> Result<(), ArcadeError> {
    // Rate parameters: unique names, positive finite bases, and pairwise
    // distinct base bits (a base shared between two parameters would make
    // the bit-equality binding ambiguous).
    let mut param_names = HashSet::new();
    let mut param_bases: HashMap<u64, &str> = HashMap::new();
    for p in &def.params {
        if p.name.is_empty() {
            return Err(ArcadeError::invalid("parameter with empty name"));
        }
        if !param_names.insert(p.name.as_str()) {
            return Err(ArcadeError::invalid(format!(
                "duplicate parameter name `{}`",
                p.name
            )));
        }
        if !p.base.is_finite() || p.base <= 0.0 {
            return Err(ArcadeError::invalid(format!(
                "parameter `{}`: base value {} must be positive and finite",
                p.name, p.base
            )));
        }
        if let Some(other) = param_bases.insert(p.base.to_bits(), &p.name) {
            return Err(ArcadeError::invalid(format!(
                "parameters `{other}` and `{}` share the base value {} \
                 (bases must be bitwise distinct to bind unambiguously)",
                p.name, p.base
            )));
        }
    }

    let mut names = HashSet::new();
    for bc in &def.components {
        if bc.name.is_empty() {
            return Err(ArcadeError::invalid("component with empty name"));
        }
        if !names.insert(bc.name.as_str()) {
            return Err(ArcadeError::invalid(format!(
                "duplicate component name `{}`",
                bc.name
            )));
        }
        if bc.ttf.len() != bc.num_operational_states() {
            return Err(ArcadeError::invalid(format!(
                "component `{}`: {} operational states but {} time-to-failure distributions",
                bc.name,
                bc.num_operational_states(),
                bc.ttf.len()
            )));
        }
        let phase_counts: HashSet<usize> = bc
            .ttf
            .iter()
            .filter(|d| !matches!(d, crate::dist::Dist::Never))
            .map(|d| d.num_phases())
            .collect();
        if phase_counts.len() > 1 {
            return Err(ArcadeError::invalid(format!(
                "component `{}`: time-to-failure distributions must share one phase structure \
                 (mode switches preserve the phase)",
                bc.name
            )));
        }
        if bc.failure_mode_probs.is_empty() {
            return Err(ArcadeError::invalid(format!(
                "component `{}`: needs at least one failure mode",
                bc.name
            )));
        }
        let sum: f64 = bc.failure_mode_probs.iter().sum();
        if (sum - 1.0).abs() > 1e-9 || bc.failure_mode_probs.iter().any(|p| *p <= 0.0 || *p > 1.0) {
            return Err(ArcadeError::invalid(format!(
                "component `{}`: failure mode probabilities must be in (0,1] and sum to 1",
                bc.name
            )));
        }
        if bc.ttr.len() != bc.failure_mode_probs.len() {
            return Err(ArcadeError::invalid(format!(
                "component `{}`: {} failure modes but {} time-to-repair distributions",
                bc.name,
                bc.failure_mode_probs.len(),
                bc.ttr.len()
            )));
        }
        if bc.df.is_some() && bc.ttr_df.is_none() {
            return Err(ArcadeError::invalid(format!(
                "component `{}`: destructive FDEP requires a df repair distribution",
                bc.name
            )));
        }
        let ai_groups = bc
            .om_groups
            .iter()
            .filter(|g| matches!(g, OmGroup::ActiveInactive))
            .count();
        if ai_groups > 1 {
            return Err(ArcadeError::invalid(format!(
                "component `{}`: more than one active/inactive group",
                bc.name
            )));
        }
    }

    // Expression cross-references.
    let check_expr = |owner: &str, e: &Expr| -> Result<(), ArcadeError> {
        for lit in e.literals() {
            let target = def.component(&lit.component).ok_or_else(|| {
                ArcadeError::invalid(format!(
                    "`{owner}` references unknown component `{}`",
                    lit.component
                ))
            })?;
            match &lit.mode {
                ModeRef::Any => {}
                ModeRef::Mode(k) => {
                    if *k == 0 || *k as usize > target.num_failure_modes() {
                        return Err(ArcadeError::invalid(format!(
                            "`{owner}`: component `{}` has no failure mode m{k}",
                            lit.component
                        )));
                    }
                }
                ModeRef::Df => {
                    if target.df.is_none() {
                        return Err(ArcadeError::invalid(format!(
                            "`{owner}`: component `{}` has no destructive FDEP",
                            lit.component
                        )));
                    }
                }
            }
        }
        check_kofn(owner, e)
    };
    for bc in &def.components {
        for g in &bc.om_groups {
            if let Some(t) = g.trigger() {
                if t.contains_pand() {
                    return Err(ArcadeError::invalid(format!(
                        "component `{}`: PAND is only supported in SYSTEM DOWN \
                         (trigger expressions are evaluated statelessly)",
                        bc.name
                    )));
                }
                if t.literals().iter().any(|l| l.component == bc.name) {
                    return Err(ArcadeError::invalid(format!(
                        "component `{}`: mode-switch trigger references itself",
                        bc.name
                    )));
                }
                check_expr(&bc.name, t)?;
            }
        }
        if let Some(d) = &bc.df {
            if d.contains_pand() {
                return Err(ArcadeError::invalid(format!(
                    "component `{}`: PAND is only supported in SYSTEM DOWN",
                    bc.name
                )));
            }
            if d.literals().iter().any(|l| l.component == bc.name) {
                return Err(ArcadeError::invalid(format!(
                    "component `{}`: destructive FDEP references itself",
                    bc.name
                )));
            }
            check_expr(&bc.name, d)?;
        }
    }
    if let Some(e) = &def.system_down {
        check_expr("SYSTEM DOWN", e)?;
    }

    // Repair units.
    let mut repaired_by: HashMap<&str, &str> = HashMap::new();
    let mut unit_names = HashSet::new();
    for ru in &def.repair_units {
        if !unit_names.insert(ru.name.as_str()) {
            return Err(ArcadeError::invalid(format!(
                "duplicate unit name `{}`",
                ru.name
            )));
        }
        if ru.components.is_empty() {
            return Err(ArcadeError::invalid(format!(
                "repair unit `{}` has no components",
                ru.name
            )));
        }
        if ru.strategy == RepairStrategy::Dedicated && ru.components.len() != 1 {
            return Err(ArcadeError::invalid(format!(
                "dedicated repair unit `{}` must serve exactly one component",
                ru.name
            )));
        }
        if matches!(
            ru.strategy,
            RepairStrategy::PreemptivePriority | RepairStrategy::NonPreemptivePriority
        ) && ru.priorities.len() != ru.components.len()
        {
            return Err(ArcadeError::invalid(format!(
                "repair unit `{}`: priority list must match the component list",
                ru.name
            )));
        }
        let mut seen = HashSet::new();
        for c in &ru.components {
            if def.component(c).is_none() {
                return Err(ArcadeError::invalid(format!(
                    "repair unit `{}` references unknown component `{c}`",
                    ru.name
                )));
            }
            if !seen.insert(c.as_str()) {
                return Err(ArcadeError::invalid(format!(
                    "repair unit `{}` lists component `{c}` twice",
                    ru.name
                )));
            }
            if let Some(other) = repaired_by.insert(c, &ru.name) {
                return Err(ArcadeError::invalid(format!(
                    "component `{c}` is repaired by both `{other}` and `{}` \
                     (at most one RU per component, §3.2)",
                    ru.name
                )));
            }
        }
    }

    // Spare management units.
    let mut spare_of: HashMap<&str, &str> = HashMap::new();
    for smu in &def.smus {
        if !unit_names.insert(smu.name.as_str()) {
            return Err(ArcadeError::invalid(format!(
                "duplicate unit name `{}`",
                smu.name
            )));
        }
        let primary = def.component(&smu.primary).ok_or_else(|| {
            ArcadeError::invalid(format!(
                "SMU `{}` references unknown primary `{}`",
                smu.name, smu.primary
            ))
        })?;
        if primary.has_active_inactive() {
            return Err(ArcadeError::invalid(format!(
                "SMU `{}`: the primary `{}` must not have an active/inactive group \
                 (the primary is always active, §3.3)",
                smu.name, smu.primary
            )));
        }
        if smu.spares.is_empty() {
            return Err(ArcadeError::invalid(format!(
                "SMU `{}` has no spares",
                smu.name
            )));
        }
        for sp in &smu.spares {
            let spare = def.component(sp).ok_or_else(|| {
                ArcadeError::invalid(format!(
                    "SMU `{}` references unknown spare `{sp}`",
                    smu.name
                ))
            })?;
            if !spare.has_active_inactive() {
                return Err(ArcadeError::invalid(format!(
                    "SMU `{}`: spare `{sp}` needs an active/inactive OM group",
                    smu.name
                )));
            }
            if let Some(other) = spare_of.insert(sp, &smu.name) {
                return Err(ArcadeError::invalid(format!(
                    "spare `{sp}` is managed by both `{other}` and `{}`",
                    smu.name
                )));
            }
        }
    }
    Ok(())
}

/// Support for builder unit tests: exposes the private `Signals::build`.
#[doc(hidden)]
pub mod test_support {
    use super::*;

    /// Builds the signal table for `def` (no validation).
    pub fn signals(def: &SystemDef, alphabet: &mut Alphabet) -> Signals {
        Signals::build(def, alphabet)
    }
}

fn check_kofn(owner: &str, e: &Expr) -> Result<(), ArcadeError> {
    match e {
        Expr::Lit(_) => Ok(()),
        Expr::And(cs) | Expr::Or(cs) => cs.iter().try_for_each(|c| check_kofn(owner, c)),
        Expr::Pand(cs) => {
            if cs.len() < 2 {
                return Err(ArcadeError::invalid(format!(
                    "`{owner}`: PAND needs at least two children"
                )));
            }
            cs.iter().try_for_each(|c| check_kofn(owner, c))
        }
        Expr::KofN(k, cs) => {
            if *k == 0 || *k as usize > cs.len() {
                return Err(ArcadeError::invalid(format!(
                    "`{owner}`: {k}-of-{} gate is out of range",
                    cs.len()
                )));
            }
            cs.iter().try_for_each(|c| check_kofn(owner, c))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BcDef, RuDef, SmuDef};
    use crate::dist::Dist;

    fn simple_def() -> SystemDef {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.1), Dist::exp(1.0)));
        def.add_component(BcDef::new("b", Dist::exp(0.1), Dist::exp(1.0)));
        def.set_system_down(Expr::and([Expr::down("a"), Expr::down("b")]));
        def
    }

    #[test]
    fn valid_def_passes() {
        assert!(validate(&simple_def()).is_ok());
    }

    #[test]
    fn duplicate_component_rejected() {
        let mut def = simple_def();
        def.add_component(BcDef::new("a", Dist::exp(0.1), Dist::exp(1.0)));
        assert!(validate(&def).is_err());
    }

    #[test]
    fn ttf_arity_checked() {
        let mut def = simple_def();
        def.components[0].ttf = vec![];
        assert!(validate(&def).is_err());
    }

    #[test]
    fn probs_must_sum_to_one() {
        let mut def = simple_def();
        def.components[0].failure_mode_probs = vec![0.5, 0.4];
        def.components[0].ttr = vec![Dist::exp(1.0), Dist::exp(1.0)];
        assert!(validate(&def).is_err());
    }

    #[test]
    fn unknown_reference_in_system_down() {
        let mut def = simple_def();
        def.set_system_down(Expr::down("zz"));
        assert!(validate(&def).is_err());
    }

    #[test]
    fn ru_constraints() {
        let mut def = simple_def();
        def.add_repair_unit(RuDef::new("r1", ["a"], RepairStrategy::Dedicated));
        def.add_repair_unit(RuDef::new("r2", ["a"], RepairStrategy::Fcfs));
        assert!(validate(&def).is_err()); // a repaired twice
        let mut def = simple_def();
        def.add_repair_unit(RuDef::new("r1", ["a", "b"], RepairStrategy::Dedicated));
        assert!(validate(&def).is_err()); // dedicated with 2 comps
        let mut def = simple_def();
        def.add_repair_unit(RuDef::new(
            "r1",
            ["a", "b"],
            RepairStrategy::PreemptivePriority,
        ));
        assert!(validate(&def).is_err()); // missing priorities
    }

    #[test]
    fn param_constraints() {
        let mut def = simple_def();
        def.add_param("lambda", 0.1);
        assert!(validate(&def).is_ok());
        def.add_param("lambda", 0.2);
        assert!(validate(&def).is_err()); // duplicate name
        let mut def = simple_def();
        def.add_param("a", 0.5).add_param("b", 0.5);
        assert!(validate(&def).is_err()); // shared base
        let mut def = simple_def();
        def.add_param("a", 0.0);
        assert!(validate(&def).is_err()); // non-positive base
        let mut def = simple_def();
        def.add_param("a", f64::NAN);
        assert!(validate(&def).is_err()); // non-finite base
    }

    #[test]
    fn smu_constraints() {
        let mut def = simple_def();
        def.add_smu(SmuDef::new("m", "a", ["b"]));
        // b has no active/inactive group
        assert!(validate(&def).is_err());
    }

    #[test]
    fn self_reference_rejected() {
        let mut def = simple_def();
        def.components[0] = BcDef::new("a", Dist::exp(0.1), Dist::exp(1.0))
            .with_df(Expr::down("a"), Dist::exp(1.0));
        assert!(validate(&def).is_err());
    }

    #[test]
    fn kofn_range_checked() {
        let mut def = simple_def();
        def.set_system_down(Expr::k_of_n(3, [Expr::down("a"), Expr::down("b")]));
        assert!(validate(&def).is_err());
    }

    #[test]
    fn signals_mode_matching() {
        let def = simple_def();
        let mut ab = Alphabet::new();
        let s = Signals::build(&def, &mut ab);
        let lit = Literal {
            component: "a".into(),
            mode: ModeRef::Any,
        };
        let sigs = s.down_signals(&lit).unwrap();
        assert_eq!(sigs.len(), 1); // one inherent mode, no df, no na
        assert!(s
            .down_signals(&Literal {
                component: "a".into(),
                mode: ModeRef::Df,
            })
            .is_err());
        assert!(s.up_signal("a").is_ok());
        assert!(s.up_signal("zz").is_err());
    }
}
