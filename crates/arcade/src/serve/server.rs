//! The resident TCP server: bounded worker pool over a newline-delimited
//! JSON protocol (see [`super::protocol`]).
//!
//! # Architecture
//!
//! One **accept loop** thread owns the (non-blocking) listener and feeds
//! accepted connections into a **bounded** channel; `workers` threads
//! drain it. The bound is the overload valve: when every worker is busy
//! and the backlog is full, the accept loop blocks — new connections
//! queue in the kernel instead of piling up requests in memory.
//! Connections are persistent; a worker serves one connection at a time,
//! request by request.
//!
//! # Timeouts and robustness
//!
//! Sockets run with a short poll timeout, so a worker blocked on an idle
//! client re-checks the shutdown flag (and the configured idle limit)
//! every few hundred milliseconds — a silent client cannot wedge the
//! pool, and neither can a client that disconnects mid-response (the
//! write fails, the worker closes the connection and moves on). Request
//! lines are capped at [`ServerConfig::max_line_bytes`]; an oversized
//! line gets a structured `oversized` error and the connection is closed
//! (the remainder of the line is unreadable garbage).
//!
//! # Fault containment
//!
//! Evaluation is cooperatively preemptible: a request carrying
//! `timeout_ms` / `max_states` runs under an ambient
//! [`ioimc::budget::Budget`] that the aggregation and solver loops poll
//! at round/segment boundaries, answering `deadline` / `budget` errors
//! instead of wedging the worker. Panics are caught at three nested
//! boundaries — the session/registry build cells (typed `internal_panic`
//! to the builder *and* every dedup waiter, cell cleared for retry), the
//! per-request dispatch, and the worker loop itself (the pool never
//! shrinks silently). See [`super`] (crate-level *Fault containment*
//! docs) for the full contract and the chaos failpoints that exercise it.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] (or a `{"cmd":"shutdown"}` request, or the
//! `arcaded` binary's SIGTERM/ctrl-c handler) sets one flag: the accept
//! loop stops accepting and drops the channel sender, the workers finish
//! their current connection and exit, and [`ServerHandle::join`] returns.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ioimc::budget::{self, Budget, BudgetKind};

use super::json::Json;
use super::metrics::Metrics;
use super::protocol::{Limits, ProtoError, Request};
use super::registry::Registry;
use crate::chaos;
use crate::engine::EngineOptions;
use crate::error::ArcadeError;
use crate::query::SessionStats;
use crate::sync::panic_message;

/// Protocol schema version stamped into every response envelope.
/// Version 2 added the fault-containment surface: `timeout_ms` /
/// `max_states` request fields, the `deadline` / `budget` /
/// `internal_panic` error codes, and the robustness counters in `stats`.
pub const PROTOCOL_VERSION: u32 = 2;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads (`0` = one per core, minimum 2).
    pub workers: usize,
    /// Engine options every session runs with (threads, solver knobs).
    pub engine: EngineOptions,
    /// Idle limit per connection: a client that sends nothing for this
    /// long is disconnected.
    pub idle_timeout: Duration,
    /// Largest accepted request line, in bytes.
    pub max_line_bytes: usize,
    /// Accepted connections queued ahead of the worker pool.
    pub backlog: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            engine: EngineOptions::new(),
            idle_timeout: Duration::from_secs(300),
            max_line_bytes: 1 << 20,
            backlog: 128,
        }
    }
}

/// Shared server state: registry, counters, shutdown flag.
#[derive(Debug)]
struct Inner {
    registry: Registry,
    metrics: Metrics,
    shutdown: AtomicBool,
    started: Instant,
    idle_timeout: Duration,
    max_line_bytes: usize,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] then [`ServerHandle::join`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful stop: stop accepting, finish in-flight
    /// connections. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a shutdown has been requested (by [`ServerHandle::shutdown`],
    /// a signal handler, or a `shutdown` protocol command).
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the accept loop and every worker to exit. Call
    /// [`ServerHandle::shutdown`] first (or let a protocol `shutdown`
    /// trigger it), otherwise this blocks until one arrives.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Binds the listener and spawns the accept loop plus the worker pool.
///
/// # Errors
///
/// Any I/O error from binding the address.
pub fn serve(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr.as_str())?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = if config.workers == 0 {
        std::thread::available_parallelism().map_or(2, |n| n.get().max(2))
    } else {
        config.workers
    };
    let inner = Arc::new(Inner {
        registry: Registry::new(config.engine.clone()),
        metrics: Metrics::new(),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        idle_timeout: config.idle_timeout,
        max_line_bytes: config.max_line_bytes,
    });
    let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.backlog);
    let rx = Arc::new(Mutex::new(rx));
    let mut worker_handles = Vec::with_capacity(workers);
    for i in 0..workers {
        let inner = Arc::clone(&inner);
        let rx = Arc::clone(&rx);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("arcaded-worker-{i}"))
                .spawn(move || worker_loop(&inner, &rx))
                .expect("spawn worker thread"),
        );
    }
    let accept = {
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("arcaded-accept".to_owned())
            .spawn(move || accept_loop(&listener, &inner, &tx))
            .expect("spawn accept thread")
    };
    Ok(ServerHandle {
        addr,
        inner,
        accept: Some(accept),
        workers: worker_handles,
    })
}

fn accept_loop(listener: &TcpListener, inner: &Inner, tx: &SyncSender<TcpStream>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                Metrics::bump(&inner.metrics.connections);
                // A full backlog blocks here — intended backpressure.
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Dropping `tx` (by returning) closes the channel; workers drain the
    // queued connections and exit.
}

fn worker_loop(inner: &Inner, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Hold the lock only for the receive itself so workers pull
        // connections one at a time.
        let next = {
            let rx = rx.lock().expect("receiver not poisoned");
            rx.recv_timeout(Duration::from_millis(200))
        };
        match next {
            Ok(stream) => {
                // Per-connection errors are already answered in-protocol
                // where possible; anything else just closes the socket.
                // Panics that escape every inner containment boundary are
                // caught HERE so the pool never shrinks silently — the
                // worker drops the connection and serves the next one.
                if std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let _ = handle_connection(inner, stream);
                }))
                .is_err()
                {
                    Metrics::bump(&inner.metrics.panics_caught);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    // Keep draining until the accept loop has closed the
                    // channel, then the Disconnected arm exits.
                    continue;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Outcome of reading one request line.
enum Line {
    /// A complete line (without the trailing newline).
    Some(String),
    /// Clean end of stream.
    Eof,
    /// Line exceeded the configured cap.
    Oversized,
    /// Idle/shutdown — close the connection silently.
    Close,
}

fn handle_connection(inner: &Inner, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    // Short poll so idle reads re-check shutdown and the idle budget.
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    loop {
        match read_line(inner, &mut reader)? {
            Line::Eof | Line::Close => return Ok(()),
            Line::Oversized => {
                Metrics::bump(&inner.metrics.requests);
                Metrics::bump(&inner.metrics.errors);
                let err = ProtoError::with_code(
                    "oversized",
                    format!("request line exceeds {} bytes", inner.max_line_bytes),
                );
                write_response(&mut out, &err.to_json())?;
                // The rest of the line is unread garbage: drain it (so
                // closing does not RST the error response off the wire
                // mid-send), then drop the connection rather than
                // resynchronize.
                drain_line(inner, &mut reader)?;
                return Ok(());
            }
            Line::Some(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let started = Instant::now();
                Metrics::bump(&inner.metrics.requests);
                // Second containment ring: a panic inside request handling
                // answers *this* request with `internal_panic` and keeps
                // the connection alive for the next one.
                let (response, stop) =
                    match std::panic::catch_unwind(AssertUnwindSafe(|| dispatch(inner, &line))) {
                        Ok(r) => r,
                        Err(payload) => {
                            Metrics::bump(&inner.metrics.panics_caught);
                            (
                                ProtoError::with_code(
                                    "internal_panic",
                                    panic_message(payload.as_ref()),
                                )
                                .to_json(),
                                false,
                            )
                        }
                    };
                if response.get("ok") != Some(&Json::Bool(true)) {
                    Metrics::bump(&inner.metrics.errors);
                }
                inner.metrics.total.record(started.elapsed());
                write_response(&mut out, &response)?;
                if stop {
                    return Ok(());
                }
            }
        }
    }
}

/// Reads one `\n`-terminated line, polling so shutdown and the idle
/// budget are honored, and capping the line length.
fn read_line(inner: &Inner, reader: &mut BufReader<TcpStream>) -> std::io::Result<Line> {
    let mut buf: Vec<u8> = Vec::new();
    let idle_start = Instant::now();
    loop {
        if inner.shutdown.load(Ordering::SeqCst) && buf.is_empty() {
            return Ok(Line::Close);
        }
        if idle_start.elapsed() > inner.idle_timeout {
            return Ok(Line::Close);
        }
        // Read whatever the socket has, up to the cap, stopping at `\n`.
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(if buf.is_empty() {
                Line::Eof
            } else {
                Line::Close
            });
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        buf.extend_from_slice(&available[..take]);
        reader.consume(take);
        if buf.len() > inner.max_line_bytes {
            return Ok(Line::Oversized);
        }
        if newline.is_some() {
            buf.pop();
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return Ok(match String::from_utf8(buf) {
                Ok(line) => Line::Some(line),
                // Invalid UTF-8 still yields a parse error in-protocol.
                Err(_) => Line::Some("\u{fffd}".to_owned()),
            });
        }
    }
}

/// Discards input up to and including the next newline (or EOF), bounded
/// by a hard cap so a hostile endless line cannot pin the worker.
fn drain_line(inner: &Inner, reader: &mut BufReader<TcpStream>) -> std::io::Result<()> {
    // Generous but finite: 64x the line cap.
    let mut budget = inner.max_line_bytes.saturating_mul(64);
    let started = Instant::now();
    loop {
        if inner.shutdown.load(Ordering::SeqCst)
            || started.elapsed() > inner.idle_timeout
            || budget == 0
        {
            return Ok(());
        }
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => return Ok(()),
        };
        if available.is_empty() {
            return Ok(());
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let want = newline.map_or(available.len(), |i| i + 1);
        let take = want.min(budget.max(1));
        reader.consume(take);
        budget = budget.saturating_sub(take);
        if newline.is_some() && take == want {
            return Ok(());
        }
    }
}

fn write_response(out: &mut TcpStream, response: &Json) -> std::io::Result<()> {
    let mut text = response.to_string();
    text.push('\n');
    if chaos::failpoint("serve.respond") == chaos::Fired::Torn {
        // Emulate a torn write: half the response bytes, then the
        // connection dies. The returned error closes this connection; the
        // worker stays in the pool and serves the next one.
        let _ = out.write_all(&text.as_bytes()[..text.len() / 2]);
        let _ = out.flush();
        return Err(std::io::Error::new(
            ErrorKind::ConnectionAborted,
            "chaos: torn write injected at serve.respond",
        ));
    }
    out.write_all(text.as_bytes())?;
    out.flush()
}

/// Parses and executes one request line. Returns the response and whether
/// the connection should close after it (shutdown acknowledgements).
fn dispatch(inner: &Inner, line: &str) -> (Json, bool) {
    let parse_started = Instant::now();
    let parsed = Json::parse(line);
    inner.metrics.parse.record(parse_started.elapsed());
    let value = match parsed {
        Ok(v) => v,
        Err(e) => {
            return (
                ProtoError::with_code("bad_json", e.to_string()).to_json(),
                false,
            )
        }
    };
    let request = match Request::from_json(&value) {
        Ok(r) => r,
        Err(e) => return (e.to_json(), false),
    };
    match request {
        Request::Ping => (ok_envelope(vec![("pong", Json::Bool(true))]), false),
        Request::List => {
            let models = inner
                .registry
                .list()
                .into_iter()
                .map(Json::Str)
                .collect::<Vec<_>>();
            (ok_envelope(vec![("models", Json::Arr(models))]), false)
        }
        Request::Load { name, source } => match inner.registry.load(&name, &source) {
            Ok(()) => (ok_envelope(vec![("loaded", Json::Str(name))]), false),
            Err(e) => (e.to_json(), false),
        },
        Request::Stats => (stats_response(inner), false),
        Request::Shutdown => {
            inner.shutdown.store(true, Ordering::SeqCst);
            (ok_envelope(vec![("shutting_down", Json::Bool(true))]), true)
        }
        Request::Query {
            model,
            measures,
            limits,
        } => (query_response(inner, &model, &measures, limits), false),
        Request::Sweep {
            model,
            measures,
            grid,
            limits,
        } => (
            sweep_response(inner, &model, &measures, &grid, limits),
            false,
        ),
    }
}

/// The per-request compute budget, when the request carries limits.
fn request_budget(limits: Limits) -> Option<Arc<Budget>> {
    if !limits.is_some() {
        return None;
    }
    let mut b = Budget::unlimited();
    if let Some(ms) = limits.timeout_ms {
        b = b.with_deadline(Duration::from_millis(ms));
    }
    if let Some(states) = limits.max_states {
        b = b.with_max_states(states);
    }
    Some(Arc::new(b))
}

/// Runs one evaluation phase with the request budget installed as the
/// ambient budget and every panic converted to a typed [`ArcadeError`]
/// (budget trips keep their structure; anything else becomes
/// [`ArcadeError::Internal`]).
fn eval_guarded<R>(
    budget: &Option<Arc<Budget>>,
    f: impl FnOnce() -> Result<R, ArcadeError>,
) -> Result<R, ArcadeError> {
    let scoped = budget.clone();
    match std::panic::catch_unwind(AssertUnwindSafe(|| budget::scope(scoped, f))) {
        Ok(r) => r,
        Err(payload) => Err(crate::query::classify_panic(
            payload.as_ref(),
            budget.as_deref(),
        )),
    }
}

/// Maps an evaluation error to its wire code — `deadline` for an expired
/// wall clock, `budget` for a size ceiling or cancellation,
/// `internal_panic` for a contained panic, `model_error` otherwise — and
/// bumps the matching containment counter.
fn arcade_error_response(inner: &Inner, e: &ArcadeError) -> Json {
    let code = match e {
        ArcadeError::Budget(b) => {
            if b.kind == BudgetKind::Deadline {
                Metrics::bump(&inner.metrics.deadline_aborts);
                "deadline"
            } else {
                Metrics::bump(&inner.metrics.budget_aborts);
                "budget"
            }
        }
        ArcadeError::Internal(_) => {
            Metrics::bump(&inner.metrics.panics_caught);
            "internal_panic"
        }
        _ => "model_error",
    };
    ProtoError::with_code(code, e.to_string()).to_json()
}

fn query_response(
    inner: &Inner,
    model: &str,
    measures: &[crate::query::Measure],
    limits: Limits,
) -> Json {
    let budget = request_budget(limits);
    let build_started = Instant::now();
    let (session, retried) = inner.registry.session_traced(model);
    if retried {
        Metrics::bump(&inner.metrics.retries);
    }
    let session = match session {
        Ok(s) => s,
        Err(e) => {
            if e.code == "internal_panic" {
                Metrics::bump(&inner.metrics.panics_caught);
            }
            return e.to_json();
        }
    };
    // Build phase: aggregate exactly the configurations the batch needs
    // (deduplicated inside the shared session), timed separately from the
    // sweeps.
    let trace = match eval_guarded(&budget, || session.prefetch_measures(measures)) {
        Ok(t) => t,
        Err(e) => return arcade_error_response(inner, &e),
    };
    let build_elapsed = build_started.elapsed();
    inner.metrics.build.record(build_elapsed);
    let cold = trace.built > 0 || trace.waited > 0;
    if trace.built > 0 {
        Metrics::bump(&inner.metrics.cache_misses);
    } else if trace.waited > 0 {
        Metrics::bump(&inner.metrics.dedup_waits);
    } else {
        Metrics::bump(&inner.metrics.cache_hits);
    }
    let eval_started = Instant::now();
    let values = match eval_guarded(&budget, || session.evaluate(measures)) {
        Ok(v) => v,
        Err(e) => return arcade_error_response(inner, &e),
    };
    let eval_elapsed = eval_started.elapsed();
    inner.metrics.evaluate.record(eval_elapsed);
    ok_envelope(vec![
        ("model", Json::str(model)),
        (
            "values",
            Json::Arr(values.into_iter().map(Json::Num).collect()),
        ),
        ("cold", Json::Bool(cold)),
        (
            "trace",
            Json::obj([
                ("built", Json::Num(f64::from(trace.built))),
                ("waited", Json::Num(f64::from(trace.waited))),
            ]),
        ),
        ("session", session_stats_json(&session.stats())),
        (
            "timings",
            Json::obj([
                ("build_us", Json::Num(build_elapsed.as_micros() as f64)),
                ("evaluate_us", Json::Num(eval_elapsed.as_micros() as f64)),
            ]),
        ),
    ])
}

fn sweep_response(
    inner: &Inner,
    model: &str,
    measures: &[crate::query::Measure],
    grid: &crate::query::ParamGrid,
    limits: Limits,
) -> Json {
    let budget = request_budget(limits);
    let build_started = Instant::now();
    let (session, retried) = inner.registry.session_traced(model);
    if retried {
        Metrics::bump(&inner.metrics.retries);
    }
    let session = match session {
        Ok(s) => s,
        Err(e) => {
            if e.code == "internal_panic" {
                Metrics::bump(&inner.metrics.panics_caught);
            }
            return e.to_json();
        }
    };
    // Same build-phase attribution as a query: the sweep itself re-rates
    // the prefetched aggregations, so everything after this line is
    // per-point solver work.
    let trace = match eval_guarded(&budget, || session.prefetch_measures(measures)) {
        Ok(t) => t,
        Err(e) => return arcade_error_response(inner, &e),
    };
    let build_elapsed = build_started.elapsed();
    inner.metrics.build.record(build_elapsed);
    let cold = trace.built > 0 || trace.waited > 0;
    if trace.built > 0 {
        Metrics::bump(&inner.metrics.cache_misses);
    } else if trace.waited > 0 {
        Metrics::bump(&inner.metrics.dedup_waits);
    } else {
        Metrics::bump(&inner.metrics.cache_hits);
    }
    let eval_started = Instant::now();
    let result = match eval_guarded(&budget, || session.sweep(measures, grid)) {
        Ok(r) => r,
        Err(e) => return arcade_error_response(inner, &e),
    };
    let eval_elapsed = eval_started.elapsed();
    inner.metrics.evaluate.record(eval_elapsed);
    let rows = |rows: &[Vec<f64>]| {
        Json::Arr(
            rows.iter()
                .map(|row| Json::Arr(row.iter().copied().map(Json::Num).collect()))
                .collect(),
        )
    };
    let sensitivities = Json::Arr(
        result
            .sensitivities
            .iter()
            .map(|per_measure| {
                Json::Arr(
                    per_measure
                        .iter()
                        .map(|per_param| {
                            Json::Arr(
                                per_param
                                    .iter()
                                    .map(|s| s.map_or(Json::Null, Json::Num))
                                    .collect(),
                            )
                        })
                        .collect(),
                )
            })
            .collect(),
    );
    ok_envelope(vec![
        ("model", Json::str(model)),
        (
            "params",
            Json::Arr(result.names.iter().map(Json::str).collect()),
        ),
        ("points", rows(&result.points)),
        ("values", rows(&result.values)),
        ("sensitivities", sensitivities),
        ("cold", Json::Bool(cold)),
        ("session", session_stats_json(&session.stats())),
        (
            "timings",
            Json::obj([
                ("build_us", Json::Num(build_elapsed.as_micros() as f64)),
                ("evaluate_us", Json::Num(eval_elapsed.as_micros() as f64)),
            ]),
        ),
    ])
}

fn stats_response(inner: &Inner) -> Json {
    let models = inner
        .registry
        .session_stats()
        .into_iter()
        .map(|(name, stats)| {
            Json::obj([
                ("name", Json::Str(name)),
                ("stats", session_stats_json(&stats)),
            ])
        })
        .collect::<Vec<_>>();
    ok_envelope(vec![
        (
            "uptime_secs",
            Json::Num(inner.started.elapsed().as_secs_f64()),
        ),
        ("server", inner.metrics.to_json()),
        ("models", Json::Arr(models)),
    ])
}

/// The success envelope every response shares.
fn ok_envelope(fields: Vec<(&'static str, Json)>) -> Json {
    let mut all = vec![
        ("ok", Json::Bool(true)),
        ("schema_version", Json::Num(f64::from(PROTOCOL_VERSION))),
    ];
    all.extend(fields);
    Json::obj(all)
}

/// A [`SessionStats`] snapshot as a JSON object (the same counters
/// `arcade analyze --json` reports, plus the aggregation-level ones).
pub fn session_stats_json(stats: &SessionStats) -> Json {
    Json::obj([
        (
            "aggregations_built",
            Json::Num(f64::from(stats.aggregations_built)),
        ),
        (
            "absorbing_built",
            Json::Num(f64::from(stats.absorbing_built)),
        ),
        ("steady_solves", Json::Num(f64::from(stats.steady_solves))),
        ("poisson_hits", Json::Num(stats.poisson_hits as f64)),
        ("poisson_misses", Json::Num(stats.poisson_misses as f64)),
        (
            "poisson_evictions",
            Json::Num(stats.poisson_evictions as f64),
        ),
        ("dtmc_steps", Json::Num(stats.dtmc_steps as f64)),
        ("sweeps", Json::Num(stats.sweeps as f64)),
        (
            "aggregation_secs",
            Json::Num(stats.aggregation_us as f64 / 1e6),
        ),
        ("signature_secs", Json::Num(stats.signature_us as f64 / 1e6)),
        ("split_secs", Json::Num(stats.split_us as f64 / 1e6)),
        ("quotient_secs", Json::Num(stats.quotient_us as f64 / 1e6)),
        ("refine_rounds", Json::Num(stats.refine_rounds as f64)),
        ("states_resigned", Json::Num(stats.states_resigned as f64)),
    ])
}

/// Resolves a `host:port` string to the first socket address (helper for
/// binaries and clients).
///
/// # Errors
///
/// I/O error when resolution fails or yields nothing.
pub fn resolve_addr(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(ErrorKind::InvalidInput, format!("cannot resolve `{addr}`"))
    })
}
