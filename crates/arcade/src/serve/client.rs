//! A minimal blocking client for the `arcaded` line protocol.
//!
//! One JSON object per line out, one per line back — see
//! [`super::protocol`] for the wire format. The client is what the
//! `serve_smoke` / `serve_chaos` CI binaries and the `serve_bench` load
//! generator use, and doubles as the reference implementation for talking
//! to the daemon from other tooling.
//!
//! For fault tolerance, [`Client::expect_ok_retry`] retries **retryable**
//! failures — transport errors (a dropped or torn connection) and
//! `internal_panic` responses (a contained server-side panic whose cell
//! was cleared for rebuild) — with exponential backoff plus jitter,
//! reconnecting as needed. Deterministic errors (`bad_request`,
//! `unknown_model`, `model_error`, `deadline`, `budget`) are returned
//! immediately: retrying cannot change them.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use smallrand::SmallRng;

use super::json::Json;
use super::protocol::ProtoError;

/// A persistent connection to an `arcaded` server.
#[derive(Debug)]
pub struct Client {
    addr: String,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7171`).
    ///
    /// # Errors
    ///
    /// Any I/O error from connecting.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            addr: addr.to_owned(),
            stream,
            reader,
        })
    }

    /// Connects, retrying for up to `budget` (for racing a server that is
    /// still booting).
    ///
    /// # Errors
    ///
    /// The final connect error once the budget is exhausted.
    pub fn connect_retry(addr: &str, budget: Duration) -> std::io::Result<Self> {
        let started = std::time::Instant::now();
        loop {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if started.elapsed() >= budget => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Sends one request object and reads one response line.
    ///
    /// # Errors
    ///
    /// I/O errors on the socket, or a protocol-level error when the
    /// response is not parseable JSON or the connection closed early.
    pub fn roundtrip(&mut self, request: &Json) -> Result<Json, ProtoError> {
        let io_err = |e: std::io::Error| ProtoError::with_code("io", e.to_string());
        let mut line = request.to_string();
        line.push('\n');
        self.stream.write_all(line.as_bytes()).map_err(io_err)?;
        self.stream.flush().map_err(io_err)?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).map_err(io_err)?;
        if n == 0 {
            return Err(ProtoError::with_code(
                "io",
                "server closed the connection".to_owned(),
            ));
        }
        if !response.ends_with('\n') {
            // A line protocol response always ends in a newline; bytes
            // without one mean the connection died mid-response (e.g. a
            // torn write) — a transport error, not a protocol one, so it
            // is retryable.
            return Err(ProtoError::with_code(
                "io",
                "connection closed mid-response (torn write)".to_owned(),
            ));
        }
        Json::parse(response.trim_end())
            .map_err(|e| ProtoError::with_code("bad_json", format!("unparseable response: {e}")))
    }

    /// A `query` request: evaluates `measures` (protocol measure specs —
    /// strings or `{kind, t}` objects) against `model`, returning the full
    /// response object.
    ///
    /// # Errors
    ///
    /// Transport errors, or the server's structured error when the
    /// response has `ok: false`.
    pub fn query(
        &mut self,
        model: &str,
        measures: Json,
        times: Option<Json>,
    ) -> Result<Json, ProtoError> {
        let mut fields = vec![("model", Json::str(model)), ("measures", measures)];
        if let Some(times) = times {
            fields.push(("times", times));
        }
        self.expect_ok(&Json::obj(fields))
    }

    /// A `stats` request.
    ///
    /// # Errors
    ///
    /// Transport errors or a server-side error response.
    pub fn stats(&mut self) -> Result<Json, ProtoError> {
        self.expect_ok(&Json::obj([("cmd", Json::str("stats"))]))
    }

    /// A `ping` request.
    ///
    /// # Errors
    ///
    /// Transport errors or a server-side error response.
    pub fn ping(&mut self) -> Result<Json, ProtoError> {
        self.expect_ok(&Json::obj([("cmd", Json::str("ping"))]))
    }

    /// A `shutdown` request (the server acknowledges, then stops).
    ///
    /// # Errors
    ///
    /// Transport errors or a server-side error response.
    pub fn shutdown(&mut self) -> Result<Json, ProtoError> {
        self.expect_ok(&Json::obj([("cmd", Json::str("shutdown"))]))
    }

    /// Sends `request` and converts an `ok: false` response into the
    /// structured [`ProtoError`] it carries.
    ///
    /// # Errors
    ///
    /// Transport errors, or the decoded server error.
    pub fn expect_ok(&mut self, request: &Json) -> Result<Json, ProtoError> {
        let response = self.roundtrip(request)?;
        if response.get("ok") == Some(&Json::Bool(true)) {
            return Ok(response);
        }
        let (code, message) = response
            .get("error")
            .map(|e| {
                (
                    e.get("code").and_then(Json::as_str).unwrap_or("error"),
                    e.get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown server error"),
                )
            })
            .unwrap_or(("error", "malformed error response"));
        // Error codes on the wire are dynamic; map the known ones back to
        // their static names so callers can match on `err.code`.
        let known = [
            "bad_json",
            "bad_request",
            "unknown_model",
            "model_error",
            "oversized",
            "shutting_down",
            "deadline",
            "budget",
            "internal_panic",
        ];
        let code = known
            .iter()
            .find(|k| **k == code)
            .copied()
            .unwrap_or("error");
        Err(ProtoError::with_code(code, message.to_owned()))
    }

    /// Whether retrying `e` can plausibly succeed: transport failures
    /// (the connection died — possibly mid-response) and contained
    /// server-side panics (the build cell was cleared; the next attempt
    /// rebuilds). Everything else is deterministic.
    pub fn is_retryable(e: &ProtoError) -> bool {
        matches!(e.code, "io" | "internal_panic")
    }

    /// Like [`Client::expect_ok`], but retries retryable failures up to
    /// `attempts` total tries with exponential backoff (10 ms doubling,
    /// capped at 1 s) plus uniform jitter, reconnecting after transport
    /// errors.
    ///
    /// # Errors
    ///
    /// The last error once the attempts are exhausted, or the first
    /// non-retryable error.
    pub fn expect_ok_retry(&mut self, request: &Json, attempts: u32) -> Result<Json, ProtoError> {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0x5eed, |d| d.subsec_nanos().into());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut backoff_ms = 10u64;
        let mut tries = 0u32;
        loop {
            match self.expect_ok(request) {
                Ok(r) => return Ok(r),
                Err(e) if tries + 1 < attempts && Self::is_retryable(&e) => {
                    tries += 1;
                    if e.code == "io" {
                        // The connection is suspect (torn write, worker
                        // death): replace it before the next try.
                        if let Ok(fresh) = Self::connect(&self.addr) {
                            *self = fresh;
                        }
                    }
                    let jitter = rng.below(backoff_ms.max(1));
                    std::thread::sleep(Duration::from_millis(backoff_ms + jitter));
                    backoff_ms = (backoff_ms * 2).min(1000);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The values array of a query response as `f64`s.
    ///
    /// # Errors
    ///
    /// `bad_json` when the response has no numeric `values` array.
    pub fn values(response: &Json) -> Result<Vec<f64>, ProtoError> {
        response
            .get("values")
            .and_then(Json::as_arr)
            .map(|vs| vs.iter().filter_map(Json::as_f64).collect::<Vec<f64>>())
            .ok_or_else(|| {
                ProtoError::with_code("bad_json", "response has no values array".to_owned())
            })
    }
}
