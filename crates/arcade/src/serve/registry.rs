//! The model registry: named models → warm, shared [`Session`]s.
//!
//! Two layers of caching back the `arcaded` server:
//!
//! 1. **Registry keys** — each model name owns one panic-safe
//!    [`RetryCell`]. Concurrent requests for a name that is not cached yet
//!    race to the same cell; exactly one creates the session, the rest
//!    block until it exists. A builder that **panics** (a bug, or an
//!    injected `serve.build` chaos fault) does not wedge the cell: every
//!    waiter is answered with a structured `internal_panic` error and the
//!    cell is cleared, so the next request rebuilds from scratch.
//!    Deterministic failures (resolution, validation) *are* cached —
//!    retrying cannot change them. The entry map itself is behind a
//!    [`RwLock`] taken only long enough to clone the per-key `Arc` —
//!    never across a build.
//! 2. **Session artifacts** — the expensive work (compositional
//!    aggregation, steady vectors, Poisson weights) is deduplicated
//!    *inside* the shared [`Session`] with the same panic-safe cells,
//!    so N clients firing the same cold query trigger exactly one
//!    aggregation and N−1 waiters ([`crate::query::EvalTrace`] reports
//!    which side of that race a call was on).
//!
//! Names resolve to `load`-ed models first, then to the built-in case
//! families: `dds`, `dds_scaled(n)`, `rcs`, `rcs_scaled(k)`,
//! `rcs_stiff(k)` and `rcs_scaled_kofn(n,k)`. Built-in sizes are capped —
//! state spaces grow combinatorially, and an unbounded `rcs_scaled(9)`
//! request must not be able to take the daemon down.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use super::protocol::ProtoError;
use crate::ast::SystemDef;
use crate::cases;
use crate::chaos;
use crate::engine::EngineOptions;
use crate::parser::parse_system;
use crate::query::Session;
use crate::sync::{panic_message, CellError, RetryCell};

/// Largest accepted `dds_scaled`/`rcs_stiff` family size.
const MAX_LINEAR_SIZE: usize = 16;
/// Largest accepted `rcs_scaled`/`rcs_scaled_kofn` line count (the state
/// space is already ~84k states at 2 lines and grows by orders of
/// magnitude per extra line).
const MAX_RCS_LINES: usize = 3;

/// One registry entry: the panic-safe dedup cell plus an attempt counter.
/// An attempt number above zero means an earlier in-flight build died
/// (panicked) and this build is the registry healing itself.
#[derive(Debug, Default)]
struct SessionSlot {
    cell: RetryCell<Result<Arc<Session>, ProtoError>, ProtoError>,
    attempts: AtomicU64,
}

type SessionCell = Arc<SessionSlot>;

/// The shared model registry. One per server; cheap to share via `Arc`.
#[derive(Debug)]
pub struct Registry {
    opts: EngineOptions,
    /// Models registered over the wire (`"cmd":"load"`).
    loaded: RwLock<HashMap<String, Arc<SystemDef>>>,
    /// Session cache, one once-cell per model name.
    sessions: RwLock<HashMap<String, SessionCell>>,
}

impl Registry {
    /// Creates an empty registry whose sessions run with `opts`.
    pub fn new(opts: EngineOptions) -> Self {
        Self {
            opts,
            loaded: RwLock::new(HashMap::new()),
            sessions: RwLock::new(HashMap::new()),
        }
    }

    /// Registers (or replaces) a model parsed from Arcade textual syntax
    /// and drops any cached session for that name.
    ///
    /// # Errors
    ///
    /// `model_error` when the source fails to parse or validate.
    pub fn load(&self, name: &str, source: &str) -> Result<(), ProtoError> {
        let def = parse_system(source)
            .map_err(|e| ProtoError::with_code("model_error", e.to_string()))?;
        crate::model::validate(&def)
            .map_err(|e| ProtoError::with_code("model_error", e.to_string()))?;
        self.loaded
            .write()
            .expect("loaded map not poisoned")
            .insert(name.to_owned(), Arc::new(def));
        self.sessions
            .write()
            .expect("session map not poisoned")
            .remove(name);
        Ok(())
    }

    /// The names this registry can currently serve: every loaded model
    /// plus the built-in family stems (sorted, loaded models first).
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .loaded
            .read()
            .expect("loaded map not poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort_unstable();
        for builtin in [
            "dds",
            "dds_parametric",
            "dds_scaled(n)",
            "dds_scaled_parametric(n)",
            "rcs",
            "rcs_scaled(k)",
            "rcs_scaled_kofn(n,k)",
            "rcs_scaled_parametric(k)",
            "rcs_stiff(k)",
        ] {
            names.push(builtin.to_owned());
        }
        names
    }

    /// The warm session for `name`, creating (and caching) it on first
    /// use. Concurrent cold requests block on one shared cell; a cached
    /// resolution error is returned to every later request for the name
    /// (resolution is deterministic, retrying cannot help) — except for
    /// unknown names, which are **not** cached so a later `load` can
    /// supply them. A build that **panics** answers its own request and
    /// every blocked waiter with `internal_panic` and leaves the cell
    /// empty, so the next request rebuilds.
    ///
    /// # Errors
    ///
    /// `unknown_model` for names nothing resolves; `bad_request` for
    /// out-of-range built-in sizes; `model_error` when session creation
    /// fails validation; `internal_panic` when the build (ours or the one
    /// we waited on) panicked.
    pub fn session(&self, name: &str) -> Result<Arc<Session>, ProtoError> {
        self.session_traced(name).0
    }

    /// Like [`Registry::session`], additionally reporting whether this
    /// call re-ran a build after an earlier in-flight attempt died — the
    /// server's `retries` counter keys off this.
    pub fn session_traced(&self, name: &str) -> (Result<Arc<Session>, ProtoError>, bool) {
        let slot = {
            let map = self.sessions.read().expect("session map not poisoned");
            map.get(name).cloned()
        };
        let slot = match slot {
            Some(s) => s,
            None => {
                // Unknown names fail *before* inserting a cell, so they
                // are never negatively cached against a future `load`.
                if let Err(e) = self.resolve_def(name) {
                    return (Err(e), false);
                }
                let mut map = self.sessions.write().expect("session map not poisoned");
                map.entry(name.to_owned()).or_default().clone()
            }
        };
        let mut retried = false;
        let built = slot.cell.get_or_try_init(|| {
            retried = slot.attempts.fetch_add(1, Ordering::Relaxed) > 0;
            // The panic is caught *here* (not left to the RetryCell's own
            // unwinding path) so the builder's request gets the same typed
            // `internal_panic` error as its waiters instead of unwinding
            // through the worker.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                chaos::failpoint("serve.build");
                let def = self.resolve_def(name)?;
                let session = Session::new(&def)
                    .map_err(|e| ProtoError::with_code("model_error", e.to_string()))?
                    .with_options(self.opts.clone());
                Ok(Arc::new(session))
            })) {
                // Deterministic outcome (success or resolution/validation
                // error): cache it forever.
                Ok(result) => Ok(result),
                // Transient: typed error to everyone, cell stays empty.
                Err(payload) => Err(ProtoError::with_code(
                    "internal_panic",
                    panic_message(payload.as_ref()),
                )),
            }
        });
        let result = match built {
            Ok(cached) => cached,
            Err(CellError::Init(e)) => Err(e),
            Err(CellError::Interrupted) => Err(ProtoError::with_code(
                "internal_panic",
                "in-flight session build was interrupted; retry".to_owned(),
            )),
        };
        (result, retried)
    }

    /// Per-model session statistics for every session that exists, sorted
    /// by name (the `models` section of the stats endpoint).
    pub fn session_stats(&self) -> Vec<(String, crate::query::SessionStats)> {
        let map = self.sessions.read().expect("session map not poisoned");
        let mut out: Vec<(String, crate::query::SessionStats)> = map
            .iter()
            .filter_map(|(name, slot)| {
                let session = slot.cell.get()?.ok()?;
                Some((name.clone(), session.stats()))
            })
            .collect();
        drop(map);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Resolves a name to a model definition: loaded models shadow the
    /// built-in families.
    fn resolve_def(&self, name: &str) -> Result<Arc<SystemDef>, ProtoError> {
        if let Some(def) = self
            .loaded
            .read()
            .expect("loaded map not poisoned")
            .get(name)
        {
            return Ok(def.clone());
        }
        builtin_def(name)
    }
}

/// Resolves a built-in case-family name (`dds`, `rcs_scaled(2)`, …).
fn builtin_def(name: &str) -> Result<Arc<SystemDef>, ProtoError> {
    let unknown = || {
        ProtoError::with_code(
            "unknown_model",
            format!(
                "no model named `{name}` (built-ins: dds, dds_parametric, \
                 dds_scaled(n), dds_scaled_parametric(n), rcs, rcs_scaled(k), \
                 rcs_stiff(k), rcs_scaled_kofn(n,k), rcs_scaled_parametric(k))"
            ),
        )
    };
    match name {
        "dds" => return Ok(Arc::new(cases::dds())),
        "dds_parametric" => return Ok(Arc::new(cases::dds_parametric())),
        "rcs" => return Ok(Arc::new(cases::rcs())),
        _ => {}
    }
    let (stem, args) = parse_family(name).ok_or_else(unknown)?;
    let range_err = |what: &str, min: usize, max: usize| {
        ProtoError::bad_request(format!("{stem}: {what} must be in {min}..={max}"))
    };
    // The RCS constructors panic below two lines ("a single redundant
    // line is not an RCS"), so the wire-facing floor is 2.
    match (stem, args.as_slice()) {
        ("dds_scaled", &[n]) => {
            if !(1..=MAX_LINEAR_SIZE).contains(&n) {
                return Err(range_err("cluster count", 1, MAX_LINEAR_SIZE));
            }
            Ok(Arc::new(cases::dds_scaled(n)))
        }
        ("dds_scaled_parametric", &[n]) => {
            if !(1..=MAX_LINEAR_SIZE).contains(&n) {
                return Err(range_err("cluster count", 1, MAX_LINEAR_SIZE));
            }
            Ok(Arc::new(cases::dds_scaled_parametric(n)))
        }
        ("rcs_scaled", &[k]) => {
            if !(2..=MAX_RCS_LINES).contains(&k) {
                return Err(range_err("line count", 2, MAX_RCS_LINES));
            }
            Ok(Arc::new(cases::rcs_scaled(k)))
        }
        ("rcs_scaled_parametric", &[k]) => {
            if !(2..=MAX_RCS_LINES).contains(&k) {
                return Err(range_err("line count", 2, MAX_RCS_LINES));
            }
            Ok(Arc::new(cases::rcs_scaled_parametric(k)))
        }
        ("rcs_stiff", &[k]) => {
            if !(2..=MAX_LINEAR_SIZE).contains(&k) {
                return Err(range_err("line count", 2, MAX_LINEAR_SIZE));
            }
            Ok(Arc::new(cases::rcs_stiff(k)))
        }
        ("rcs_scaled_kofn", &[n, k]) => {
            if !(2..=MAX_RCS_LINES).contains(&n) {
                return Err(range_err("line count", 2, MAX_RCS_LINES));
            }
            if !(1..=n).contains(&k) {
                return Err(ProtoError::bad_request(format!(
                    "rcs_scaled_kofn: k must be in 1..={n}"
                )));
            }
            Ok(Arc::new(cases::rcs_scaled_kofn(n, k)))
        }
        _ => Err(unknown()),
    }
}

/// Splits `stem(a)` / `stem(a,b)` into the stem and its integer args.
fn parse_family(name: &str) -> Option<(&str, Vec<usize>)> {
    let open = name.find('(')?;
    let inner = name.get(open + 1..)?.strip_suffix(')')?;
    let args: Option<Vec<usize>> = inner
        .split(',')
        .map(|a| a.trim().parse::<usize>().ok())
        .collect();
    Some((&name[..open], args?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Measure;

    fn registry() -> Registry {
        Registry::new(EngineOptions::new())
    }

    #[test]
    fn builtin_names_resolve() {
        let r = registry();
        for name in [
            "dds",
            "rcs",
            "dds_scaled(2)",
            "rcs_stiff(2)",
            "rcs_scaled_kofn(2, 1)",
        ] {
            assert!(r.session(name).is_ok(), "{name}");
        }
    }

    #[test]
    fn sessions_are_cached_per_name() {
        let r = registry();
        let a = r.session("dds_scaled(2)").unwrap();
        let b = r.session("dds_scaled(2)").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
    }

    #[test]
    fn unknown_and_oversized_names_error() {
        let r = registry();
        assert_eq!(r.session("nope").unwrap_err().code, "unknown_model");
        assert_eq!(
            r.session("dds_scaled(x)").unwrap_err().code,
            "unknown_model"
        );
        assert_eq!(
            r.session("dds_scaled(999)").unwrap_err().code,
            "bad_request"
        );
        assert_eq!(r.session("rcs_scaled(9)").unwrap_err().code, "bad_request");
        assert_eq!(r.session("rcs_scaled(1)").unwrap_err().code, "bad_request");
        assert_eq!(r.session("rcs_stiff(1)").unwrap_err().code, "bad_request");
        assert_eq!(
            r.session("rcs_scaled_kofn(2,3)").unwrap_err().code,
            "bad_request"
        );
    }

    #[test]
    fn load_registers_and_shadows() {
        let r = registry();
        let source = crate::printer::to_arcade_text(&cases::dds());
        r.load("mine", &source).unwrap();
        assert!(r.session("mine").is_ok());
        // Unknown names are not negatively cached: load after a miss works.
        assert_eq!(r.session("later").unwrap_err().code, "unknown_model");
        r.load("later", &source).unwrap();
        assert!(r.session("later").is_ok());
        // A load invalidates the cached session for the name.
        let before = r.session("mine").unwrap();
        r.load("mine", &source).unwrap();
        let after = r.session("mine").unwrap();
        assert!(!Arc::ptr_eq(&before, &after));
        // Bad source is a model_error.
        assert_eq!(r.load("bad", "not arcade").unwrap_err().code, "model_error");
    }

    #[test]
    fn panicking_build_answers_typed_and_heals() {
        // Regression: a panic inside the session builder used to leave
        // waiters racing to silently re-run the build with no record of
        // the failure. Now the first request gets `internal_panic` and the
        // second rebuilds successfully — and reports itself as a retry.
        let _g = chaos::test_lock();
        chaos::disarm_all();
        chaos::arm("serve.build", chaos::Action::Panic, Some(1));
        let r = registry();
        let (first, retried) = r.session_traced("dds");
        assert_eq!(first.unwrap_err().code, "internal_panic");
        assert!(!retried, "first attempt is not a retry");
        let (second, retried) = r.session_traced("dds");
        assert!(second.is_ok(), "cell must heal after a panicked build");
        assert!(retried, "the healing build counts as a retry");
        // Warm now: no further builds, no retry flag.
        let (third, retried) = r.session_traced("dds");
        assert!(third.is_ok() && !retried);
        chaos::disarm_all();
    }

    #[test]
    fn concurrent_waiters_on_a_panicked_build_all_unblock() {
        let _g = chaos::test_lock();
        chaos::disarm_all();
        chaos::arm("serve.build", chaos::Action::Panic, Some(1));
        let r = Arc::new(registry());
        let outcomes: Vec<Result<Arc<Session>, ProtoError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    let r = Arc::clone(&r);
                    s.spawn(move || r.session("dds_scaled(2)"))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        chaos::disarm_all();
        // Exactly one build hit the armed panic; its builder and any
        // waiters that blocked on it got `internal_panic`, everyone else
        // raced past the cleared cell and rebuilt successfully. Nobody
        // hangs, and at least the panicked builder saw the typed error.
        let failed = outcomes
            .iter()
            .filter(|o| o.as_ref().is_err_and(|e| e.code == "internal_panic"))
            .count();
        let succeeded = outcomes.iter().filter(|o| o.is_ok()).count();
        assert_eq!(failed + succeeded, 6);
        assert!(failed >= 1, "the panicked build must surface somewhere");
        // The registry stays usable afterwards.
        assert!(r.session("dds_scaled(2)").is_ok());
    }

    #[test]
    fn concurrent_cold_lookups_share_one_session() {
        let r = Arc::new(registry());
        let sessions: Vec<Arc<Session>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let r = Arc::clone(&r);
                    s.spawn(move || r.session("dds_scaled(2)").unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for other in &sessions[1..] {
            assert!(Arc::ptr_eq(&sessions[0], other));
        }
        // And concurrent evaluations on the shared session dedupe the
        // aggregation: exactly one build in total.
        let measures = [Measure::SteadyStateUnavailability];
        std::thread::scope(|s| {
            for _ in 0..4 {
                let session = Arc::clone(&sessions[0]);
                let measures = &measures;
                s.spawn(move || session.evaluate(measures).unwrap());
            }
        });
        assert_eq!(sessions[0].stats().aggregations_built, 1);
        let stats = r.session_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].0, "dds_scaled(2)");
    }
}
