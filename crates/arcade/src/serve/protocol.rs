//! The `arcaded` wire protocol: newline-delimited JSON requests.
//!
//! One request is one JSON object on one line; the server answers with
//! exactly one JSON object on one line. Connections are persistent — a
//! client may send any number of requests back to back.
//!
//! # Requests
//!
//! ```text
//! {"cmd":"query","model":"dds","measures":["unavailability"],"times":[10,20]}
//! {"cmd":"sweep","model":"dds_parametric","measures":["mttf"],
//!  "params":[{"name":"disk_rate","values":[1e-4,2e-4]}]}
//! {"cmd":"stats"}
//! {"cmd":"list"}
//! {"cmd":"load","name":"mine","source":"<model in Arcade textual syntax>"}
//! {"cmd":"ping"}
//! {"cmd":"shutdown"}
//! ```
//!
//! `"cmd"` defaults to `"query"` when omitted and a `"model"` field is
//! present. A query names a model from the registry (a built-in family
//! like `dds` / `rcs_scaled(2)` or a previously `load`-ed model) and a
//! measure batch. Measures are either plain strings — time-dependent
//! kinds are then **crossed with the request's `"times"` grid** — or
//! objects `{"kind":"reliability","t":100}` carrying their own time
//! point:
//!
//! | kind                          | timed | evaluates                                  |
//! |-------------------------------|-------|--------------------------------------------|
//! | `steady_state_availability`   | no    | [`Measure::SteadyStateAvailability`]       |
//! | `steady_state_unavailability` | no    | [`Measure::SteadyStateUnavailability`]     |
//! | `mttf`                        | no    | [`Measure::Mttf`]                          |
//! | `availability`                | yes   | [`Measure::PointAvailability`]             |
//! | `unavailability`              | yes   | [`Measure::PointUnavailability`]           |
//! | `reliability`                 | yes   | [`Measure::Reliability`]                   |
//! | `unreliability`               | yes   | [`Measure::Unreliability`]                 |
//! | `unreliability_with_repair`   | yes   | [`Measure::UnreliabilityWithRepair`]       |
//! | `interval_availability`       | yes   | [`Measure::IntervalAvailability`]          |
//!
//! (The CSL `BoundedUntil` measure needs a formula encoding and is not
//! exposed over the wire.)
//!
//! # Deadlines and compute budgets
//!
//! A `query` or `sweep` may carry two optional containment fields:
//!
//! * `"timeout_ms"` — a wall-clock deadline for the whole evaluation
//!   (build + solve). An exceeded deadline frees the worker and answers
//!   with the structured error code `deadline`.
//! * `"max_states"` — a ceiling on intermediate model size during
//!   aggregation for this request; exceeding it answers `budget`.
//!
//! Both ride a cooperative [`ioimc::budget::Budget`] threaded through the
//! aggregation and solver loops — the abort is prompt (checks sit at
//! round/segment boundaries) but not preemptive, and a half-built
//! aggregation is **not** cached, so a later request with a larger budget
//! starts fresh.
//!
//! # Sweeps
//!
//! A `sweep` request evaluates the same measure batch at every point of a
//! parameter grid over a **parametric** model (one whose definition
//! declares rate parameters, e.g. the built-ins `dds_parametric` /
//! `dds_scaled_parametric(n)` / `rcs_scaled_parametric(k)`). The model is
//! aggregated once; every point re-rates the cached quotient CTMC and
//! solves (see [`crate::query::Session::sweep`]). The grid comes in one of
//! two forms:
//!
//! * **cartesian** — `"params"` is an array of
//!   `{"name":"...","values":[...]}` objects; the points are the
//!   cartesian product (last axis fastest), and finite-difference
//!   sensitivities are reported;
//! * **explicit** — `"params"` is an array of name strings and
//!   `"points"` an array of value rows (one value per name each); no
//!   sensitivities.
//!
//! The response carries `"params"` (names), `"points"`, `"values"` (one
//! row of measure values per point, in measure-expansion order) and
//! `"sensitivities"` (`[point][measure][param]`, `null` where no
//! neighbor structure exists).
//!
//! # Responses
//!
//! Success: `{"ok":true,...}` with command-specific payload; a query
//! answers `{"ok":true,"model":...,"values":[...],"cold":bool,
//! "session":{...SessionStats...},"timings":{"build_us":...,"evaluate_us":...}}`
//! with `values` in measure-expansion order (object measures in place,
//! string measures expanded across the sorted request grid in the order
//! given). Failure: `{"ok":false,"error":{"code":...,"message":...}}`
//! where `code` is one of `bad_json`, `bad_request`, `unknown_model`,
//! `model_error`, `oversized`, `shutting_down`, or one of the fault
//! containment codes: `deadline` (wall-clock deadline exceeded), `budget`
//! (state/transition ceiling exceeded or evaluation cancelled), and
//! `internal_panic` (a panic was caught and contained; the request may be
//! retried — see [`super::client::Client::expect_ok_retry`]).

use std::fmt;

use super::json::Json;
use crate::query::{Measure, ParamGrid};

/// A structured protocol error: a machine-readable code plus a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable machine-readable error class.
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl ProtoError {
    /// A `bad_request` error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            code: "bad_request",
            message: message.into(),
        }
    }

    /// An error with an explicit code.
    pub fn with_code(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// The error as a response line payload.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("ok", Json::Bool(false)),
            (
                "error",
                Json::obj([
                    ("code", Json::str(self.code)),
                    ("message", Json::str(self.message.clone())),
                ]),
            ),
        ])
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Per-request containment limits carried by `query`/`sweep` requests
/// (see the module docs, *Deadlines and compute budgets*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Limits {
    /// Wall-clock deadline for the whole evaluation, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Ceiling on intermediate model size during aggregation.
    pub max_states: Option<u64>,
}

impl Limits {
    /// Whether any limit is set (i.e. a per-request budget is needed).
    pub fn is_some(&self) -> bool {
        self.timeout_ms.is_some() || self.max_states.is_some()
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate a measure batch against a named model.
    Query {
        /// Registry name of the model.
        model: String,
        /// The expanded measure batch (strings already crossed with the
        /// request grid).
        measures: Vec<Measure>,
        /// Per-request containment limits (deadline, state ceiling).
        limits: Limits,
    },
    /// Evaluate a measure batch at every point of a parameter grid over
    /// a parametric model.
    Sweep {
        /// Registry name of the model (must declare rate parameters).
        model: String,
        /// The expanded measure batch, as in a query.
        measures: Vec<Measure>,
        /// The parameter grid to sweep.
        grid: ParamGrid,
        /// Per-request containment limits (deadline, state ceiling).
        limits: Limits,
    },
    /// Server + per-model counters.
    Stats,
    /// Names the registry can currently serve.
    List,
    /// Parse `source` (Arcade textual syntax) and register it as `name`.
    Load {
        /// Registry name for the model.
        name: String,
        /// Model text.
        source: String,
    },
    /// Liveness check.
    Ping,
    /// Ask the daemon to shut down gracefully.
    Shutdown,
}

impl Request {
    /// Parses one request line (already JSON-decoded).
    ///
    /// # Errors
    ///
    /// [`ProtoError`] with code `bad_request` on any malformed request.
    pub fn from_json(v: &Json) -> Result<Request, ProtoError> {
        if !matches!(v, Json::Obj(_)) {
            return Err(ProtoError::bad_request("request must be a JSON object"));
        }
        let cmd = match v.get("cmd") {
            None if v.get("model").is_some() => "query",
            None => {
                return Err(ProtoError::bad_request(
                    "missing `cmd` (and no `model` to default to a query)",
                ))
            }
            Some(c) => c
                .as_str()
                .ok_or_else(|| ProtoError::bad_request("`cmd` must be a string"))?,
        };
        match cmd {
            "query" => {
                let model = v
                    .get("model")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ProtoError::bad_request("query needs a string `model`"))?;
                let measures = expand_measures(v)?;
                let limits = parse_limits(v)?;
                Ok(Request::Query {
                    model: model.to_owned(),
                    measures,
                    limits,
                })
            }
            "sweep" => {
                let model = v
                    .get("model")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ProtoError::bad_request("sweep needs a string `model`"))?;
                let measures = expand_measures(v)?;
                let grid = parse_grid(v)?;
                let limits = parse_limits(v)?;
                Ok(Request::Sweep {
                    model: model.to_owned(),
                    measures,
                    grid,
                    limits,
                })
            }
            "stats" => Ok(Request::Stats),
            "list" => Ok(Request::List),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "load" => {
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ProtoError::bad_request("load needs a string `name`"))?;
                let source = v
                    .get("source")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ProtoError::bad_request("load needs a string `source`"))?;
                if name.is_empty() {
                    return Err(ProtoError::bad_request("load `name` must be non-empty"));
                }
                Ok(Request::Load {
                    name: name.to_owned(),
                    source: source.to_owned(),
                })
            }
            other => Err(ProtoError::bad_request(format!(
                "unknown command `{other}`"
            ))),
        }
    }
}

/// Parses the optional `"timeout_ms"` / `"max_states"` containment
/// fields of a `query`/`sweep` object.
///
/// # Errors
///
/// [`ProtoError`] (`bad_request`) when a field is present but not a
/// positive integer.
pub fn parse_limits(v: &Json) -> Result<Limits, ProtoError> {
    let positive_int = |field: &str| -> Result<Option<u64>, ProtoError> {
        match v.get(field) {
            None | Some(Json::Null) => Ok(None),
            Some(x) => x
                .as_f64()
                .filter(|x| x.is_finite() && *x >= 1.0 && x.fract() == 0.0)
                .map(|x| Some(x as u64))
                .ok_or_else(|| {
                    ProtoError::bad_request(format!("`{field}` must be a positive integer"))
                }),
        }
    };
    Ok(Limits {
        timeout_ms: positive_int("timeout_ms")?,
        max_states: positive_int("max_states")?,
    })
}

/// Expands the `"measures"` array of a query object against its
/// `"times"` grid into concrete [`Measure`]s, in wire order. Exposed so
/// clients (the smoke client, the load generator) can reproduce the exact
/// batch the server evaluates and cross-check values bitwise.
///
/// # Errors
///
/// [`ProtoError`] (`bad_request`) on an empty/missing batch, an unknown
/// kind, a timed kind without times, or a non-finite/negative time.
pub fn expand_measures(v: &Json) -> Result<Vec<Measure>, ProtoError> {
    let specs = v
        .get("measures")
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtoError::bad_request("query needs a `measures` array"))?;
    if specs.is_empty() {
        return Err(ProtoError::bad_request("`measures` must be non-empty"));
    }
    let times: Vec<f64> = match v.get("times") {
        None => Vec::new(),
        Some(ts) => {
            let arr = ts
                .as_arr()
                .ok_or_else(|| ProtoError::bad_request("`times` must be an array"))?;
            arr.iter()
                .map(|t| {
                    t.as_f64()
                        .filter(|t| t.is_finite() && *t >= 0.0)
                        .ok_or_else(|| {
                            ProtoError::bad_request(
                                "`times` entries must be non-negative finite numbers",
                            )
                        })
                })
                .collect::<Result<_, _>>()?
        }
    };
    let mut out = Vec::new();
    for spec in specs {
        match spec {
            Json::Str(kind) => {
                if let Some(m) = timeless_measure(kind) {
                    out.push(m);
                } else if is_timed_kind(kind) {
                    if times.is_empty() {
                        return Err(ProtoError::bad_request(format!(
                            "measure `{kind}` needs a non-empty `times` grid"
                        )));
                    }
                    for &t in &times {
                        out.push(timed_measure(kind, t).expect("kind checked above"));
                    }
                } else {
                    return Err(ProtoError::bad_request(format!(
                        "unknown measure kind `{kind}`"
                    )));
                }
            }
            Json::Obj(_) => {
                let kind = spec
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ProtoError::bad_request("measure object needs `kind`"))?;
                if let Some(m) = timeless_measure(kind) {
                    out.push(m);
                } else if is_timed_kind(kind) {
                    let t = spec
                        .get("t")
                        .and_then(Json::as_f64)
                        .filter(|t| t.is_finite() && *t >= 0.0)
                        .ok_or_else(|| {
                            ProtoError::bad_request(format!(
                                "measure `{kind}` needs a non-negative finite `t`"
                            ))
                        })?;
                    out.push(timed_measure(kind, t).expect("kind checked above"));
                } else {
                    return Err(ProtoError::bad_request(format!(
                        "unknown measure kind `{kind}`"
                    )));
                }
            }
            _ => {
                return Err(ProtoError::bad_request(
                    "measures must be strings or objects",
                ))
            }
        }
    }
    Ok(out)
}

/// Parses the parameter grid of a `sweep` request: `"params"` as an array
/// of `{"name","values"}` objects (cartesian axes) or of name strings
/// paired with a `"points"` array of value rows (explicit list).
///
/// # Errors
///
/// [`ProtoError`] (`bad_request`) on a missing/empty/mixed `params`
/// array, a missing `points` array for the string form, or any value
/// that is not positive and finite.
pub fn parse_grid(v: &Json) -> Result<ParamGrid, ProtoError> {
    let params = v
        .get("params")
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtoError::bad_request("sweep needs a `params` array"))?;
    if params.is_empty() {
        return Err(ProtoError::bad_request("`params` must be non-empty"));
    }
    let value_of = |x: &Json| {
        x.as_f64()
            .filter(|x| x.is_finite() && *x > 0.0)
            .ok_or_else(|| {
                ProtoError::bad_request("parameter values must be positive finite numbers")
            })
    };
    if params.iter().all(|p| matches!(p, Json::Obj(_))) {
        let mut axes: Vec<(String, Vec<f64>)> = Vec::with_capacity(params.len());
        for p in params {
            let name = p
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtoError::bad_request("params entry needs a string `name`"))?;
            let values = p
                .get("values")
                .and_then(Json::as_arr)
                .ok_or_else(|| ProtoError::bad_request("params entry needs a `values` array"))?;
            if values.is_empty() {
                return Err(ProtoError::bad_request(format!(
                    "parameter `{name}`: `values` must be non-empty"
                )));
            }
            let values = values.iter().map(value_of).collect::<Result<Vec<_>, _>>()?;
            axes.push((name.to_owned(), values));
        }
        return Ok(ParamGrid::cartesian(axes));
    }
    if params.iter().all(|p| matches!(p, Json::Str(_))) {
        let names: Vec<String> = params
            .iter()
            .filter_map(Json::as_str)
            .map(str::to_owned)
            .collect();
        let rows = v.get("points").and_then(Json::as_arr).ok_or_else(|| {
            ProtoError::bad_request("string `params` need a `points` array of value rows")
        })?;
        if rows.is_empty() {
            return Err(ProtoError::bad_request("`points` must be non-empty"));
        }
        let mut points = Vec::with_capacity(rows.len());
        for row in rows {
            let row = row
                .as_arr()
                .ok_or_else(|| ProtoError::bad_request("each point must be an array of values"))?;
            if row.len() != names.len() {
                return Err(ProtoError::bad_request(format!(
                    "each point needs {} values (one per parameter), got {}",
                    names.len(),
                    row.len()
                )));
            }
            points.push(row.iter().map(value_of).collect::<Result<Vec<_>, _>>()?);
        }
        return Ok(ParamGrid::points_list(names, points));
    }
    Err(ProtoError::bad_request(
        "`params` must be all objects (cartesian axes) or all strings (with `points`)",
    ))
}

fn timeless_measure(kind: &str) -> Option<Measure> {
    match kind {
        "steady_state_availability" => Some(Measure::SteadyStateAvailability),
        "steady_state_unavailability" => Some(Measure::SteadyStateUnavailability),
        "mttf" => Some(Measure::Mttf),
        _ => None,
    }
}

fn is_timed_kind(kind: &str) -> bool {
    matches!(
        kind,
        "availability"
            | "unavailability"
            | "reliability"
            | "unreliability"
            | "unreliability_with_repair"
            | "interval_availability"
    )
}

fn timed_measure(kind: &str, t: f64) -> Option<Measure> {
    match kind {
        "availability" => Some(Measure::PointAvailability(t)),
        "unavailability" => Some(Measure::PointUnavailability(t)),
        "reliability" => Some(Measure::Reliability(t)),
        "unreliability" => Some(Measure::Unreliability(t)),
        "unreliability_with_repair" => Some(Measure::UnreliabilityWithRepair(t)),
        "interval_availability" => Some(Measure::IntervalAvailability(t)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Request, ProtoError> {
        Request::from_json(&Json::parse(line).expect("test input is valid JSON"))
    }

    #[test]
    fn query_expands_strings_over_grid() {
        let r = parse(
            r#"{"model":"dds","measures":["mttf","unavailability","reliability"],"times":[10,20]}"#,
        )
        .unwrap();
        let Request::Query {
            model,
            measures,
            limits,
        } = r
        else {
            panic!("not a query")
        };
        assert_eq!(limits, Limits::default());
        assert_eq!(model, "dds");
        assert_eq!(
            measures,
            vec![
                Measure::Mttf,
                Measure::PointUnavailability(10.0),
                Measure::PointUnavailability(20.0),
                Measure::Reliability(10.0),
                Measure::Reliability(20.0),
            ]
        );
    }

    #[test]
    fn object_measures_carry_their_own_time() {
        let r = parse(
            r#"{"cmd":"query","model":"m","measures":[{"kind":"reliability","t":5},"steady_state_availability"]}"#,
        )
        .unwrap();
        let Request::Query { measures, .. } = r else {
            panic!()
        };
        assert_eq!(
            measures,
            vec![Measure::Reliability(5.0), Measure::SteadyStateAvailability]
        );
    }

    #[test]
    fn rejects_bad_queries() {
        for (line, needle) in [
            (r#"{"cmd":"query"}"#, "model"),
            (r#"{"model":"m"}"#, "measures"),
            (r#"{"model":"m","measures":[]}"#, "non-empty"),
            (r#"{"model":"m","measures":["nope"]}"#, "unknown measure"),
            (
                r#"{"model":"m","measures":["reliability"]}"#,
                "needs a non-empty `times`",
            ),
            (
                r#"{"model":"m","measures":["reliability"],"times":[-1]}"#,
                "non-negative",
            ),
            (
                r#"{"model":"m","measures":[{"kind":"reliability"}]}"#,
                "`t`",
            ),
            (r#"{"model":"m","measures":[42]}"#, "strings or objects"),
            (r#"{"cmd":"load","name":"x"}"#, "source"),
            (r#"{"cmd":"load","name":"","source":"s"}"#, "non-empty"),
            (r#"{"cmd":"frobnicate"}"#, "unknown command"),
            (r#"{}"#, "missing `cmd`"),
            (r#"[1,2]"#, "object"),
        ] {
            let e = parse(line).unwrap_err();
            assert_eq!(e.code, "bad_request", "{line}");
            assert!(e.message.contains(needle), "{line}: {}", e.message);
        }
    }

    #[test]
    fn sweep_parses_cartesian_and_explicit_grids() {
        let r = parse(
            r#"{"cmd":"sweep","model":"dds_parametric","measures":["mttf"],
                "params":[{"name":"disk_rate","values":[1e-4,2e-4]},
                          {"name":"repair_rate","values":[0.5]}]}"#,
        )
        .unwrap();
        let Request::Sweep {
            model,
            measures,
            grid,
            ..
        } = r
        else {
            panic!("not a sweep")
        };
        assert_eq!(model, "dds_parametric");
        assert_eq!(measures, vec![Measure::Mttf]);
        assert_eq!(grid.names(), ["disk_rate", "repair_rate"]);
        assert_eq!(
            grid.points(),
            vec![vec![1e-4, 0.5], vec![2e-4, 0.5]],
            "cartesian product, last axis fastest"
        );

        let r = parse(
            r#"{"cmd":"sweep","model":"m","measures":["mttf"],
                "params":["a","b"],"points":[[0.1,0.2],[0.3,0.4]]}"#,
        )
        .unwrap();
        let Request::Sweep { grid, .. } = r else {
            panic!("not a sweep")
        };
        assert_eq!(grid.names(), ["a", "b"]);
        assert_eq!(grid.points(), vec![vec![0.1, 0.2], vec![0.3, 0.4]]);
    }

    #[test]
    fn sweep_rejects_bad_grids() {
        for (line, needle) in [
            (
                r#"{"cmd":"sweep","measures":["mttf"],"params":[]}"#,
                "model",
            ),
            (
                r#"{"cmd":"sweep","model":"m","measures":["mttf"]}"#,
                "`params` array",
            ),
            (
                r#"{"cmd":"sweep","model":"m","measures":["mttf"],"params":[]}"#,
                "non-empty",
            ),
            (
                r#"{"cmd":"sweep","model":"m","measures":["mttf"],"params":[{"name":"a","values":[]}]}"#,
                "non-empty",
            ),
            (
                r#"{"cmd":"sweep","model":"m","measures":["mttf"],"params":[{"name":"a","values":[-1]}]}"#,
                "positive",
            ),
            (
                r#"{"cmd":"sweep","model":"m","measures":["mttf"],"params":["a"]}"#,
                "`points`",
            ),
            (
                r#"{"cmd":"sweep","model":"m","measures":["mttf"],"params":["a","b"],"points":[[0.1]]}"#,
                "one per parameter",
            ),
            (
                r#"{"cmd":"sweep","model":"m","measures":["mttf"],"params":["a",{"name":"b","values":[1]}]}"#,
                "all objects",
            ),
        ] {
            let e = parse(line).unwrap_err();
            assert_eq!(e.code, "bad_request", "{line}");
            assert!(e.message.contains(needle), "{line}: {}", e.message);
        }
    }

    #[test]
    fn limits_parse_and_validate() {
        let r =
            parse(r#"{"model":"dds","measures":["mttf"],"timeout_ms":500,"max_states":100000}"#)
                .unwrap();
        let Request::Query { limits, .. } = r else {
            panic!("not a query")
        };
        assert_eq!(
            limits,
            Limits {
                timeout_ms: Some(500),
                max_states: Some(100_000),
            }
        );
        assert!(limits.is_some());
        assert!(!Limits::default().is_some());

        // Sweeps carry them too.
        let r = parse(
            r#"{"cmd":"sweep","model":"m","measures":["mttf"],
                "params":["a"],"points":[[0.1]],"timeout_ms":9}"#,
        )
        .unwrap();
        let Request::Sweep { limits, .. } = r else {
            panic!("not a sweep")
        };
        assert_eq!(limits.timeout_ms, Some(9));

        for bad in [
            r#"{"model":"dds","measures":["mttf"],"timeout_ms":0}"#,
            r#"{"model":"dds","measures":["mttf"],"timeout_ms":-5}"#,
            r#"{"model":"dds","measures":["mttf"],"timeout_ms":1.5}"#,
            r#"{"model":"dds","measures":["mttf"],"max_states":"many"}"#,
        ] {
            let e = parse(bad).unwrap_err();
            assert_eq!(e.code, "bad_request", "{bad}");
            assert!(e.message.contains("positive integer"), "{bad}");
        }
    }

    #[test]
    fn simple_commands_parse() {
        assert_eq!(parse(r#"{"cmd":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse(r#"{"cmd":"list"}"#).unwrap(), Request::List);
        assert_eq!(parse(r#"{"cmd":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse(r#"{"cmd":"shutdown"}"#).unwrap(), Request::Shutdown);
    }

    #[test]
    fn error_json_shape() {
        let e = ProtoError::with_code("unknown_model", "no model `x`");
        let j = e.to_json();
        assert_eq!(j.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            j.get("error").unwrap().get("code").and_then(Json::as_str),
            Some("unknown_model")
        );
    }
}
