//! `arcaded`: a resident analysis server over the [`Session`] engine.
//!
//! Aggregating a model once and answering many measure queries against
//! the warm session is the whole point of the lazy query engine — but a
//! CLI process pays the aggregation on every invocation. This module
//! keeps the sessions **resident**: a small dependency-free TCP daemon
//! (std [`std::net::TcpListener`], hand-rolled JSON) that owns a
//! [`registry::Registry`] of named models and answers measure batches
//! from warm [`Session`]s.
//!
//! # Wire protocol
//!
//! Newline-delimited JSON, one object per line, persistent connections.
//! See [`protocol`] for the full request/response reference. The
//! essentials:
//!
//! ```text
//! → {"model":"dds","measures":["unavailability"],"times":[100,1000]}
//! ← {"ok":true,"schema_version":1,"model":"dds","values":[...],
//!    "cold":false,"trace":{"built":0,"waited":0},"session":{...},
//!    "timings":{"build_us":...,"evaluate_us":...}}
//! → {"cmd":"stats"}
//! ← {"ok":true,"schema_version":1,"uptime_secs":...,"server":{...},
//!    "models":[{"name":...,"stats":{...}}]}
//! ```
//!
//! Other commands: `ping`, `list`, `load` (register a model from Arcade
//! textual syntax), `shutdown`. Errors are structured:
//! `{"ok":false,"error":{"code":...,"message":...}}`.
//!
//! # Caching and dedup semantics
//!
//! Two layers, both once-cell based (see [`registry`]):
//!
//! * one cell per model **name** — concurrent cold lookups create exactly
//!   one [`Session`];
//! * once-cells per expensive artifact **inside** the shared session —
//!   N clients racing the same cold query trigger exactly one
//!   aggregation; the other N−1 block on the in-flight build instead of
//!   duplicating it. The server surfaces which side of the race each
//!   query was on as `cache_misses` / `dedup_waits` / `cache_hits` in
//!   the stats endpoint.
//!
//! Results served from a warm session are bitwise identical to calling
//! [`Session::evaluate`] directly — the server adds routing, not math.
//!
//! # Running it
//!
//! ```text
//! arcaded --addr 127.0.0.1:7171 --workers 4 --preload dds
//! ```
//!
//! then talk to it with [`client::Client`] (or `nc`: one JSON object per
//! line). `serve_bench` (crates/bench) load-tests an in-process server
//! and writes `BENCH_serve.json`; `serve_smoke` is the CI client that
//! checks cold/warm/dedup behavior against a booted daemon.
//!
//! [`Session`]: crate::query::Session
//! [`Session::evaluate`]: crate::query::Session::evaluate

pub mod client;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;

pub use client::Client;
pub use json::Json;
pub use protocol::{expand_measures, ProtoError};
pub use registry::Registry;
pub use server::{serve, ServerConfig, ServerHandle, PROTOCOL_VERSION};
