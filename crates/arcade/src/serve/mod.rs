//! `arcaded`: a resident analysis server over the [`Session`] engine.
//!
//! Aggregating a model once and answering many measure queries against
//! the warm session is the whole point of the lazy query engine — but a
//! CLI process pays the aggregation on every invocation. This module
//! keeps the sessions **resident**: a small dependency-free TCP daemon
//! (std [`std::net::TcpListener`], hand-rolled JSON) that owns a
//! [`registry::Registry`] of named models and answers measure batches
//! from warm [`Session`]s.
//!
//! # Wire protocol
//!
//! Newline-delimited JSON, one object per line, persistent connections.
//! See [`protocol`] for the full request/response reference. The
//! essentials:
//!
//! ```text
//! → {"model":"dds","measures":["unavailability"],"times":[100,1000]}
//! ← {"ok":true,"schema_version":2,"model":"dds","values":[...],
//!    "cold":false,"trace":{"built":0,"waited":0},"session":{...},
//!    "timings":{"build_us":...,"evaluate_us":...}}
//! → {"cmd":"stats"}
//! ← {"ok":true,"schema_version":2,"uptime_secs":...,"server":{...},
//!    "models":[{"name":...,"stats":{...}}]}
//! ```
//!
//! Other commands: `ping`, `list`, `load` (register a model from Arcade
//! textual syntax), `shutdown`. Errors are structured:
//! `{"ok":false,"error":{"code":...,"message":...}}`.
//!
//! # Caching and dedup semantics
//!
//! Two layers, both built on panic-safe dedup cells (see [`registry`]
//! and [`crate::sync::RetryCell`]):
//!
//! * one cell per model **name** — concurrent cold lookups create exactly
//!   one [`Session`];
//! * once-cells per expensive artifact **inside** the shared session —
//!   N clients racing the same cold query trigger exactly one
//!   aggregation; the other N−1 block on the in-flight build instead of
//!   duplicating it. The server surfaces which side of the race each
//!   query was on as `cache_misses` / `dedup_waits` / `cache_hits` in
//!   the stats endpoint.
//!
//! Results served from a warm session are bitwise identical to calling
//! [`Session::evaluate`] directly — the server adds routing, not math.
//!
//! # Fault containment
//!
//! A resident daemon must stay answerable when one request misbehaves.
//! Four mechanisms compose, innermost first:
//!
//! * **Compute budgets.** A request carrying `timeout_ms` (wall-clock
//!   deadline) and/or `max_states` (intermediate-model ceiling) runs
//!   under an ambient cooperative [`ioimc::budget::Budget`] polled by the
//!   aggregation and solver loops at round/segment boundaries. Tripping
//!   answers a structured error — code `deadline` or `budget` — well
//!   within ~2× the requested deadline, frees the worker, and does *not*
//!   cache the half-built artifact, so a later request with a larger
//!   budget starts fresh. The server-wide `--max-states` flag layers an
//!   engine-level ceiling under every request (`load`-ed models cannot
//!   blow up the daemon); the per-request field tightens it further.
//! * **Panic isolation.** Session/registry builds run inside panic-safe
//!   dedup cells ([`crate::sync::RetryCell`]): a panicking build answers
//!   its own request *and* every blocked dedup waiter with a typed
//!   `internal_panic` error, clears the cell so the next request
//!   rebuilds, and never silently re-runs. Two outer rings — around each
//!   dispatched request and around the worker loop — guarantee a panic
//!   anywhere in request handling neither kills a pool worker nor drops
//!   the connection without an answer.
//! * **Client retry.** [`client::Client::expect_ok_retry`] retries
//!   transport errors and `internal_panic` (and only those — everything
//!   else is deterministic) with exponential backoff plus jitter,
//!   reconnecting as needed.
//! * **Chaos failpoints.** [`crate::chaos`] compiles named failpoints
//!   into the build/solve/respond boundaries (`serve.build`,
//!   `session.agg`, `session.solve`, `serve.respond`); armed via
//!   `arcaded --chaos` or `ARCADE_CHAOS`, they inject panics, ambient-
//!   deadline-aware delays and torn writes. Disarmed (the default) a
//!   failpoint costs one relaxed atomic load. The `serve_chaos` binary
//!   (crates/bench) drives all of this in CI and asserts the containment
//!   contract: the daemon keeps answering, waiters unblock with typed
//!   errors, retries succeed, and post-recovery warm answers stay
//!   bitwise identical.
//!
//! The `stats` endpoint exposes the containment counters
//! (`panics_caught`, `deadline_aborts`, `budget_aborts`, `retries`)
//! alongside the cache and latency metrics.
//!
//! # Running it
//!
//! ```text
//! arcaded --addr 127.0.0.1:7171 --workers 4 --preload dds
//! ```
//!
//! then talk to it with [`client::Client`] (or `nc`: one JSON object per
//! line). `serve_bench` (crates/bench) load-tests an in-process server
//! and writes `BENCH_serve.json`; `serve_smoke` is the CI client that
//! checks cold/warm/dedup behavior against a booted daemon.
//!
//! [`Session`]: crate::query::Session
//! [`Session::evaluate`]: crate::query::Session::evaluate

pub mod client;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;

pub use client::Client;
pub use json::Json;
pub use protocol::{expand_measures, ProtoError};
pub use registry::Registry;
pub use server::{serve, ServerConfig, ServerHandle, PROTOCOL_VERSION};
