//! A minimal, dependency-free JSON value type with a hand-rolled parser
//! and serializer — the wire format of the [`arcaded`
//! protocol](crate::serve).
//!
//! The grammar is standard JSON (RFC 8259) with two deliberate
//! simplifications suited to a trusted loopback protocol:
//!
//! * numbers are parsed as `f64` (the protocol never needs integers the
//!   double mantissa cannot hold, and counters are < 2⁵³ in practice);
//! * objects keep their fields in **insertion order** in a `Vec` instead
//!   of a map — requests are tiny, lookups are linear, and serialization
//!   round-trips byte-stably, which the determinism-minded tests like.
//!
//! Nesting depth is capped (64) so a malicious request line cannot
//! overflow the parser's stack.

use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Convenience constructor for an object from key/value pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Self {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Field lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses one JSON document; the whole input must be consumed (aside
    /// from surrounding whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset and message on any
    /// syntax error, trailing garbage, or excessive nesting.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }
}

/// A parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            // hex4 left pos past the 4 digits; undo the
                            // generic advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid — copy the full sequence).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while p.peek().is_some_and(|b| b.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected digits after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| self.err(format!("bad number `{text}`: {e}")))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            // Non-finite numbers have no JSON spelling; `null` keeps the
            // document parseable (the CLI's `--json` does the same for an
            // infinite MTTF).
            Json::Num(x) if !x.is_finite() => f.write_str("null"),
            Json::Num(x) => write!(f, "{x}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::str("a\nb"));
    }

    #[test]
    fn parses_structures() {
        let v = Json::parse(r#"{"model":"dds","times":[1,2.5],"flag":true}"#).unwrap();
        assert_eq!(v.get("model").and_then(Json::as_str), Some("dds"));
        let times: Vec<f64> = v
            .get("times")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|t| t.as_f64().unwrap())
            .collect();
        assert_eq!(times, [1.0, 2.5]);
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips() {
        for text in [
            r#"{"a":[1,2,{"b":null}],"c":"x\"y","d":[[]],"e":{}}"#,
            r#"[true,false,null,0.5,"müsli"]"#,
        ] {
            let v = Json::parse(text).unwrap();
            let printed = v.to_string();
            assert_eq!(Json::parse(&printed).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::str("é"));
        // surrogate pair: 😀
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1} trailing",
            "nan",
            "+1",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }
}
