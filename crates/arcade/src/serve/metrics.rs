//! Server-level counters and latency histograms for the `/stats`
//! (`"cmd":"stats"`) endpoint.
//!
//! Everything here is lock-free: plain [`AtomicU64`] counters plus a
//! fixed-size logarithmic [`Histogram`] per request phase. The histogram
//! buckets latencies by the bit length of the microsecond count (64
//! power-of-two buckets), so recording is one `fetch_add` and quantile
//! estimates are exact to within a factor of two — plenty for the p50/p99
//! trend lines `BENCH_serve.json` tracks, at zero contention on the hot
//! path. Quantiles are reported as the **upper edge** of the bucket the
//! rank falls into (a conservative estimate, never under-reporting) —
//! except the last bucket, which has no finite upper edge and reports
//! its **lower** edge (`2⁶³` µs) instead of a fictitious `u64::MAX`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use super::json::Json;

/// A fixed-size log₂ histogram of microsecond latencies.
#[derive(Debug)]
pub struct Histogram {
    /// `buckets[i]` counts samples with `floor(log2(us)) == i` (bucket 0
    /// also holds sub-microsecond samples).
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let idx = (63 - us.max(1).leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Conservative quantile estimate in microseconds: the upper edge of
    /// the bucket holding the `q`-th ranked sample (`q` in `[0, 1]`);
    /// `None` when empty. The overflow bucket (samples ≥ 2⁶³ µs) has no
    /// finite upper edge, so it reports its lower edge — the largest
    /// bound the histogram actually knows.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let snapshot: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return None;
        }
        // Rank of the requested quantile, 1-based, clamped into range.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in snapshot.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i >= 63 { 1u64 << 63 } else { (2u64 << i) - 1 });
            }
        }
        unreachable!("rank is clamped to the total")
    }

    /// Mean latency in microseconds; `None` when empty.
    pub fn mean_us(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum_us.load(Ordering::Relaxed) as f64 / n as f64)
    }

    /// The histogram as a JSON object (`count`, `mean_us`, `p50_us`,
    /// `p99_us`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::Num(self.count() as f64)),
            ("mean_us", opt_num(self.mean_us())),
            ("p50_us", opt_num(self.quantile_us(0.50).map(|x| x as f64))),
            ("p99_us", opt_num(self.quantile_us(0.99).map(|x| x as f64))),
        ])
    }
}

fn opt_num(x: Option<f64>) -> Json {
    x.map_or(Json::Null, Json::Num)
}

/// All server-level counters, shared by every worker.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Total requests received (every parsed or attempted line).
    pub requests: AtomicU64,
    /// Requests answered with a structured error.
    pub errors: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Query requests answered from an already-warm session.
    pub cache_hits: AtomicU64,
    /// Query requests that created (and built) a new session entry.
    pub cache_misses: AtomicU64,
    /// Query requests that found the session build already **in flight**
    /// and blocked on the shared once-cell instead of duplicating it.
    pub dedup_waits: AtomicU64,
    /// Panics caught at a containment boundary (worker pool, dispatch,
    /// session builder) and converted to `internal_panic` responses.
    pub panics_caught: AtomicU64,
    /// Requests aborted by their wall-clock deadline (`timeout_ms`).
    pub deadline_aborts: AtomicU64,
    /// Requests aborted by a size/cancellation budget (state or
    /// transition ceiling, explicit cancel).
    pub budget_aborts: AtomicU64,
    /// Session builds re-run after an earlier in-flight attempt died
    /// (panicked or failed transiently) — the registry's self-heal count.
    pub retries: AtomicU64,
    /// Wall time spent parsing request lines.
    pub parse: Histogram,
    /// Wall time spent resolving/building sessions (cold builds dominate).
    pub build: Histogram,
    /// Wall time spent in `Session::evaluate`.
    pub evaluate: Histogram,
    /// End-to-end request wall time (parse → response written).
    pub total: Histogram,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// One relaxed increment.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot as the `"server"` object of the stats response.
    pub fn to_json(&self) -> Json {
        let load = |c: &AtomicU64| Json::Num(c.load(Ordering::Relaxed) as f64);
        Json::obj([
            ("requests", load(&self.requests)),
            ("errors", load(&self.errors)),
            ("connections", load(&self.connections)),
            ("cache_hits", load(&self.cache_hits)),
            ("cache_misses", load(&self.cache_misses)),
            ("dedup_waits", load(&self.dedup_waits)),
            ("panics_caught", load(&self.panics_caught)),
            ("deadline_aborts", load(&self.deadline_aborts)),
            ("budget_aborts", load(&self.budget_aborts)),
            ("retries", load(&self.retries)),
            (
                "latency",
                Json::obj([
                    ("parse", self.parse.to_json()),
                    ("build", self.build.to_json()),
                    ("evaluate", self.evaluate.to_json()),
                    ("total", self.total.to_json()),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), None);
        for us in [3u64, 5, 9, 100, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        // p50 is the 3rd sample (9µs) → bucket [8,16) → upper edge 15.
        assert_eq!(h.quantile_us(0.5), Some(15));
        // p99 lands on the largest sample's bucket [512,1024).
        assert_eq!(h.quantile_us(0.99), Some(1023));
        // p0 clamps to the first sample's bucket.
        assert_eq!(h.quantile_us(0.0), Some(3));
        let mean = h.mean_us().unwrap();
        assert!((mean - 223.4).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = Histogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(u64::MAX / 2_000_000));
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_us(0.0), Some(1));
        assert!(h.quantile_us(1.0).unwrap() > 1 << 40);
    }

    #[test]
    fn histogram_overflow_bucket_reports_its_lower_edge() {
        let h = Histogram::new();
        // `as_micros` exceeds u64 here, so `record` saturates the sample
        // to u64::MAX µs — the top bucket, whose only exact bound is its
        // lower edge 2^63 µs (not the fictitious u64::MAX upper edge the
        // quantile used to report, which inflated serialized p99s).
        h.record(Duration::from_secs(u64::MAX));
        assert_eq!(h.quantile_us(0.5), Some(1u64 << 63));
        assert_eq!(h.quantile_us(1.0), Some(1u64 << 63));
    }

    #[test]
    fn metrics_snapshot_shape() {
        let m = Metrics::new();
        Metrics::bump(&m.requests);
        m.total.record(Duration::from_micros(42));
        let j = m.to_json();
        assert_eq!(j.get("requests").and_then(Json::as_f64), Some(1.0));
        let lat = j.get("latency").unwrap();
        assert_eq!(
            lat.get("total")
                .unwrap()
                .get("count")
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(lat.get("parse").unwrap().get("p50_us"), Some(&Json::Null));
    }
}
