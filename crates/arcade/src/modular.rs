//! Modularization (paper §5.2.2).
//!
//! When the `SYSTEM DOWN` criterion is a top-level OR whose branches touch
//! statistically independent parts of the system, each part ("module") can
//! be analyzed separately and the results combined — the technique the
//! paper borrows from \[7\] for the reactor cooling system, where the pump
//! subsystem and the heat-exchanger subsystem are solved as separate
//! CTMCs.
//!
//! Two top-level OR branches belong to the same module iff their
//! *dependency closures* overlap. The closure of a component set adds:
//! components referenced by members' trigger/DF expressions, components
//! sharing a repair unit, and components sharing an SMU. Modules computed
//! this way are independent CTMCs, so
//!
//! * system unavailability `= 1 - Π (1 - u_i)`,
//! * system unreliability `= 1 - Π (1 - ur_i)` (a first passage in any
//!   module is the first system failure).

use std::collections::HashSet;

use crate::analysis::{Analysis, AnalysisReport};
use crate::ast::SystemDef;
use crate::engine::EngineOptions;
use crate::error::ArcadeError;
use crate::expr::Expr;

/// One independent module and its analysis.
#[derive(Debug, Clone)]
pub struct ModuleAnalysis {
    /// Module name (`module0`, `module1`, …).
    pub name: String,
    /// The components the module contains.
    pub components: Vec<String>,
    /// The module's own analysis report.
    pub report: AnalysisReport,
}

/// The combined modular analysis.
#[derive(Debug, Clone)]
pub struct ModularAnalysis {
    /// The per-module analyses.
    pub modules: Vec<ModuleAnalysis>,
}

impl ModularAnalysis {
    /// System steady-state unavailability.
    pub fn steady_state_unavailability(&self) -> f64 {
        1.0 - self
            .modules
            .iter()
            .map(|m| 1.0 - m.report.steady_state_unavailability())
            .product::<f64>()
    }

    /// System steady-state availability.
    pub fn steady_state_availability(&self) -> f64 {
        1.0 - self.steady_state_unavailability()
    }

    /// System point unavailability at `t`.
    pub fn point_unavailability(&self, t: f64) -> f64 {
        1.0 - self
            .modules
            .iter()
            .map(|m| 1.0 - m.report.point_unavailability(t))
            .product::<f64>()
    }

    /// System first-passage unreliability at `t`, repairs active (the RCS
    /// measure).
    pub fn unreliability_with_repair(&self, t: f64) -> f64 {
        1.0 - self
            .modules
            .iter()
            .map(|m| 1.0 - m.report.unreliability_with_repair(t))
            .product::<f64>()
    }

    /// System no-repair reliability at `t` (the DDS Table 1 measure).
    pub fn reliability(&self, t: f64) -> f64 {
        self.modules
            .iter()
            .map(|m| m.report.reliability(t))
            .product()
    }

    /// System point unavailability over a whole time grid: each module
    /// answers its curve in one batched sweep, then the per-point
    /// independent-module combination is applied.
    pub fn point_unavailability_many(&self, ts: &[f64]) -> Vec<f64> {
        self.combine_complement(ts, |m, ts| m.report.point_unavailability_many(ts))
    }

    /// System first-passage unreliability (repairs active) over a whole
    /// time grid, batched per module.
    pub fn unreliability_with_repair_many(&self, ts: &[f64]) -> Vec<f64> {
        self.combine_complement(ts, |m, ts| m.report.unreliability_with_repair_many(ts))
    }

    /// System no-repair reliability over a whole time grid, batched per
    /// module.
    pub fn reliability_many(&self, ts: &[f64]) -> Vec<f64> {
        let per_module: Vec<Vec<f64>> = self
            .modules
            .iter()
            .map(|m| m.report.reliability_many(ts))
            .collect();
        (0..ts.len())
            .map(|i| per_module.iter().map(|c| c[i]).product())
            .collect()
    }

    /// `1 - Π (1 - xᵢ)` per grid point over the modules' curves.
    fn combine_complement(
        &self,
        ts: &[f64],
        curve: impl Fn(&ModuleAnalysis, &[f64]) -> Vec<f64>,
    ) -> Vec<f64> {
        let per_module: Vec<Vec<f64>> = self.modules.iter().map(|m| curve(m, ts)).collect();
        (0..ts.len())
            .map(|i| 1.0 - per_module.iter().map(|c| 1.0 - c[i]).product::<f64>())
            .collect()
    }
}

/// Runs a modular analysis of `def` with the given engine options.
///
/// Each module's measures run through its own lazy `Session`, so the
/// solver configuration in [`EngineOptions::solver`] — including the
/// sharded/steady-state-aware transient engine
/// ([`ctmc::SolverOptions::transient`]) — applies per module; module
/// CTMCs are small after decomposition, so the per-module transient
/// engine typically stays on its serial path while the modules
/// themselves are solved concurrently.
///
/// # Errors
///
/// Returns an error if the definition is invalid or a module analysis
/// fails. A criterion that does not decompose (single module) still works —
/// it just runs as one module, i.e. a full analysis.
pub fn modular_analysis(
    def: &SystemDef,
    opts: &EngineOptions,
) -> Result<ModularAnalysis, ArcadeError> {
    crate::model::validate(def)?;
    let down = def
        .system_down
        .as_ref()
        .ok_or_else(|| ArcadeError::invalid("SYSTEM DOWN criterion missing"))?;

    // Top-level OR branches.
    let branches: Vec<Expr> = match down {
        Expr::Or(cs) => cs.clone(),
        other => vec![other.clone()],
    };

    // Dependency closure of each branch's component set.
    let closures: Vec<HashSet<String>> = branches
        .iter()
        .map(|b| {
            let mut set: HashSet<String> =
                b.literals().iter().map(|l| l.component.clone()).collect();
            dependency_closure(def, &mut set);
            set
        })
        .collect();

    // Union-find over branches with overlapping closures. `find` is a
    // plain loop with path halving — the top-level branch count bounds
    // nothing, so no recursion depth to worry about.
    let n = branches.len();
    let mut group: Vec<usize> = (0..n).collect();
    fn find(group: &mut [usize], mut i: usize) -> usize {
        while group[i] != i {
            group[i] = group[group[i]];
            i = group[i];
        }
        i
    }
    for i in 0..n {
        for j in i + 1..n {
            if !closures[i].is_disjoint(&closures[j]) {
                let (ri, rj) = (find(&mut group, i), find(&mut group, j));
                if ri != rj {
                    group[rj] = ri;
                }
            }
        }
    }

    // Build one sub-definition per group.
    let roots: Vec<usize> = (0..n).map(|i| find(&mut group, i)).collect();
    let mut unique_roots: Vec<usize> = roots.clone();
    unique_roots.sort_unstable();
    unique_roots.dedup();

    let jobs: Vec<(String, Vec<String>, SystemDef)> = unique_roots
        .iter()
        .enumerate()
        .map(|(mi, &root)| {
            let member_branches: Vec<Expr> = (0..n)
                .filter(|&i| roots[i] == root)
                .map(|i| branches[i].clone())
                .collect();
            let mut comps: HashSet<String> = member_branches
                .iter()
                .flat_map(|b| b.literals().into_iter().map(|l| l.component.clone()))
                .collect();
            dependency_closure(def, &mut comps);

            let mut sub = SystemDef::new(format!("{}-module{mi}", def.name));
            for bc in &def.components {
                if comps.contains(&bc.name) {
                    sub.add_component(bc.clone());
                }
            }
            for ru in &def.repair_units {
                if ru.components.iter().any(|c| comps.contains(c)) {
                    sub.add_repair_unit(ru.clone());
                }
            }
            for smu in &def.smus {
                if comps.contains(&smu.primary) || smu.spares.iter().any(|s| comps.contains(s)) {
                    sub.add_smu(smu.clone());
                }
            }
            sub.set_system_down(if member_branches.len() == 1 {
                member_branches.into_iter().next().expect("one branch")
            } else {
                Expr::Or(member_branches)
            });
            let mut components: Vec<String> = comps.into_iter().collect();
            components.sort();
            (format!("module{mi}"), components, sub)
        })
        .collect();

    // Modules are statistically independent CTMCs — solve them
    // concurrently. Each worker runs the exact analysis the sequential
    // loop would; results come back in module order, so the combined
    // report is identical for every thread count. The thread budget is
    // split across the module workers to bound the total thread count.
    let threads = ioimc::par::effective_threads(opts.threads);
    let worker_opts = if threads > 1 && jobs.len() > 1 {
        opts.clone()
            .with_threads(ioimc::par::split_budget(threads, jobs.len()))
    } else {
        opts.clone()
    };
    let results = ioimc::par::par_map(threads, &jobs, |_, (_, _, sub)| {
        Analysis::new(sub)?.with_options(worker_opts.clone()).run()
    });
    let mut modules = Vec::with_capacity(jobs.len());
    for ((name, components, _), report) in jobs.into_iter().zip(results) {
        modules.push(ModuleAnalysis {
            name,
            components,
            report: report?,
        });
    }
    Ok(ModularAnalysis { modules })
}

/// Extends `set` with every component coupled to a member through trigger
/// expressions, destructive dependencies, shared repair units or shared
/// SMUs, to a fixpoint.
fn dependency_closure(def: &SystemDef, set: &mut HashSet<String>) {
    loop {
        let before = set.len();
        for bc in &def.components {
            if !set.contains(&bc.name) {
                continue;
            }
            for g in &bc.om_groups {
                if let Some(t) = g.trigger() {
                    for l in t.literals() {
                        set.insert(l.component.clone());
                    }
                }
            }
            if let Some(d) = &bc.df {
                for l in d.literals() {
                    set.insert(l.component.clone());
                }
            }
        }
        for ru in &def.repair_units {
            if ru.components.iter().any(|c| set.contains(c)) {
                set.extend(ru.components.iter().cloned());
            }
        }
        for smu in &def.smus {
            let members: Vec<&String> = std::iter::once(&smu.primary).chain(&smu.spares).collect();
            if members.iter().any(|c| set.contains(*c)) {
                set.extend(members.into_iter().cloned());
            }
        }
        // Reverse coupling: a component whose trigger/DF references a
        // member is itself coupled to the member.
        for bc in &def.components {
            if set.contains(&bc.name) {
                continue;
            }
            let refs_member = bc
                .om_groups
                .iter()
                .filter_map(|g| g.trigger())
                .chain(bc.df.as_ref())
                .flat_map(|e| e.literals())
                .any(|l| set.contains(&l.component));
            if refs_member {
                set.insert(bc.name.clone());
            }
        }
        if set.len() == before {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BcDef, RepairStrategy, RuDef};
    use crate::dist::Dist;

    /// Two independent single-component modules: modular result equals the
    /// monolithic one.
    #[test]
    fn modular_matches_monolithic() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.01), Dist::exp(1.0)));
        def.add_component(BcDef::new("b", Dist::exp(0.03), Dist::exp(2.0)));
        def.add_repair_unit(RuDef::new("ra", ["a"], RepairStrategy::Dedicated));
        def.add_repair_unit(RuDef::new("rb", ["b"], RepairStrategy::Dedicated));
        def.set_system_down(Expr::or([Expr::down("a"), Expr::down("b")]));

        let opts = EngineOptions::new();
        let modular = modular_analysis(&def, &opts).unwrap();
        assert_eq!(modular.modules.len(), 2);
        let mono = Analysis::new(&def).unwrap().run().unwrap();
        assert!(
            (modular.steady_state_unavailability() - mono.steady_state_unavailability()).abs()
                < 1e-10
        );
        let t = 3.0;
        assert!((modular.reliability(t) - mono.reliability(t)).abs() < 1e-9);
        assert!(
            (modular.unreliability_with_repair(t) - mono.unreliability_with_repair(t)).abs() < 1e-9
        );
        assert!((modular.point_unavailability(t) - mono.point_unavailability(t)).abs() < 1e-9);
        assert!(
            (modular.steady_state_availability() + modular.steady_state_unavailability() - 1.0)
                .abs()
                < 1e-12
        );
    }

    /// A shared repair unit couples the components into one module.
    #[test]
    fn shared_ru_merges_modules() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.01), Dist::exp(1.0)));
        def.add_component(BcDef::new("b", Dist::exp(0.03), Dist::exp(2.0)));
        def.add_repair_unit(RuDef::new("r", ["a", "b"], RepairStrategy::Fcfs));
        def.set_system_down(Expr::or([Expr::down("a"), Expr::down("b")]));
        let modular = modular_analysis(&def, &EngineOptions::new()).unwrap();
        assert_eq!(modular.modules.len(), 1);
        assert_eq!(modular.modules[0].components.len(), 2);
    }

    /// An AND across independent components is one module (no unsound
    /// splitting).
    #[test]
    fn and_branch_stays_together() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.01), Dist::exp(1.0)));
        def.add_component(BcDef::new("b", Dist::exp(0.03), Dist::exp(2.0)));
        def.set_system_down(Expr::and([Expr::down("a"), Expr::down("b")]));
        let modular = modular_analysis(&def, &EngineOptions::new()).unwrap();
        assert_eq!(modular.modules.len(), 1);
    }

    /// Trigger expressions couple components (load sharing).
    #[test]
    fn trigger_couples() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("p1", Dist::exp(0.01), Dist::exp(1.0)));
        def.add_component(
            BcDef::new("p2", Dist::exp(0.01), Dist::exp(1.0))
                .with_om_group(crate::ast::OmGroup::NormalDegraded(Expr::down("p1")))
                .with_ttf([Dist::exp(0.01), Dist::exp(0.02)]),
        );
        def.add_component(BcDef::new("c", Dist::exp(0.05), Dist::exp(1.0)));
        def.set_system_down(Expr::or([Expr::down("p2"), Expr::down("c")]));
        let modular = modular_analysis(&def, &EngineOptions::new()).unwrap();
        // p2 pulls in p1; c stays separate
        assert_eq!(modular.modules.len(), 2);
        let big = modular
            .modules
            .iter()
            .find(|m| m.components.len() == 2)
            .unwrap();
        assert!(big.components.contains(&"p1".to_owned()));
    }
}
