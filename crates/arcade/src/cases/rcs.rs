//! The reactor cooling system (paper §5.2, after \[22, 7\]).
//!
//! Two parallel pump lines (pump + filter + inlet/outlet control valves),
//! a heat exchanger unit (exchanger + filter + two valves) with a bypass
//! of two motor-driven valves. Pumps load-share: when one fails the other
//! runs degraded at twice the phase rate (Erlang-2 failure and repair,
//! shared FCFS repair unit). Valves have two equiprobable failure modes,
//! stuck-open (m1) and stuck-closed (m2); only stuck-closed breaks a pump
//! line. All other components have dedicated repair.
//!
//! The paper (and its source \[7\]) does not enumerate the exact number of
//! control valves ("a number of control valves"); this reconstruction uses
//! two per pump line, two in the heat-exchanger unit and two motor-driven
//! bypass valves — the substitution is documented in DESIGN.md.

use crate::ast::{BcDef, OmGroup, RepairStrategy, RuDef, SystemDef};
use crate::dist::Dist;
use crate::expr::Expr;

/// Pump Erlang-2 phase rate, normal mode (per hour, §5.2.1).
pub const PUMP_PHASE_RATE: f64 = 5.44e-6;
/// Pump Erlang-2 phase rate in degraded (load-sharing) mode.
pub const PUMP_PHASE_RATE_DEGRADED: f64 = 10.88e-6;
/// Pump Erlang-2 repair phase rate.
pub const PUMP_REPAIR_PHASE_RATE: f64 = 0.1;
/// Valve total failure rate (two modes at 4.2e-8 each).
pub const VALVE_RATE: f64 = 8.4e-8;
/// Filter failure rate.
pub const FILTER_RATE: f64 = 2.19e-6;
/// Heat exchanger failure rate.
pub const HX_RATE: f64 = 1.14e-6;
/// Repair rate of valves, filters and the heat exchanger.
pub const COMMON_REPAIR_RATE: f64 = 0.1;

fn valve(name: &str) -> BcDef {
    BcDef::new(name, Dist::exp(VALVE_RATE), Dist::exp(COMMON_REPAIR_RATE)).with_failure_modes(
        [0.5, 0.5],
        [Dist::exp(COMMON_REPAIR_RATE), Dist::exp(COMMON_REPAIR_RATE)],
    )
}

fn dedicated(def: &mut SystemDef, comp: &str) {
    def.add_repair_unit(RuDef::new(
        format!("{comp}.rep"),
        [comp],
        RepairStrategy::Dedicated,
    ));
}

/// Builds the full RCS model (2 control valves per pump line — see the
/// inventory note in the module docs).
pub fn rcs() -> SystemDef {
    rcs_with_valves(2)
}

/// Builds an RCS variant with `valves_per_line` control valves per pump
/// line. The paper's source \[7\] says only "a number of control valves";
/// the `exp_rcs_inventory` experiment sweeps this parameter to show how
/// the published numbers pin it down.
///
/// # Panics
///
/// Panics if `valves_per_line` is 0.
pub fn rcs_with_valves(valves_per_line: usize) -> SystemDef {
    assert!(valves_per_line > 0, "a pump line needs at least one valve");
    let mut def = SystemDef::new(format!("rcs-{valves_per_line}v"));

    // Pumps with load sharing: P1 degrades when P2 is down and vice versa.
    for (me, other) in [("P1", "P2"), ("P2", "P1")] {
        def.add_component(
            BcDef::new(
                me,
                Dist::erlang(2, PUMP_PHASE_RATE),
                Dist::erlang(2, PUMP_REPAIR_PHASE_RATE),
            )
            .with_om_group(OmGroup::NormalDegraded(Expr::down(other)))
            .with_ttf([
                Dist::erlang(2, PUMP_PHASE_RATE),
                Dist::erlang(2, PUMP_PHASE_RATE_DEGRADED),
            ]),
        );
    }
    def.add_repair_unit(RuDef::new("P.rep", ["P1", "P2"], RepairStrategy::Fcfs));

    // Pump lines: filter + inlet/outlet valves.
    for line in 1..=2 {
        let f = format!("FP{line}");
        def.add_component(BcDef::new(
            &f,
            Dist::exp(FILTER_RATE),
            Dist::exp(COMMON_REPAIR_RATE),
        ));
        dedicated(&mut def, &f);
        for k in 0..valves_per_line {
            let v = match k {
                0 => format!("VIP{line}"),
                1 => format!("VOP{line}"),
                n => format!("VC{line}_{n}"),
            };
            def.add_component(valve(&v));
            dedicated(&mut def, &v);
        }
    }

    // Heat exchanger unit: HX + filter + two valves.
    def.add_component(BcDef::new(
        "HX",
        Dist::exp(HX_RATE),
        Dist::exp(COMMON_REPAIR_RATE),
    ));
    dedicated(&mut def, "HX");
    def.add_component(BcDef::new(
        "FHX",
        Dist::exp(FILTER_RATE),
        Dist::exp(COMMON_REPAIR_RATE),
    ));
    dedicated(&mut def, "FHX");
    for v in ["VHX1", "VHX2"] {
        def.add_component(valve(v));
        dedicated(&mut def, v);
    }

    // Bypass: two motor-driven valves.
    for v in ["MDV1", "MDV2"] {
        def.add_component(valve(v));
        dedicated(&mut def, v);
    }

    // A pump line is down if its pump, filter, or a stuck-closed valve is
    // down; the HX unit if anything in it fails; the bypass if an MDV is
    // stuck closed (§5.2).
    let line = |i: u32| {
        let mut parts = vec![
            Expr::down(format!("P{i}")),
            Expr::down(format!("FP{i}")),
            Expr::down_mode(format!("VIP{i}"), 2),
        ];
        if valves_per_line >= 2 {
            parts.push(Expr::down_mode(format!("VOP{i}"), 2));
        }
        for n in 2..valves_per_line {
            parts.push(Expr::down_mode(format!("VC{i}_{n}"), 2));
        }
        Expr::Or(parts)
    };
    let hx_unit = Expr::or([
        Expr::down("HX"),
        Expr::down("FHX"),
        Expr::down("VHX1"),
        Expr::down("VHX2"),
    ]);
    let bypass = Expr::or([Expr::down_mode("MDV1", 2), Expr::down_mode("MDV2", 2)]);
    def.set_system_down(Expr::or([
        Expr::and([line(1), line(2)]),
        Expr::and([hx_unit, bypass]),
    ]));
    def
}

/// Builds a scaled RCS family with `lines` redundant pump lines (the
/// paper's system has 2). Every pump load-shares with the others: it runs
/// degraded at the doubled phase rate as soon as *any* other pump is down,
/// and all pumps share one FCFS repair unit — so the pump subsystem grows
/// combinatorially with `lines`, which is exactly what the scaling sweep
/// (`exp_scaling`) wants to stress. The heat-exchanger unit and bypass are
/// as in [`rcs`]; the system is down when **all** pump lines are down or
/// the heat-exchanger path and its bypass both fail.
///
/// # Panics
///
/// Panics if `lines < 2` (a single "redundant" line is not an RCS).
pub fn rcs_scaled(lines: usize) -> SystemDef {
    rcs_scaled_kofn(lines, 1)
}

/// The k-of-n variant of [`rcs_scaled`]: `lines` redundant pump lines of
/// which at least `k` must work — the system's pump subsystem is down as
/// soon as more than `lines - k` lines are down (a `(lines-k+1)`-of-`lines`
/// failure gate). `rcs_scaled_kofn(n, 1)` is exactly [`rcs_scaled`]`(n)`
/// ("down when every line is down"). Higher `k` keeps the per-line failure
/// *count* observable, so bisimulation can collapse much less of the pump
/// product space — the family's CTMCs grow steeply with `k`, which is what
/// the scaling sweep wants.
///
/// # Panics
///
/// Panics if `lines < 2` (a single "redundant" line is not an RCS) or
/// `k` is not in `1..=lines`.
pub fn rcs_scaled_kofn(lines: usize, k: usize) -> SystemDef {
    assert!(lines >= 2, "the RCS family needs at least two pump lines");
    assert!(
        (1..=lines).contains(&k),
        "need 1 <= k <= lines working lines, got k={k} of {lines}"
    );
    let mut def = SystemDef::new(if k == 1 {
        format!("rcs-{lines}l")
    } else {
        format!("rcs-{lines}l-{k}ofn")
    });

    // Pumps with load sharing against every sibling.
    let pump_names: Vec<String> = (1..=lines).map(|i| format!("P{i}")).collect();
    for (i, me) in pump_names.iter().enumerate() {
        let others: Vec<Expr> = pump_names
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, p)| Expr::down(p))
            .collect();
        def.add_component(
            BcDef::new(
                me,
                Dist::erlang(2, PUMP_PHASE_RATE),
                Dist::erlang(2, PUMP_REPAIR_PHASE_RATE),
            )
            .with_om_group(OmGroup::NormalDegraded(Expr::Or(others)))
            .with_ttf([
                Dist::erlang(2, PUMP_PHASE_RATE),
                Dist::erlang(2, PUMP_PHASE_RATE_DEGRADED),
            ]),
        );
    }
    def.add_repair_unit(RuDef::new(
        "P.rep",
        pump_names.clone(),
        RepairStrategy::Fcfs,
    ));

    // Pump lines: filter + inlet/outlet valves, dedicated repair.
    for line in 1..=lines {
        let f = format!("FP{line}");
        def.add_component(BcDef::new(
            &f,
            Dist::exp(FILTER_RATE),
            Dist::exp(COMMON_REPAIR_RATE),
        ));
        dedicated(&mut def, &f);
        for v in [format!("VIP{line}"), format!("VOP{line}")] {
            def.add_component(valve(&v));
            dedicated(&mut def, &v);
        }
    }

    // Heat exchanger unit + bypass, as in the 2-line model.
    def.add_component(BcDef::new(
        "HX",
        Dist::exp(HX_RATE),
        Dist::exp(COMMON_REPAIR_RATE),
    ));
    dedicated(&mut def, "HX");
    def.add_component(BcDef::new(
        "FHX",
        Dist::exp(FILTER_RATE),
        Dist::exp(COMMON_REPAIR_RATE),
    ));
    dedicated(&mut def, "FHX");
    for v in ["VHX1", "VHX2"] {
        def.add_component(valve(v));
        dedicated(&mut def, v);
    }
    for v in ["MDV1", "MDV2"] {
        def.add_component(valve(v));
        dedicated(&mut def, v);
    }

    let line_down = |i: usize| {
        Expr::or([
            Expr::down(format!("P{i}")),
            Expr::down(format!("FP{i}")),
            Expr::down_mode(format!("VIP{i}"), 2),
            Expr::down_mode(format!("VOP{i}"), 2),
        ])
    };
    let hx_unit = Expr::or([
        Expr::down("HX"),
        Expr::down("FHX"),
        Expr::down("VHX1"),
        Expr::down("VHX2"),
    ]);
    let bypass = Expr::or([Expr::down_mode("MDV1", 2), Expr::down_mode("MDV2", 2)]);
    let line_failures: Vec<Expr> = (1..=lines).map(line_down).collect();
    let pumps_down = if k == 1 {
        Expr::And(line_failures)
    } else {
        // Down as soon as fewer than k lines work, i.e. at least
        // lines - k + 1 line failures.
        Expr::k_of_n((lines - k + 1) as u32, line_failures)
    };
    def.set_system_down(Expr::or([pumps_down, Expr::and([hx_unit, bypass])]));
    def
}

/// Stiff repair-phase rate of the [`rcs_stiff`] family (per hour): three
/// orders of magnitude above [`COMMON_REPAIR_RATE`], seven above the
/// component failure rates.
pub const STIFF_REPAIR_RATE: f64 = 100.0;

/// Builds the **stiff** RCS family: `lines` redundant pump lines (pump +
/// filter, load-sharing pumps on one FCFS repair unit) plus the heat
/// exchanger and its filter, with every repair running at
/// [`STIFF_REPAIR_RATE`] — seven orders of magnitude above the failure
/// rates. The family exists to exercise the **adaptive-Λ lever** of the
/// transient engine: the global uniformization rate is `O(components ·
/// STIFF_REPAIR_RATE)` (many concurrent repairs), while virtually all
/// probability mass sits on the all-up state and a thin shell of
/// single-failure states whose exit rate is `O(STIFF_REPAIR_RATE)` —
/// so a support-windowed, per-segment-Λ engine needs a small fraction of
/// the classical scheme's DTMC steps and row traffic. Valves are left
/// out to keep the family's state space lean (the windowing lever is
/// benchmarked on `rcs_scaled`; this family isolates stiffness).
///
/// The system is down when all pump lines are down (a line needs its
/// pump and filter) or the heat-exchanger unit fails.
///
/// # Panics
///
/// Panics if `lines < 2` (a single "redundant" line is not an RCS).
pub fn rcs_stiff(lines: usize) -> SystemDef {
    assert!(lines >= 2, "the RCS family needs at least two pump lines");
    let mut def = SystemDef::new(format!("rcs-stiff-{lines}l"));

    // Pumps with load sharing against every sibling, stiff shared repair.
    let pump_names: Vec<String> = (1..=lines).map(|i| format!("P{i}")).collect();
    for (i, me) in pump_names.iter().enumerate() {
        let others: Vec<Expr> = pump_names
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, p)| Expr::down(p))
            .collect();
        def.add_component(
            BcDef::new(
                me,
                Dist::erlang(2, PUMP_PHASE_RATE),
                Dist::erlang(2, STIFF_REPAIR_RATE),
            )
            .with_om_group(OmGroup::NormalDegraded(Expr::Or(others)))
            .with_ttf([
                Dist::erlang(2, PUMP_PHASE_RATE),
                Dist::erlang(2, PUMP_PHASE_RATE_DEGRADED),
            ]),
        );
    }
    def.add_repair_unit(RuDef::new(
        "P.rep",
        pump_names.clone(),
        RepairStrategy::Fcfs,
    ));

    // Per-line filters and the heat-exchanger unit, stiff dedicated
    // repair.
    let stiff = |def: &mut SystemDef, name: &str, rate: f64| {
        def.add_component(BcDef::new(
            name,
            Dist::exp(rate),
            Dist::exp(STIFF_REPAIR_RATE),
        ));
        dedicated(def, name);
    };
    for line in 1..=lines {
        stiff(&mut def, &format!("FP{line}"), FILTER_RATE);
    }
    stiff(&mut def, "HX", HX_RATE);
    stiff(&mut def, "FHX", FILTER_RATE);

    let line_down =
        |i: usize| Expr::or([Expr::down(format!("P{i}")), Expr::down(format!("FP{i}"))]);
    let hx_unit = Expr::or([Expr::down("HX"), Expr::down("FHX")]);
    let line_failures: Vec<Expr> = (1..=lines).map(line_down).collect();
    def.set_system_down(Expr::or([Expr::And(line_failures), hx_unit]));
    def
}

/// The parametric variant of [`rcs_scaled`]: same model, with the
/// exponential rate constants declared as sweep parameters —
/// `valve_rate` ([`VALVE_RATE`]), `filter_rate` ([`FILTER_RATE`]),
/// `hx_rate` ([`HX_RATE`]) and `repair_rate` ([`COMMON_REPAIR_RATE`]).
/// Parameters bind by exact rate value: `repair_rate` also covers the
/// pump Erlang repair phases, whose rate
/// ([`PUMP_REPAIR_PHASE_RATE`]) equals [`COMMON_REPAIR_RATE`]. The pump
/// *failure* phases stay concrete (their normal and degraded rates are
/// distinct constants and scale together only as a pair).
///
/// # Panics
///
/// Panics if `lines < 2`, like [`rcs_scaled`].
pub fn rcs_scaled_parametric(lines: usize) -> SystemDef {
    let mut def = rcs_scaled(lines);
    def.add_param("valve_rate", VALVE_RATE)
        .add_param("filter_rate", FILTER_RATE)
        .add_param("hx_rate", HX_RATE)
        .add_param("repair_rate", COMMON_REPAIR_RATE);
    def
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate;

    #[test]
    fn rcs_shape() {
        let def = rcs();
        // 2 pumps + 2*(filter+2 valves) + HX + FHX + 2 VHX + 2 MDV = 14
        assert_eq!(def.components.len(), 14);
        // 1 shared pump RU + 12 dedicated
        assert_eq!(def.repair_units.len(), 13);
        validate(&def).unwrap();
    }

    #[test]
    fn valve_sweep_validates() {
        for v in 1..=4 {
            let def = rcs_with_valves(v);
            crate::model::validate(&def).unwrap();
            assert_eq!(def.components.len(), 2 + 2 * (1 + v) + 4 + 2);
        }
    }

    #[test]
    fn scaled_family_validates_and_grows() {
        for lines in 2..=4 {
            let def = rcs_scaled(lines);
            validate(&def).unwrap();
            // lines * (pump + filter + 2 valves) + HX + FHX + 2 VHX + 2 MDV
            assert_eq!(def.components.len(), 4 * lines + 6);
            // 1 shared pump RU + dedicated for everything else
            assert_eq!(def.repair_units.len(), 1 + 3 * lines + 6);
        }
    }

    #[test]
    fn scaled_two_lines_matches_baseline_measures() {
        use crate::engine::EngineOptions;
        use crate::modular::modular_analysis;
        // rcs_scaled(2) only differs from rcs() in the trigger shape
        // (`Or([x])` vs `x`), which must not change any measure.
        let base = modular_analysis(&rcs(), &EngineOptions::new()).unwrap();
        let scaled = modular_analysis(&rcs_scaled(2), &EngineOptions::new()).unwrap();
        let (t, tol) = (50.0, 1e-12);
        assert!((base.point_unavailability(t) - scaled.point_unavailability(t)).abs() < tol);
        assert!(
            (base.unreliability_with_repair(t) - scaled.unreliability_with_repair(t)).abs() < tol
        );
    }

    #[test]
    fn kofn_family_validates_and_matches_special_cases() {
        for lines in 2..=3 {
            for k in 1..=lines {
                validate(&rcs_scaled_kofn(lines, k)).unwrap();
            }
        }
        // k = 1 is definitionally rcs_scaled
        assert_eq!(rcs_scaled_kofn(3, 1), rcs_scaled(3));
        // k = lines means any line failure downs the pump subsystem: the
        // gate must be a 1-of-n
        let def = rcs_scaled_kofn(3, 3);
        match def.system_down.as_ref().unwrap() {
            Expr::Or(branches) => match &branches[0] {
                Expr::KofN(1, cs) => assert_eq!(cs.len(), 3),
                other => panic!("expected 1-of-3 gate, got {other:?}"),
            },
            other => panic!("top must be OR, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "1 <= k <= lines")]
    fn kofn_rejects_bad_k() {
        let _ = rcs_scaled_kofn(3, 4);
    }

    #[test]
    fn stiff_family_validates_and_is_stiff() {
        for lines in 2..=3 {
            let def = rcs_stiff(lines);
            validate(&def).unwrap();
            // lines pumps + lines filters + HX + FHX
            assert_eq!(def.components.len(), 2 * lines + 2);
            assert_eq!(def.repair_units.len(), 1 + lines + 2);
        }
        // Stiffness: repair-to-failure ratio spans ≥ 7 orders of
        // magnitude — the regime the adaptive-Λ engine targets.
        let stiffness = STIFF_REPAIR_RATE / PUMP_PHASE_RATE;
        assert!(stiffness >= 1e7, "stiffness ratio fell to {stiffness:e}");
    }

    #[test]
    #[should_panic(expected = "at least two pump lines")]
    fn stiff_family_rejects_single_line() {
        let _ = rcs_stiff(1);
    }

    #[test]
    fn pumps_load_share() {
        let def = rcs();
        let p1 = def.component("P1").unwrap();
        assert_eq!(p1.num_operational_states(), 2);
        assert_eq!(p1.ttf[1], Dist::erlang(2, PUMP_PHASE_RATE_DEGRADED));
    }
}
