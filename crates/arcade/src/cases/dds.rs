//! The distributed database system (paper §5.1, after \[19\]).
//!
//! Two processors (one spare managed by an SMU, shared FCFS repair), four
//! disk controllers in two sets (FCFS repair per set), and 24 disks in six
//! clusters of four (FCFS repair per cluster). The system is down iff all
//! processors are down, or some controller set is wholly down, or some
//! cluster has lost two or more disks.

use crate::ast::{BcDef, OmGroup, RepairStrategy, RuDef, SmuDef, SystemDef};
use crate::dist::Dist;
use crate::expr::Expr;

/// Failure rate of processors and disk controllers (per hour).
pub const PROC_RATE: f64 = 1.0 / 2000.0;
/// Failure rate of disks (per hour).
pub const DISK_RATE: f64 = 1.0 / 6000.0;
/// Repair rate of every component (per hour).
pub const REPAIR_RATE: f64 = 1.0;
/// The paper's mission time: 5 weeks, in hours.
pub const FIVE_WEEKS_H: f64 = 5.0 * 7.0 * 24.0;

/// Builds the full DDS model (6 disk clusters, as in the paper).
pub fn dds() -> SystemDef {
    dds_scaled(6)
}

/// Builds a DDS variant with `clusters` disk clusters (used by the scaling
/// sweep; `clusters == 6` is the paper's configuration).
pub fn dds_scaled(clusters: usize) -> SystemDef {
    let mut def = SystemDef::new(format!("dds-{clusters}cl"));

    // Processors: pp primary, ps spare (same rates in both modes, §5.1.1).
    def.add_component(BcDef::new(
        "pp",
        Dist::exp(PROC_RATE),
        Dist::exp(REPAIR_RATE),
    ));
    def.add_component(
        BcDef::new("ps", Dist::exp(PROC_RATE), Dist::exp(REPAIR_RATE))
            .with_om_group(OmGroup::ActiveInactive)
            .with_ttf([Dist::exp(PROC_RATE), Dist::exp(PROC_RATE)]),
    );
    def.add_smu(SmuDef::new("p.smu", "pp", ["ps"]));
    def.add_repair_unit(RuDef::new("p.rep", ["pp", "ps"], RepairStrategy::Fcfs));

    // Disk controllers: two sets of two, one FCFS repair unit per set.
    for i in 1..=4usize {
        def.add_component(BcDef::new(
            format!("dc_{i}"),
            Dist::exp(PROC_RATE),
            Dist::exp(REPAIR_RATE),
        ));
    }
    def.add_repair_unit(RuDef::new(
        "cs1.rep",
        ["dc_1", "dc_2"],
        RepairStrategy::Fcfs,
    ));
    def.add_repair_unit(RuDef::new(
        "cs2.rep",
        ["dc_3", "dc_4"],
        RepairStrategy::Fcfs,
    ));

    // Disks: `clusters` clusters of four, one FCFS repair unit per cluster.
    for c in 0..clusters {
        let names: Vec<String> = (1..=4).map(|k| format!("d_{}", c * 4 + k)).collect();
        for n in &names {
            def.add_component(BcDef::new(n, Dist::exp(DISK_RATE), Dist::exp(REPAIR_RATE)));
        }
        def.add_repair_unit(RuDef::new(
            format!("cluster{}.rep", c + 1),
            names,
            RepairStrategy::Fcfs,
        ));
    }

    // SYSTEM DOWN (§5.1.1).
    let mut branches = vec![
        Expr::and([Expr::down("pp"), Expr::down("ps")]),
        Expr::and([Expr::down("dc_1"), Expr::down("dc_2")]),
        Expr::and([Expr::down("dc_3"), Expr::down("dc_4")]),
    ];
    for c in 0..clusters {
        branches.push(Expr::k_of_n(
            2,
            (1..=4).map(|k| Expr::down(format!("d_{}", c * 4 + k))),
        ));
    }
    def.set_system_down(Expr::Or(branches));
    def
}

/// The full DDS model with its three rate constants declared as sweep
/// parameters — `proc_rate` ([`PROC_RATE`], processors *and* disk
/// controllers), `disk_rate` ([`DISK_RATE`]) and `repair_rate`
/// ([`REPAIR_RATE`]) — at the paper's values as bases. Evaluating at the
/// bases reproduces [`dds`] exactly; see
/// [`Session::sweep`](crate::query::Session::sweep).
pub fn dds_parametric() -> SystemDef {
    dds_scaled_parametric(6)
}

/// The parametric variant of [`dds_scaled`]: same model, with
/// `proc_rate` / `disk_rate` / `repair_rate` declared as sweep
/// parameters. Parameters bind by exact rate value, so `proc_rate`
/// covers every component using [`PROC_RATE`] (processors and disk
/// controllers alike).
pub fn dds_scaled_parametric(clusters: usize) -> SystemDef {
    let mut def = dds_scaled(clusters);
    def.add_param("proc_rate", PROC_RATE)
        .add_param("disk_rate", DISK_RATE)
        .add_param("repair_rate", REPAIR_RATE);
    def
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate;

    #[test]
    fn dds_shape() {
        let def = dds();
        assert_eq!(def.components.len(), 2 + 4 + 24);
        assert_eq!(def.repair_units.len(), 1 + 2 + 6);
        assert_eq!(def.smus.len(), 1);
        validate(&def).unwrap();
        match def.system_down.as_ref().unwrap() {
            Expr::Or(cs) => assert_eq!(cs.len(), 9),
            _ => panic!("top must be OR"),
        }
    }

    #[test]
    fn scaled_variants_validate() {
        for k in 1..=3 {
            let def = dds_scaled(k);
            assert_eq!(def.components.len(), 6 + 4 * k);
            validate(&def).unwrap();
        }
    }
}
