//! The paper's two case studies as ready-made model constructors.

pub mod dds;
pub mod rcs;

pub use dds::{dds, dds_parametric, dds_scaled, dds_scaled_parametric};
pub use rcs::{rcs, rcs_scaled, rcs_scaled_kofn, rcs_scaled_parametric, rcs_stiff};
