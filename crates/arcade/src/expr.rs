//! Boolean failure expressions.
//!
//! Arcade uses AND/OR expressions (plus the `K of N` shorthand) over
//! component failure modes in several places: the `SYSTEM DOWN` criterion,
//! mode-switch triggers (`ON-TO-OFF`, `ACCESSIBLE-TO-INACCESSIBLE`,
//! `NORMAL-TO-DEGRADED`) and the destructive functional dependency
//! (`DESTRUCTIVE FDEP`).

use std::fmt;

/// Which failure modes of a component a literal refers to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ModeRef {
    /// `x.down` — the component is down for any reason.
    Any,
    /// `x.down.mK` — down with inherent failure mode `K` (1-based).
    Mode(u32),
    /// `x.down.df` — down due to its destructive functional dependency.
    Df,
}

/// A literal: "component `component` is down (with the given mode)".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Literal {
    /// The component name.
    pub component: String,
    /// Which failure modes count.
    pub mode: ModeRef,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.mode {
            ModeRef::Any => write!(f, "{}.down", self.component),
            ModeRef::Mode(k) => write!(f, "{}.down.m{k}", self.component),
            ModeRef::Df => write!(f, "{}.down.df", self.component),
        }
    }
}

/// An AND/OR/K-of-N expression over failure literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A single literal.
    Lit(Literal),
    /// True iff all children are true.
    And(Vec<Expr>),
    /// True iff any child is true.
    Or(Vec<Expr>),
    /// True iff at least `k` children are true (the paper's `2of4` shorthand).
    KofN(u32, Vec<Expr>),
    /// Priority-AND (the extension the paper's footnote 8 suggests, after
    /// the dynamic fault tree gate of \[10\]): true iff all children are
    /// true *and* they became true in left-to-right order. Only the gate
    /// semantics observes the order; the stateless [`Expr::eval`] treats
    /// it as an AND (callers that cannot track order reject it — see
    /// [`crate::model::validate`]).
    Pand(Vec<Expr>),
}

impl Expr {
    /// Literal `component.down` (any failure mode).
    pub fn down(component: impl Into<String>) -> Self {
        Self::Lit(Literal {
            component: component.into(),
            mode: ModeRef::Any,
        })
    }

    /// Literal `component.down.mK` (1-based inherent failure mode).
    pub fn down_mode(component: impl Into<String>, k: u32) -> Self {
        Self::Lit(Literal {
            component: component.into(),
            mode: ModeRef::Mode(k),
        })
    }

    /// Literal `component.down.df` (destructive functional dependency).
    pub fn down_df(component: impl Into<String>) -> Self {
        Self::Lit(Literal {
            component: component.into(),
            mode: ModeRef::Df,
        })
    }

    /// Conjunction of the children.
    pub fn and(children: impl IntoIterator<Item = Expr>) -> Self {
        Self::And(children.into_iter().collect())
    }

    /// Disjunction of the children.
    pub fn or(children: impl IntoIterator<Item = Expr>) -> Self {
        Self::Or(children.into_iter().collect())
    }

    /// At least `k` of the children.
    pub fn k_of_n(k: u32, children: impl IntoIterator<Item = Expr>) -> Self {
        Self::KofN(k, children.into_iter().collect())
    }

    /// Priority-AND over the children (failure in left-to-right order).
    pub fn pand(children: impl IntoIterator<Item = Expr>) -> Self {
        Self::Pand(children.into_iter().collect())
    }

    /// Whether the expression contains a Priority-AND anywhere.
    pub fn contains_pand(&self) -> bool {
        match self {
            Self::Lit(_) => false,
            Self::Pand(_) => true,
            Self::And(cs) | Self::Or(cs) | Self::KofN(_, cs) => cs.iter().any(Expr::contains_pand),
        }
    }

    /// All literals of the expression, in depth-first order, without
    /// duplicates.
    pub fn literals(&self) -> Vec<&Literal> {
        let mut out: Vec<&Literal> = Vec::new();
        self.visit_literals(&mut |l| {
            if !out.contains(&l) {
                out.push(l);
            }
        });
        out
    }

    fn visit_literals<'a>(&'a self, f: &mut impl FnMut(&'a Literal)) {
        match self {
            Self::Lit(l) => f(l),
            Self::And(cs) | Self::Or(cs) | Self::KofN(_, cs) | Self::Pand(cs) => {
                for c in cs {
                    c.visit_literals(f);
                }
            }
        }
    }

    /// Evaluates the expression given a truth assignment for literals.
    pub fn eval(&self, truth: &impl Fn(&Literal) -> bool) -> bool {
        match self {
            Self::Lit(l) => truth(l),
            // Order-insensitive approximation; order-aware callers use the
            // gate semantics instead (see the variant docs).
            Self::Pand(cs) => cs.iter().all(|c| c.eval(truth)),
            Self::And(cs) => cs.iter().all(|c| c.eval(truth)),
            Self::Or(cs) => cs.iter().any(|c| c.eval(truth)),
            Self::KofN(k, cs) => cs.iter().filter(|c| c.eval(truth)).count() >= *k as usize,
        }
    }

    /// Probability that the expression is true, assuming the direct
    /// children are *statistically independent* and each child's
    /// probability is given by `prob`. Used by the analytic (Galileo-style)
    /// evaluator; the caller is responsible for the independence
    /// precondition (e.g. children over disjoint component sets).
    pub fn probability(&self, prob: &impl Fn(&Literal) -> f64) -> f64 {
        match self {
            Self::Lit(l) => prob(l),
            // Order-insensitive upper bound; the analytic evaluator rejects
            // PAND models outright.
            Self::Pand(cs) => cs.iter().map(|c| c.probability(prob)).product(),
            Self::And(cs) => cs.iter().map(|c| c.probability(prob)).product(),
            Self::Or(cs) => {
                1.0 - cs
                    .iter()
                    .map(|c| 1.0 - c.probability(prob))
                    .product::<f64>()
            }
            Self::KofN(k, cs) => {
                // dp[j] = P(exactly j of the children so far are true),
                // with j capped at k ("k or more").
                let k = *k as usize;
                let mut dp = vec![0.0f64; k + 1];
                dp[0] = 1.0;
                for c in cs {
                    let p = c.probability(prob);
                    let mut next = vec![0.0f64; k + 1];
                    for j in 0..=k {
                        next[j] += dp[j] * (1.0 - p);
                        next[(j + 1).min(k)] += dp[j] * p;
                    }
                    dp = next;
                }
                dp[k]
            }
        }
    }

    /// Number of nodes in the expression tree.
    pub fn size(&self) -> usize {
        match self {
            Self::Lit(_) => 1,
            Self::And(cs) | Self::Or(cs) | Self::KofN(_, cs) | Self::Pand(cs) => {
                1 + cs.iter().map(Expr::size).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lit(l) => write!(f, "{l}"),
            Self::And(cs) => write_joined(f, cs, " AND "),
            Self::Pand(cs) => {
                write!(f, "PAND(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Self::Or(cs) => write_joined(f, cs, " OR "),
            Self::KofN(k, cs) => {
                write!(f, "{k}of{}(", cs.len())?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

fn write_joined(f: &mut fmt::Formatter<'_>, cs: &[Expr], sep: &str) -> fmt::Result {
    write!(f, "(")?;
    for (i, c) in cs.iter().enumerate() {
        if i > 0 {
            write!(f, "{sep}")?;
        }
        write!(f, "{c}")?;
    }
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn down(name: &str) -> Expr {
        Expr::down(name)
    }

    #[test]
    fn eval_basic_gates() {
        let e = Expr::and([down("a"), Expr::or([down("b"), down("c")])]);
        let t = |l: &Literal| l.component == "a" || l.component == "c";
        assert!(e.eval(&t));
        let t2 = |l: &Literal| l.component == "a";
        assert!(!e.eval(&t2));
    }

    #[test]
    fn eval_k_of_n() {
        let e = Expr::k_of_n(2, [down("a"), down("b"), down("c"), down("d")]);
        let two = |l: &Literal| l.component == "a" || l.component == "c";
        assert!(e.eval(&two));
        let one = |l: &Literal| l.component == "a";
        assert!(!e.eval(&one));
    }

    #[test]
    fn literals_dedup_in_order() {
        let e = Expr::or([down("x"), Expr::and([down("y"), down("x")])]);
        let lits: Vec<String> = e.literals().iter().map(|l| l.to_string()).collect();
        assert_eq!(lits, vec!["x.down", "y.down"]);
    }

    #[test]
    fn probability_of_or_and() {
        let p = |_: &Literal| 0.1;
        assert!((down("a").probability(&p) - 0.1).abs() < 1e-12);
        let e = Expr::and([down("a"), down("b")]);
        assert!((e.probability(&p) - 0.01).abs() < 1e-12);
        let e = Expr::or([down("a"), down("b")]);
        assert!((e.probability(&p) - 0.19).abs() < 1e-12);
    }

    #[test]
    fn probability_of_k_of_n_matches_binomial() {
        let p = |_: &Literal| 0.2;
        let e = Expr::k_of_n(2, [down("a"), down("b"), down("c"), down("d")]);
        // P(X >= 2), X ~ Bin(4, 0.2)
        let q: f64 = 0.8;
        let expected = 1.0 - q.powi(4) - 4.0 * 0.2 * q.powi(3);
        assert!((e.probability(&p) - expected).abs() < 1e-12);
    }

    #[test]
    fn display_matches_paper_style() {
        let e = Expr::or([
            Expr::and([down("pp"), down("ps")]),
            Expr::k_of_n(2, [down("d1"), down("d2"), down("d3"), down("d4")]),
        ]);
        let s = e.to_string();
        assert!(s.contains("pp.down AND ps.down"));
        assert!(s.contains("2of4("));
        assert_eq!(Expr::down_mode("x", 2).to_string(), "x.down.m2");
        assert_eq!(Expr::down_df("x").to_string(), "x.down.df");
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::and([down("a"), down("b")]);
        assert_eq!(e.size(), 3);
    }
}
