//! Panic-safe in-flight deduplication: [`RetryCell`].
//!
//! A [`std::sync::OnceLock`] deduplicates concurrent cold builds, but its
//! contract is wrong for a resident server in two ways:
//!
//! * **After a panicking initializer** the lock is empty again and the
//!   *next* caller silently re-runs the build. Waiters that were blocked
//!   on the dying build re-run it themselves — so one poisoned request can
//!   fan out into N duplicate rebuilds with no record that anything went
//!   wrong, and the caller that panicked never told its waiters why they
//!   stalled.
//! * **A failed build cannot be retried selectively.** Storing
//!   `Result<T, E>` in the cell makes *every* error permanent, including
//!   transient ones (a tripped compute budget) that a later request with a
//!   larger budget could satisfy.
//!
//! `RetryCell` keeps the dedup property (one build in flight, waiters
//! block) and fixes both: a panicking builder *clears* the cell, wakes all
//! waiters with [`CellError::Interrupted`] (a typed error, not a silent
//! retry), and lets the next request rebuild; a builder that returns
//! `Err(e)` hands the error to the current waiters without caching it.
//! Callers that want permanent error caching simply store a `Result` as
//! the success value.

use std::sync::{Condvar, Mutex};

/// Why [`RetryCell::get_or_try_init`] did not produce a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellError<E> {
    /// The builder (ours or the one we waited on) returned this error.
    /// Not cached: a later call runs the builder again.
    Init(E),
    /// The build we were waiting on panicked. The cell was cleared, so a
    /// retry will start a fresh build. The panic itself propagates on the
    /// *builder's* thread; waiters get this marker instead.
    Interrupted,
}

#[derive(Debug)]
enum State<T> {
    Empty,
    Building,
    Ready(T),
}

#[derive(Debug)]
struct Inner<T, E> {
    state: State<T>,
    /// Bumped every time a build finishes (success, failure or panic).
    /// Waiters snapshot it before blocking to tell "the build I waited on
    /// ended" apart from "a new build started".
    epoch: u64,
    /// The typed error of the build that ended at `.0 == epoch`, kept one
    /// epoch so waiters that wake late still learn why their build failed.
    fail: Option<(u64, E)>,
}

/// A dedup cell whose builder may fail or panic without wedging anyone.
///
/// Semantics (all observable through [`RetryCell::get_or_try_init`]):
///
/// * first caller on an empty cell runs the builder; concurrent callers
///   block,
/// * `Ok(v)` is cached forever; every later call returns a clone,
/// * `Err(e)` is delivered to the running builder and every blocked
///   waiter ([`CellError::Init`]) and **not** cached,
/// * a panic clears the cell, wakes every waiter with
///   [`CellError::Interrupted`], and resumes unwinding on the builder's
///   own thread.
#[derive(Debug)]
pub struct RetryCell<T, E> {
    inner: Mutex<Inner<T, E>>,
    cv: Condvar,
}

impl<T, E> Default for RetryCell<T, E> {
    fn default() -> Self {
        Self {
            inner: Mutex::new(Inner {
                state: State::Empty,
                epoch: 0,
                fail: None,
            }),
            cv: Condvar::new(),
        }
    }
}

impl<T: Clone, E> Clone for RetryCell<T, E> {
    /// Clones the cached value if one is ready; an in-flight build is
    /// *not* carried over (the clone starts empty and builds its own).
    fn clone(&self) -> Self {
        let cell = Self::default();
        if let Some(v) = self.get() {
            cell.inner.lock().unwrap().state = State::Ready(v);
        }
        cell
    }
}

impl<T: Clone, E> RetryCell<T, E> {
    /// Creates an empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached value, if a build has completed successfully. Never
    /// blocks.
    pub fn get(&self) -> Option<T> {
        match &self.inner.lock().unwrap().state {
            State::Ready(v) => Some(v.clone()),
            _ => None,
        }
    }
}

impl<T: Clone, E: Clone> RetryCell<T, E> {
    /// Returns the cached value, or runs `f` to build it — with
    /// concurrent callers blocking on the one in-flight build. See the
    /// type-level docs for the failure semantics.
    ///
    /// The closure runs **without** the cell lock held, so it may take as
    /// long as it likes and may itself use other cells (not this one).
    ///
    /// # Errors
    ///
    /// [`CellError::Init`] if the builder (ours or the awaited one)
    /// returned an error; [`CellError::Interrupted`] if the awaited build
    /// panicked.
    pub fn get_or_try_init<F>(&self, f: F) -> Result<T, CellError<E>>
    where
        F: FnOnce() -> Result<T, E>,
    {
        let mut guard = self.inner.lock().unwrap();
        loop {
            match &guard.state {
                State::Ready(v) => return Ok(v.clone()),
                State::Empty => {
                    guard.state = State::Building;
                    drop(guard);
                    // Run the builder unlocked; catch panics so we can
                    // clear the cell and wake waiters before re-raising.
                    let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    let mut guard = self.inner.lock().unwrap();
                    guard.epoch += 1;
                    let out = match built {
                        Ok(Ok(v)) => {
                            guard.state = State::Ready(v.clone());
                            guard.fail = None;
                            Ok(v)
                        }
                        Ok(Err(e)) => {
                            guard.state = State::Empty;
                            guard.fail = Some((guard.epoch, e.clone()));
                            Err(CellError::Init(e))
                        }
                        Err(payload) => {
                            guard.state = State::Empty;
                            guard.fail = None;
                            drop(guard);
                            self.cv.notify_all();
                            std::panic::resume_unwind(payload);
                        }
                    };
                    drop(guard);
                    self.cv.notify_all();
                    return out;
                }
                State::Building => {
                    let waited_epoch = guard.epoch;
                    guard = self
                        .cv
                        .wait_while(guard, |g| {
                            matches!(g.state, State::Building) && g.epoch == waited_epoch
                        })
                        .unwrap();
                    if let State::Ready(v) = &guard.state {
                        return Ok(v.clone());
                    }
                    if guard.epoch > waited_epoch {
                        // The build we waited on ended without a value.
                        return match &guard.fail {
                            Some((ep, e)) if *ep == guard.epoch => Err(CellError::Init(e.clone())),
                            _ => Err(CellError::Interrupted),
                        };
                    }
                    // Spurious wake-up: loop and re-examine.
                }
            }
        }
    }
}

/// Best-effort text of a caught panic payload (the `&str`/`String` the
/// `panic!` macro produces; a fixed marker for exotic payloads).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn caches_success() {
        let cell: RetryCell<u32, String> = RetryCell::new();
        let runs = AtomicU32::new(0);
        let build = || {
            runs.fetch_add(1, Ordering::SeqCst);
            Ok(7)
        };
        assert_eq!(cell.get_or_try_init(build), Ok(7));
        assert_eq!(cell.get_or_try_init(|| Ok(8)), Ok(7));
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert_eq!(cell.get(), Some(7));
    }

    #[test]
    fn error_is_not_cached() {
        let cell: RetryCell<u32, String> = RetryCell::new();
        let r = cell.get_or_try_init(|| Err("nope".to_string()));
        assert_eq!(r, Err(CellError::Init("nope".to_string())));
        assert_eq!(cell.get(), None);
        assert_eq!(cell.get_or_try_init(|| Ok(3)), Ok(3));
    }

    #[test]
    fn panic_clears_and_next_call_retries() {
        let cell: Arc<RetryCell<u32, String>> = Arc::new(RetryCell::new());
        let c = cell.clone();
        let died = std::thread::spawn(move || {
            let _ = c.get_or_try_init(|| -> Result<u32, String> { panic!("chaos") });
        })
        .join();
        assert!(died.is_err(), "builder panic must propagate on its thread");
        assert_eq!(cell.get(), None);
        assert_eq!(cell.get_or_try_init(|| Ok(42)), Ok(42));
    }

    #[test]
    fn waiters_learn_about_a_panicked_build() {
        let cell: Arc<RetryCell<u32, String>> = Arc::new(RetryCell::new());
        let gate = Arc::new(std::sync::Barrier::new(2));
        let (c, g) = (cell.clone(), gate.clone());
        let builder = std::thread::spawn(move || {
            let _ = c.get_or_try_init(|| -> Result<u32, String> {
                g.wait(); // waiter is about to block on us
                std::thread::sleep(Duration::from_millis(50));
                panic!("chaos")
            });
        });
        gate.wait();
        // Give the waiter-side a beat to actually enter Building wait.
        let r = cell.get_or_try_init(|| Ok(9));
        // Either we blocked on the doomed build (Interrupted) or we raced
        // past its cleanup and rebuilt (Ok(9)); both leave the cell usable.
        match r {
            Err(CellError::Interrupted) => {
                assert_eq!(cell.get_or_try_init(|| Ok(9)), Ok(9));
            }
            Ok(9) => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert!(builder.join().is_err());
        assert_eq!(cell.get(), Some(9));
    }

    #[test]
    fn waiters_receive_the_builders_error() {
        let cell: Arc<RetryCell<u32, String>> = Arc::new(RetryCell::new());
        let gate = Arc::new(std::sync::Barrier::new(2));
        let (c, g) = (cell.clone(), gate.clone());
        let builder = std::thread::spawn(move || {
            c.get_or_try_init(|| {
                g.wait();
                std::thread::sleep(Duration::from_millis(50));
                Err("bad model".to_string())
            })
        });
        gate.wait();
        let r = cell.get_or_try_init(|| Ok(1));
        match r {
            Err(CellError::Init(e)) => assert_eq!(e, "bad model"),
            Ok(1) => {} // raced past the failed build and rebuilt
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(
            builder.join().unwrap(),
            Err(CellError::Init("bad model".to_string()))
        );
    }

    #[test]
    fn n_concurrent_cold_calls_build_once() {
        let cell: Arc<RetryCell<u32, String>> = Arc::new(RetryCell::new());
        let runs = Arc::new(AtomicU32::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (c, r) = (cell.clone(), runs.clone());
                s.spawn(move || {
                    let v = c.get_or_try_init(|| {
                        r.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(20));
                        Ok(5)
                    });
                    assert_eq!(v, Ok(5));
                });
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn clone_carries_the_value_only() {
        let cell: RetryCell<u32, String> = RetryCell::new();
        assert_eq!(cell.clone().get(), None);
        let _ = cell.get_or_try_init(|| Ok(11));
        assert_eq!(cell.clone().get(), Some(11));
    }
}
