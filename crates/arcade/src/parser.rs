//! Parser for the Arcade textual syntax (paper §3.5).
//!
//! The input is line-oriented: `KEYWORD: value` lines grouped into
//! `COMPONENT`, `REPAIR UNIT` (or `RU`), `SMU` and `SYSTEM DOWN` blocks.
//! Blank lines and `#`/`//` comments are ignored.
//!
//! ```text
//! COMPONENT: pp
//! TIME-TO-FAILURE: exp(1/2000)
//! TIME-TO-REPAIR: exp(1)
//!
//! COMPONENT: ps
//! OPERATIONAL MODES: (inactive, active)
//! TIME-TO-FAILURES: exp(1/2000), exp(1/2000)
//! TIME-TO-REPAIR: exp(1)
//!
//! REPAIR UNIT: p.rep
//! COMPONENTS: pp, ps
//! REPAIR STRATEGY: FCFS
//!
//! SMU: p.smu
//! COMPONENTS: pp, ps
//!
//! SYSTEM DOWN: pp.down AND ps.down
//! ```
//!
//! Distributions: `exp(r)`, `erlang(k, r)`, `hypo(r1, r2, ...)`, `never`;
//! numbers accept scientific notation and the paper's `1/2000` fractions.
//! Expressions: literals `x.down`, `x.down.mK`, `x.down.df`; operators
//! `AND`/`OR` (or `&`/`|`), parentheses, and the `2of4(...)` shorthand.
//! When a component has a `DESTRUCTIVE FDEP`, the *last* entry of
//! `TIME-TO-REPAIRS` is the DF repair distribution (`exp(µdf)` in the
//! paper's line (9)).

use crate::ast::{BcDef, OmGroup, RepairStrategy, RuDef, SmuDef, SystemDef};
use crate::dist::Dist;
use crate::error::ArcadeError;
use crate::expr::{Expr, Literal, ModeRef};

/// Parses a complete Arcade system description.
///
/// # Errors
///
/// Returns [`ArcadeError::Parse`] with a line number on syntax errors; the
/// result is *not* yet semantically validated (use
/// [`crate::model::validate`] or [`crate::Analysis::new`]).
pub fn parse_system(input: &str) -> Result<SystemDef, ArcadeError> {
    let mut def = SystemDef::new("parsed");
    let mut block: Option<Block> = None;

    for (lineno, raw) in input.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let (key, value) = split_keyword(line, lineno)?;
        let key_norm = key.to_ascii_uppercase();
        match key_norm.as_str() {
            "COMPONENT" => {
                flush(&mut def, block.take(), lineno)?;
                block = Some(Block::Component(ComponentBlock::new(value)));
            }
            "REPAIR UNIT" | "RU" => {
                flush(&mut def, block.take(), lineno)?;
                block = Some(Block::Ru(RuBlock::new(value)));
            }
            "SMU" => {
                flush(&mut def, block.take(), lineno)?;
                block = Some(Block::Smu(SmuBlock::new(value)));
            }
            "SYSTEM DOWN" => {
                flush(&mut def, block.take(), lineno)?;
                def.set_system_down(parse_expr(value, lineno)?);
            }
            _ => match &mut block {
                Some(Block::Component(c)) => c.line(&key_norm, value, lineno)?,
                Some(Block::Ru(r)) => r.line(&key_norm, value, lineno)?,
                Some(Block::Smu(s)) => s.line(&key_norm, value, lineno)?,
                None => return Err(parse_err(lineno, format!("`{key}` outside of any block"))),
            },
        }
    }
    flush(&mut def, block.take(), input.lines().count())?;
    Ok(def)
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find('#').unwrap_or(line.len());
    let cut2 = line.find("//").unwrap_or(line.len());
    &line[..cut.min(cut2)]
}

fn split_keyword(line: &str, lineno: usize) -> Result<(&str, &str), ArcadeError> {
    let colon = line
        .find(':')
        .ok_or_else(|| parse_err(lineno, "expected `KEYWORD: value`"))?;
    Ok((line[..colon].trim(), line[colon + 1..].trim()))
}

fn parse_err(line: usize, message: impl Into<String>) -> ArcadeError {
    ArcadeError::Parse {
        line,
        message: message.into(),
    }
}

#[allow(clippy::large_enum_variant)] // one block is live at a time
enum Block {
    Component(ComponentBlock),
    Ru(RuBlock),
    Smu(SmuBlock),
}

fn flush(def: &mut SystemDef, block: Option<Block>, lineno: usize) -> Result<(), ArcadeError> {
    match block {
        None => Ok(()),
        Some(Block::Component(c)) => {
            def.add_component(c.finish(lineno)?);
            Ok(())
        }
        Some(Block::Ru(r)) => {
            def.add_repair_unit(r.finish(lineno)?);
            Ok(())
        }
        Some(Block::Smu(s)) => {
            def.add_smu(s.finish(lineno)?);
            Ok(())
        }
    }
}

struct ComponentBlock {
    name: String,
    groups: Vec<String>,
    acc_expr: Option<Expr>,
    on_off_expr: Option<Expr>,
    degraded_expr: Option<Expr>,
    inacc_means_down: bool,
    ttf: Vec<Dist>,
    probs: Vec<f64>,
    ttr: Vec<Dist>,
    df: Option<Expr>,
}

impl ComponentBlock {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            groups: Vec::new(),
            acc_expr: None,
            on_off_expr: None,
            degraded_expr: None,
            inacc_means_down: false,
            ttf: Vec::new(),
            probs: Vec::new(),
            ttr: Vec::new(),
            df: None,
        }
    }

    fn line(&mut self, key: &str, value: &str, lineno: usize) -> Result<(), ArcadeError> {
        match key {
            "OPERATIONAL MODES" => {
                self.groups = parse_groups(value, lineno)?;
            }
            "ACCESSIBLE-TO-INACCESSIBLE" => self.acc_expr = Some(parse_expr(value, lineno)?),
            "INACCESSIBLE MEANS DOWN" => {
                self.inacc_means_down = match value.to_ascii_uppercase().as_str() {
                    "YES" => true,
                    "NO" => false,
                    other => {
                        return Err(parse_err(
                            lineno,
                            format!("expected YES or NO, got `{other}`"),
                        ))
                    }
                }
            }
            "ON-TO-OFF" => self.on_off_expr = Some(parse_expr(value, lineno)?),
            "NORMAL-TO-DEGRADED" => self.degraded_expr = Some(parse_expr(value, lineno)?),
            "TIME-TO-FAILURE" | "TIME-TO-FAILURES" => {
                self.ttf = split_args(value)
                    .iter()
                    .map(|v| parse_dist(v, lineno))
                    .collect::<Result<_, _>>()?;
            }
            "FAILURE MODE PROBABILITIES" => {
                self.probs = split_args(value)
                    .iter()
                    .map(|v| parse_number(v, lineno))
                    .collect::<Result<_, _>>()?;
            }
            "TIME-TO-REPAIR" | "TIME-TO-REPAIRS" => {
                self.ttr = split_args(value)
                    .iter()
                    .map(|v| parse_dist(v, lineno))
                    .collect::<Result<_, _>>()?;
            }
            "DESTRUCTIVE FDEP" => self.df = Some(parse_expr(value, lineno)?),
            other => {
                return Err(parse_err(
                    lineno,
                    format!("unknown component line `{other}`"),
                ))
            }
        }
        Ok(())
    }

    fn finish(mut self, lineno: usize) -> Result<BcDef, ArcadeError> {
        if self.ttf.is_empty() {
            return Err(parse_err(
                lineno,
                format!("component `{}` misses TIME-TO-FAILURE", self.name),
            ));
        }
        let mut om_groups = Vec::new();
        for g in &self.groups {
            let group = match g.as_str() {
                "inactive,active" | "active,inactive" => OmGroup::ActiveInactive,
                "on,off" => OmGroup::OnOff(self.on_off_expr.take().ok_or_else(|| {
                    parse_err(
                        lineno,
                        format!("component `{}`: (on, off) needs ON-TO-OFF", self.name),
                    )
                })?),
                "accessible,inaccessible" => {
                    OmGroup::AccessibleInaccessible(self.acc_expr.take().ok_or_else(|| {
                        parse_err(
                            lineno,
                            format!(
                                "component `{}`: (accessible, inaccessible) needs \
                                 ACCESSIBLE-TO-INACCESSIBLE",
                                self.name
                            ),
                        )
                    })?)
                }
                "normal,degraded" => {
                    OmGroup::NormalDegraded(self.degraded_expr.take().ok_or_else(|| {
                        parse_err(
                            lineno,
                            format!(
                                "component `{}`: (normal, degraded) needs NORMAL-TO-DEGRADED",
                                self.name
                            ),
                        )
                    })?)
                }
                other => {
                    return Err(parse_err(
                        lineno,
                        format!("unknown operational mode group `({other})`"),
                    ))
                }
            };
            om_groups.push(group);
        }
        let probs = if self.probs.is_empty() {
            vec![1.0]
        } else {
            self.probs
        };
        let mut ttr = if self.ttr.is_empty() {
            vec![Dist::exp(1.0); probs.len()]
        } else {
            self.ttr
        };
        // With a DESTRUCTIVE FDEP, the last repair entry is µ_df (§3.5.1
        // line (9)).
        let ttr_df = if self.df.is_some() {
            if ttr.len() == probs.len() + 1 {
                ttr.pop()
            } else if ttr.len() == probs.len() {
                Some(ttr.last().expect("nonempty").clone())
            } else {
                return Err(parse_err(
                    lineno,
                    format!(
                        "component `{}`: expected {} or {} repair distributions",
                        self.name,
                        probs.len(),
                        probs.len() + 1
                    ),
                ));
            }
        } else {
            None
        };
        Ok(BcDef {
            name: self.name,
            om_groups,
            inaccessible_means_down: self.inacc_means_down,
            ttf: self.ttf,
            failure_mode_probs: probs,
            ttr,
            ttr_df,
            df: self.df,
        })
    }
}

struct RuBlock {
    name: String,
    components: Vec<String>,
    strategy: Option<RepairStrategy>,
    priorities: Vec<u32>,
}

impl RuBlock {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            components: Vec::new(),
            strategy: None,
            priorities: Vec::new(),
        }
    }

    fn line(&mut self, key: &str, value: &str, lineno: usize) -> Result<(), ArcadeError> {
        match key {
            "COMPONENTS" => {
                self.components = split_args(value).iter().map(|s| s.to_string()).collect()
            }
            "STRATEGY" | "REPAIR STRATEGY" => {
                self.strategy = Some(match value.to_ascii_uppercase().as_str() {
                    "DEDICATED" => RepairStrategy::Dedicated,
                    "FCFS" => RepairStrategy::Fcfs,
                    "PP" => RepairStrategy::PreemptivePriority,
                    "PNP" => RepairStrategy::NonPreemptivePriority,
                    other => return Err(parse_err(lineno, format!("unknown strategy `{other}`"))),
                })
            }
            "PRIORITIES" => {
                self.priorities = split_args(value)
                    .iter()
                    .map(|v| {
                        v.parse::<u32>()
                            .map_err(|_| parse_err(lineno, format!("bad priority `{v}`")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(parse_err(lineno, format!("unknown RU line `{other}`"))),
        }
        Ok(())
    }

    fn finish(self, lineno: usize) -> Result<RuDef, ArcadeError> {
        let strategy = self
            .strategy
            .ok_or_else(|| parse_err(lineno, format!("RU `{}` misses STRATEGY", self.name)))?;
        Ok(RuDef {
            name: self.name,
            components: self.components,
            strategy,
            priorities: self.priorities,
        })
    }
}

struct SmuBlock {
    name: String,
    components: Vec<String>,
    failover: Option<Dist>,
}

impl SmuBlock {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            components: Vec::new(),
            failover: None,
        }
    }

    fn line(&mut self, key: &str, value: &str, lineno: usize) -> Result<(), ArcadeError> {
        match key {
            "COMPONENTS" => {
                self.components = split_args(value).iter().map(|s| s.to_string()).collect()
            }
            "FAILOVER-TIME" => self.failover = Some(parse_dist(value, lineno)?),
            other => return Err(parse_err(lineno, format!("unknown SMU line `{other}`"))),
        }
        Ok(())
    }

    fn finish(self, lineno: usize) -> Result<SmuDef, ArcadeError> {
        if self.components.len() < 2 {
            return Err(parse_err(
                lineno,
                format!("SMU `{}` needs a primary and at least one spare", self.name),
            ));
        }
        let mut smu = SmuDef::new(
            self.name,
            self.components[0].clone(),
            self.components[1..].to_vec(),
        );
        if let Some(f) = self.failover {
            smu = smu.with_failover(f);
        }
        Ok(smu)
    }
}

/// Splits a comma-separated list, respecting parentheses (so
/// `erlang(2, 0.1), exp(1)` splits into two items).
fn split_args(value: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, ch) in value.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(value[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = value[start..].trim();
    if !last.is_empty() {
        out.push(last);
    }
    out
}

fn parse_groups(value: &str, lineno: usize) -> Result<Vec<String>, ArcadeError> {
    // "(inactive, active) (on, off)" -> ["inactive,active", "on,off"]
    let mut out = Vec::new();
    let mut rest = value.trim();
    while !rest.is_empty() {
        if !rest.starts_with('(') {
            return Err(parse_err(
                lineno,
                "operational mode groups must be parenthesized",
            ));
        }
        let close = rest
            .find(')')
            .ok_or_else(|| parse_err(lineno, "unclosed `(` in OPERATIONAL MODES"))?;
        let inner: String = rest[1..close]
            .split(',')
            .map(|s| s.trim().to_ascii_lowercase())
            .collect::<Vec<_>>()
            .join(",");
        out.push(inner);
        rest = rest[close + 1..].trim_start_matches(|c: char| c == ',' || c.is_whitespace());
    }
    Ok(out)
}

/// Parses a number: float literal, scientific notation, or a `p/q`
/// fraction as the paper writes rates like `exp(1/2000)`.
fn parse_number(s: &str, lineno: usize) -> Result<f64, ArcadeError> {
    let s = s.trim();
    if let Some((num, den)) = s.split_once('/') {
        let n: f64 = num
            .trim()
            .parse()
            .map_err(|_| parse_err(lineno, format!("bad number `{s}`")))?;
        let d: f64 = den
            .trim()
            .parse()
            .map_err(|_| parse_err(lineno, format!("bad number `{s}`")))?;
        if d == 0.0 {
            return Err(parse_err(lineno, format!("division by zero in `{s}`")));
        }
        return Ok(n / d);
    }
    // Allow the paper's `5.44 · 10−6` style only in its ASCII form 5.44e-6.
    s.parse()
        .map_err(|_| parse_err(lineno, format!("bad number `{s}`")))
}

/// Parses a distribution: `exp(r)`, `erlang(k, r)`, `hypo(...)`, `never`.
pub fn parse_dist(s: &str, lineno: usize) -> Result<Dist, ArcadeError> {
    let s = s.trim();
    if s.eq_ignore_ascii_case("never") {
        return Ok(Dist::Never);
    }
    let open = s
        .find('(')
        .ok_or_else(|| parse_err(lineno, format!("bad distribution `{s}`")))?;
    if !s.ends_with(')') {
        return Err(parse_err(lineno, format!("bad distribution `{s}`")));
    }
    let head = s[..open].trim().to_ascii_lowercase();
    let args = split_args(&s[open + 1..s.len() - 1]);
    match head.as_str() {
        "exp" => {
            if args.len() != 1 {
                return Err(parse_err(lineno, "exp takes one rate"));
            }
            let r = parse_number(args[0], lineno)?;
            if !(r.is_finite() && r >= 0.0) {
                return Err(parse_err(lineno, format!("bad rate `{}`", args[0])));
            }
            Ok(Dist::exp(r))
        }
        "erlang" => {
            if args.len() != 2 {
                return Err(parse_err(lineno, "erlang takes (phases, rate)"));
            }
            let k: u32 = args[0]
                .parse()
                .map_err(|_| parse_err(lineno, format!("bad phase count `{}`", args[0])))?;
            let r = parse_number(args[1], lineno)?;
            if k == 0 || !(r.is_finite() && r > 0.0) {
                return Err(parse_err(lineno, format!("bad erlang `{s}`")));
            }
            Ok(Dist::erlang(k, r))
        }
        "hypo" => {
            let rates: Vec<f64> = args
                .iter()
                .map(|a| parse_number(a, lineno))
                .collect::<Result<_, _>>()?;
            if rates.is_empty() || rates.iter().any(|r| !(r.is_finite() && *r > 0.0)) {
                return Err(parse_err(lineno, format!("bad hypo `{s}`")));
            }
            Ok(Dist::hypo(rates))
        }
        other => Err(parse_err(lineno, format!("unknown distribution `{other}`"))),
    }
}

/// Parses an AND/OR/K-of-N expression.
pub fn parse_expr(s: &str, lineno: usize) -> Result<Expr, ArcadeError> {
    let tokens = tokenize(s, lineno)?;
    let mut p = ExprParser {
        tokens,
        pos: 0,
        lineno,
    };
    let e = p.parse_or()?;
    if p.pos != p.tokens.len() {
        return Err(parse_err(
            lineno,
            format!("unexpected `{}`", p.tokens[p.pos]),
        ));
    }
    Ok(e)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LParen,
    RParen,
    Comma,
    And,
    Or,
    Pand,
    KofN(u32, u32),
    Ident(String),
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::And => write!(f, "AND"),
            Tok::Or => write!(f, "OR"),
            Tok::Pand => write!(f, "PAND"),
            Tok::KofN(k, n) => write!(f, "{k}of{n}"),
            Tok::Ident(s) => write!(f, "{s}"),
        }
    }
}

fn tokenize(s: &str, lineno: usize) -> Result<Vec<Tok>, ArcadeError> {
    let mut out = Vec::new();
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '&' | '∧' => {
                out.push(Tok::And);
                i += 1;
            }
            '|' | '∨' => {
                out.push(Tok::Or);
                i += 1;
            }
            _ if c.is_alphanumeric() || c == '_' || c == '.' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let upper = word.to_ascii_uppercase();
                if upper == "AND" {
                    out.push(Tok::And);
                } else if upper == "OR" {
                    out.push(Tok::Or);
                } else if upper == "PAND" {
                    out.push(Tok::Pand);
                } else if let Some(kn) = parse_kofn_word(&word) {
                    out.push(Tok::KofN(kn.0, kn.1));
                } else {
                    out.push(Tok::Ident(word));
                }
            }
            other => return Err(parse_err(lineno, format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

/// Recognizes `2of4`-style words.
fn parse_kofn_word(w: &str) -> Option<(u32, u32)> {
    let lower = w.to_ascii_lowercase();
    let (k, n) = lower.split_once("of")?;
    Some((k.parse().ok()?, n.parse().ok()?))
}

struct ExprParser {
    tokens: Vec<Tok>,
    pos: usize,
    lineno: usize,
}

impl ExprParser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn eat(&mut self, t: &Tok) -> Result<(), ArcadeError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(parse_err(
                self.lineno,
                format!(
                    "expected `{t}`, found `{}`",
                    self.peek().map_or("end".to_owned(), ToString::to_string)
                ),
            ))
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ArcadeError> {
        let mut items = vec![self.parse_and()?];
        while self.peek() == Some(&Tok::Or) {
            self.pos += 1;
            items.push(self.parse_and()?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("one item")
        } else {
            Expr::Or(items)
        })
    }

    fn parse_and(&mut self) -> Result<Expr, ArcadeError> {
        let mut items = vec![self.parse_atom()?];
        while self.peek() == Some(&Tok::And) {
            self.pos += 1;
            items.push(self.parse_atom()?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("one item")
        } else {
            Expr::And(items)
        })
    }

    fn parse_atom(&mut self) -> Result<Expr, ArcadeError> {
        match self.peek().cloned() {
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.parse_or()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Pand) => {
                self.pos += 1;
                self.eat(&Tok::LParen)?;
                let mut children = vec![self.parse_or()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                    children.push(self.parse_or()?);
                }
                self.eat(&Tok::RParen)?;
                if children.len() < 2 {
                    return Err(parse_err(self.lineno, "PAND needs at least two operands"));
                }
                Ok(Expr::Pand(children))
            }
            Some(Tok::KofN(k, n)) => {
                self.pos += 1;
                self.eat(&Tok::LParen)?;
                let mut children = vec![self.parse_or()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                    children.push(self.parse_or()?);
                }
                self.eat(&Tok::RParen)?;
                if children.len() != n as usize {
                    return Err(parse_err(
                        self.lineno,
                        format!("{k}of{n} applied to {} operands", children.len()),
                    ));
                }
                Ok(Expr::KofN(k, children))
            }
            Some(Tok::Ident(word)) => {
                self.pos += 1;
                parse_literal(&word, self.lineno)
            }
            other => Err(parse_err(
                self.lineno,
                format!(
                    "expected an expression, found `{}`",
                    other.map_or("end".to_owned(), |t| t.to_string())
                ),
            )),
        }
    }
}

/// Parses `name.down`, `name.down.mK`, `name.down.df` literals.
fn parse_literal(word: &str, lineno: usize) -> Result<Expr, ArcadeError> {
    let parts: Vec<&str> = word.rsplitn(3, '.').collect();
    // parts are reversed: [last, middle, rest...]
    if parts.len() >= 2 && parts[0].eq_ignore_ascii_case("down") {
        let component = {
            let mut c: Vec<&str> = parts[1..].to_vec();
            c.reverse();
            c.join(".")
        };
        return Ok(Expr::Lit(Literal {
            component,
            mode: ModeRef::Any,
        }));
    }
    if parts.len() == 3 && parts[1].eq_ignore_ascii_case("down") {
        let component = parts[2].to_owned();
        let mode = if parts[0].eq_ignore_ascii_case("df") {
            ModeRef::Df
        } else if let Some(num) = parts[0].strip_prefix('m') {
            ModeRef::Mode(
                num.parse()
                    .map_err(|_| parse_err(lineno, format!("bad failure mode `{}`", parts[0])))?,
            )
        } else {
            return Err(parse_err(lineno, format!("bad literal `{word}`")));
        };
        return Ok(Expr::Lit(Literal { component, mode }));
    }
    Err(parse_err(
        lineno,
        format!("bad literal `{word}` (expected `x.down[.mK|.df]`)"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_dds_processors() {
        let text = "
COMPONENT: pp
TIME-TO-FAILURE: exp(1/2000)
TIME-TO-REPAIR: exp(1)

COMPONENT: ps
OPERATIONAL MODES: (inactive, active)
TIME-TO-FAILURES: exp(1/2000), exp(1/2000)
TIME-TO-REPAIR: exp(1)

REPAIR UNIT: p.rep
COMPONENTS: pp, ps
REPAIR STRATEGY: FCFS

SMU: p.smu
COMPONENTS: pp, ps

SYSTEM DOWN: pp.down AND ps.down
";
        let def = parse_system(text).unwrap();
        assert_eq!(def.components.len(), 2);
        assert_eq!(def.components[0].ttf, vec![Dist::exp(1.0 / 2000.0)]);
        assert!(def.components[1].has_active_inactive());
        assert_eq!(def.components[1].ttf.len(), 2);
        assert_eq!(def.repair_units[0].strategy, RepairStrategy::Fcfs);
        assert_eq!(def.smus[0].primary, "pp");
        assert_eq!(
            def.system_down.as_ref().unwrap().to_string(),
            "(pp.down AND ps.down)"
        );
    }

    #[test]
    fn parses_rcs_pump() {
        let text = "
COMPONENT: P2
TIME-TO-FAILURE: exp(1)
TIME-TO-REPAIR: exp(1)

COMPONENT: P1
OPERATIONAL MODES: (normal, degraded)
NORMAL-TO-DEGRADED: P2.down
TIME-TO-FAILURES: erlang(2, 5.44e-6), erlang(2, 10.88e-6)
TIME-TO-REPAIR: erlang(2, 0.1)

SYSTEM DOWN: P1.down OR P2.down
";
        let def = parse_system(text).unwrap();
        let p1 = def.component("P1").unwrap();
        assert_eq!(p1.om_groups.len(), 1);
        assert_eq!(p1.ttf[0], Dist::erlang(2, 5.44e-6));
        assert_eq!(p1.ttf[1], Dist::erlang(2, 10.88e-6));
        crate::model::validate(&def).unwrap();
    }

    #[test]
    fn parses_failure_modes_with_df() {
        let text = "
COMPONENT: fan
TIME-TO-FAILURE: exp(0.001)
TIME-TO-REPAIR: exp(1)

COMPONENT: cpu
TIME-TO-FAILURE: exp(8.4e-8)
FAILURE MODE PROBABILITIES: 0.5, 0.5
TIME-TO-REPAIRS: exp(0.1), exp(0.2), exp(0.3)
DESTRUCTIVE FDEP: fan.down

SYSTEM DOWN: cpu.down.m2 OR cpu.down.df
";
        let def = parse_system(text).unwrap();
        let cpu = def.component("cpu").unwrap();
        assert_eq!(cpu.failure_mode_probs, vec![0.5, 0.5]);
        assert_eq!(cpu.ttr.len(), 2);
        assert_eq!(cpu.ttr_df, Some(Dist::exp(0.3)));
        crate::model::validate(&def).unwrap();
    }

    #[test]
    fn parses_kofn_and_nested() {
        let e = parse_expr(
            "(a.down AND b.down) OR 2of4(c.down, d.down, e.down, f.down)",
            1,
        )
        .unwrap();
        match e {
            Expr::Or(cs) => {
                assert!(matches!(cs[0], Expr::And(_)));
                assert!(matches!(cs[1], Expr::KofN(2, _)));
            }
            _ => panic!("expected OR"),
        }
    }

    #[test]
    fn kofn_arity_mismatch_rejected() {
        assert!(parse_expr("2of4(a.down, b.down)", 1).is_err());
    }

    #[test]
    fn failover_smu() {
        let text = "
COMPONENT: pp
TIME-TO-FAILURE: exp(0.001)

COMPONENT: ps
OPERATIONAL MODES: (inactive, active)
TIME-TO-FAILURES: exp(0.001), exp(0.001)

SMU: m
COMPONENTS: pp, ps
FAILOVER-TIME: exp(10)

SYSTEM DOWN: pp.down AND ps.down
";
        let def = parse_system(text).unwrap();
        assert_eq!(def.smus[0].failover, Some(Dist::exp(10.0)));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_system("COMPONENT: x\nBOGUS LINE: 3\n").unwrap_err();
        match err {
            ArcadeError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let def = parse_system(
            "# a comment\nCOMPONENT: x // trailing\nTIME-TO-FAILURE: exp(1)\n\nSYSTEM DOWN: x.down\n",
        )
        .unwrap();
        assert_eq!(def.components.len(), 1);
    }

    #[test]
    fn fraction_numbers() {
        assert_eq!(parse_number("1/2000", 1).unwrap(), 1.0 / 2000.0);
        assert!(parse_number("1/0", 1).is_err());
        assert_eq!(parse_number("5.44e-6", 1).unwrap(), 5.44e-6);
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(parse_dist("exp()", 1).is_err());
        assert!(parse_dist("weibull(1,2)", 1).is_err());
        assert!(parse_expr("x.downy", 1).is_err());
        assert!(parse_expr("x.down AND", 1).is_err());
        assert!(parse_system("STRAY: 1\n").is_err());
    }
}
