//! I/O-IMC semantics of the Arcade building blocks (paper §3, Figs. 2–9).
//!
//! Every block type translates to an input-enabled I/O-IMC over the signal
//! vocabulary of [`crate::model::Signals`]:
//!
//! * [`bc`] — basic components: operational-mode groups, phase-type
//!   failure/repair, multiple failure modes, destructive dependencies,
//! * [`ru`] — repair units with dedicated/FCFS/priority strategies,
//! * [`smu`] — spare management units with optional failover delay,
//! * [`gate`] — fault-tree gates for the `SYSTEM DOWN` expression,
//! * [`observer`] — the two-state block that turns the top gate's signals
//!   into the CTMC's "system down" label bit.
//!
//! All builders share one discipline, enforced by the [`explore`] driver:
//! a block is a deterministic reactive machine whose abstract states expose
//! **at most one urgent output** (the pending announcement), react to
//! every input, and race Markovian transitions only when no announcement
//! is pending. This guarantees the composed system is weakly deterministic
//! (up to the confluent interleaving diamonds the reduction pipeline
//! resolves), which `bisim::vanishing::eliminate_vanishing` requires.

pub mod bc;
pub mod gate;
pub mod observer;
pub mod ru;
pub mod smu;

use std::collections::HashMap;
use std::hash::Hash;

use ioimc::builder::IoImcBuilder;
use ioimc::{ActionId, IoImc, RateForm};

use crate::ast::SystemDef;
use crate::error::ArcadeError;

/// Maps raw distribution rates to declared parameters by bit-equality of
/// the base value (see [`crate::ast::RateParam`]). An empty pool means the
/// model is concrete and blocks carry no rate forms at all — the legacy,
/// zero-overhead path.
#[derive(Debug, Clone, Default)]
pub(crate) struct ParamPool {
    /// `(base bits, parameter id)` per declared parameter.
    bound: Vec<(u64, u32)>,
}

impl ParamPool {
    pub(crate) fn from_def(def: &SystemDef) -> Self {
        Self {
            bound: def
                .params
                .iter()
                .enumerate()
                .map(|(i, p)| (p.base.to_bits(), i as u32))
                .collect(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.bound.is_empty()
    }

    /// The parameter bound to `raw`, if any.
    pub(crate) fn lookup(&self, raw: f64) -> Option<u32> {
        let bits = raw.to_bits();
        self.bound
            .iter()
            .find(|&&(b, _)| b == bits)
            .map(|&(_, pid)| pid)
    }
}

/// A block's behaviour as a deterministic reactive machine over abstract
/// states. Implementations must be *canonical*: states that should be
/// indistinguishable must compare equal (normalize eagerly).
pub(crate) trait Behaviour {
    /// The abstract state type.
    type State: Clone + Eq + Hash;

    /// The pending urgent output of `s`, if any, with its successor.
    /// At most one announcement may be pending per state.
    fn output(&self, s: &Self::State) -> Option<(ActionId, Self::State)>;

    /// The reaction to input `a` (must be defined for every declared
    /// input; return a clone of `s` for "ignore").
    fn on_input(&self, s: &Self::State, a: ActionId) -> Self::State;

    /// The Markovian races of `s` as `(raw, mult, successor)` triples:
    /// `raw` is the declared distribution rate (what parameters bind to,
    /// see [`ParamPool`]) and `mult` a branching multiplier (failure-mode
    /// probability; `1.0` otherwise). The effective transition rate is
    /// `raw * mult`. Only consulted when no output is pending (maximal
    /// progress — an unstable state cannot let time pass, so offering its
    /// rates would only inflate the automaton).
    fn markovian(&self, s: &Self::State) -> Vec<(f64, f64, Self::State)>;
}

/// Explores the reachable abstract states of `b` and assembles the
/// I/O-IMC with the given signature.
///
/// # Errors
///
/// Returns [`ArcadeError::Build`] if the automaton fails validation
/// (which would indicate a bug in a behaviour implementation).
pub(crate) fn explore<B: Behaviour>(
    b: &B,
    initial: B::State,
    inputs: &[ActionId],
    outputs: &[ActionId],
    pool: &ParamPool,
) -> Result<IoImc, ArcadeError> {
    let mut builder = IoImcBuilder::new();
    builder.set_inputs(inputs.iter().copied());
    builder.set_outputs(outputs.iter().copied());

    let mut index: HashMap<B::State, u32> = HashMap::new();
    let mut todo: Vec<B::State> = Vec::new();
    let intern = |s: B::State,
                  builder: &mut IoImcBuilder,
                  todo: &mut Vec<B::State>,
                  index: &mut HashMap<B::State, u32>|
     -> u32 {
        if let Some(&id) = index.get(&s) {
            return id;
        }
        let id = builder.add_state();
        index.insert(s.clone(), id);
        todo.push(s);
        id
    };
    let init_id = intern(initial, &mut builder, &mut todo, &mut index);
    debug_assert_eq!(init_id, 0);

    let mut next = 0usize;
    while next < todo.len() {
        let state = todo[next].clone();
        let src = index[&state];
        next += 1;
        let pending = b.output(&state);
        if let Some((a, succ)) = &pending {
            let t = intern(succ.clone(), &mut builder, &mut todo, &mut index);
            builder.interactive(src, *a, t);
        }
        for &a in inputs {
            let succ = b.on_input(&state, a);
            let t = intern(succ, &mut builder, &mut todo, &mut index);
            builder.interactive(src, a, t);
        }
        if pending.is_none() {
            for (raw, mult, succ) in b.markovian(&state) {
                let t = intern(succ, &mut builder, &mut todo, &mut index);
                // `raw * 1.0 == raw` bitwise, so concrete models see the
                // exact rates they always did.
                let rate = raw * mult;
                if pool.is_empty() {
                    builder.markovian(src, rate, t);
                } else {
                    let form = match pool.lookup(raw) {
                        Some(pid) => RateForm::scaled(pid, mult),
                        None => RateForm::constant(rate),
                    };
                    builder.markovian_formed(src, rate, t, form);
                }
            }
        }
    }
    builder
        .build()
        .map_err(|e| ArcadeError::build(format!("block automaton invalid: {e}")))
}
