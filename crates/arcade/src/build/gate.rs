//! Fault-tree gate automata for the `SYSTEM DOWN` criterion (§3.4).
//!
//! Every composite node of the expression becomes one gate block named
//! `gate{N}` with post-order numbering (children before parents, so the
//! *top* gate is always the last block). A gate listens to its children —
//! failure/up signals for literal children, `gate{M}.failed`/`gate{M}.up`
//! for gate children — and announces its own value changes on
//! `gate{N}.failed`/`gate{N}.up`. A bare-literal criterion gets a
//! single-child wrapper gate so the observer always has a top gate to
//! listen to.
//!
//! The Priority-AND gate (footnote 8, after the dynamic fault tree gate of
//! \[10\]) is order-sensitive: it fires only when all children are true
//! *and* they became true in left-to-right order. An out-of-order failure
//! latches the gate false until every child is up again (renewal).

use ioimc::{ActionId, Alphabet};
use std::collections::HashMap;

use crate::build::{explore, Behaviour};
use crate::error::ArcadeError;
use crate::expr::{Expr, Literal};
use crate::model::{Block, Signals};

/// The boolean connective of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    And,
    Or,
    KofN(u32),
    Pand,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct St {
    /// Truth bits, one per child.
    truth: u32,
    /// PAND order violation latch.
    violated: bool,
    /// The value last announced to the environment.
    announced: bool,
}

struct GateBehaviour {
    kind: Kind,
    num_children: usize,
    set_mask: HashMap<ActionId, u32>,
    clear_mask: HashMap<ActionId, u32>,
    failed: ActionId,
    up: ActionId,
}

impl GateBehaviour {
    fn value(&self, s: &St) -> bool {
        let count = s.truth.count_ones();
        let all = count as usize == self.num_children;
        match self.kind {
            Kind::And => all,
            Kind::Or => count > 0,
            Kind::KofN(k) => count >= k,
            Kind::Pand => all && !s.violated,
        }
    }
}

impl Behaviour for GateBehaviour {
    type State = St;

    fn output(&self, s: &St) -> Option<(ActionId, St)> {
        let v = self.value(s);
        if v == s.announced {
            return None;
        }
        Some((
            if v { self.failed } else { self.up },
            St {
                announced: v,
                ..s.clone()
            },
        ))
    }

    fn on_input(&self, s: &St, a: ActionId) -> St {
        let set = self.set_mask.get(&a).copied().unwrap_or(0);
        let clear = self.clear_mask.get(&a).copied().unwrap_or(0);
        let truth = (s.truth | set) & !clear;
        let mut violated = s.violated;
        if self.kind == Kind::Pand {
            // Children that just became true out of order (some earlier
            // child still false) violate the priority order.
            let flipped = truth & !s.truth;
            for j in 0..self.num_children {
                if flipped & (1 << j) != 0 && (truth & ((1u32 << j) - 1)).count_ones() < j as u32 {
                    violated = true;
                }
            }
            if truth == 0 {
                violated = false; // renewal: all children repaired
            }
        }
        St {
            truth,
            violated,
            announced: s.announced,
        }
    }

    fn markovian(&self, _s: &St) -> Vec<(f64, f64, St)> {
        Vec::new() // gates are purely reactive
    }
}

/// A gate child: either a literal over component failure modes or a
/// sub-gate's output signals.
enum Child {
    Lit(Literal),
    Gate { failed: ActionId, up: ActionId },
}

/// Builds the gate blocks for the `SYSTEM DOWN` expression. The returned
/// vector is in post-order; the **last** block is the top gate.
///
/// # Errors
///
/// Returns [`ArcadeError::Invalid`] for dangling references and
/// [`ArcadeError::Build`] if an automaton fails validation.
pub fn build_gate_tree(
    down: &Expr,
    signals: &Signals,
    alphabet: &mut Alphabet,
) -> Result<Vec<Block>, ArcadeError> {
    let mut gates = Vec::new();
    let mut counter = 0usize;
    match down {
        Expr::Lit(l) => {
            // Wrapper gate so the observer always has a top gate.
            build_gate(
                Kind::Or,
                vec![Child::Lit(l.clone())],
                signals,
                alphabet,
                &mut gates,
                &mut counter,
            )?;
        }
        _ => {
            build_node(down, signals, alphabet, &mut gates, &mut counter)?;
        }
    }
    Ok(gates)
}

fn build_node(
    expr: &Expr,
    signals: &Signals,
    alphabet: &mut Alphabet,
    gates: &mut Vec<Block>,
    counter: &mut usize,
) -> Result<Child, ArcadeError> {
    let (kind, cs) = match expr {
        Expr::Lit(l) => return Ok(Child::Lit(l.clone())),
        Expr::And(cs) => (Kind::And, cs),
        Expr::Or(cs) => (Kind::Or, cs),
        Expr::KofN(k, cs) => (Kind::KofN(*k), cs),
        Expr::Pand(cs) => (Kind::Pand, cs),
    };
    let children = cs
        .iter()
        .map(|c| build_node(c, signals, alphabet, gates, counter))
        .collect::<Result<Vec<_>, _>>()?;
    build_gate(kind, children, signals, alphabet, gates, counter)
}

fn build_gate(
    kind: Kind,
    children: Vec<Child>,
    signals: &Signals,
    alphabet: &mut Alphabet,
    gates: &mut Vec<Block>,
    counter: &mut usize,
) -> Result<Child, ArcadeError> {
    let no = *counter;
    *counter += 1;
    let failed = alphabet.intern(&format!("gate{no}.failed"));
    let up = alphabet.intern(&format!("gate{no}.up"));

    let mut set_mask: HashMap<ActionId, u32> = HashMap::new();
    let mut clear_mask: HashMap<ActionId, u32> = HashMap::new();
    for (i, child) in children.iter().enumerate() {
        match child {
            Child::Lit(l) => {
                for a in signals.down_signals(l)? {
                    *set_mask.entry(a).or_default() |= 1 << i;
                }
                for a in signals.clear_signals(l)? {
                    *clear_mask.entry(a).or_default() |= 1 << i;
                }
            }
            Child::Gate { failed, up } => {
                *set_mask.entry(*failed).or_default() |= 1 << i;
                *clear_mask.entry(*up).or_default() |= 1 << i;
            }
        }
    }
    let behaviour = GateBehaviour {
        kind,
        num_children: children.len(),
        set_mask,
        clear_mask,
        failed,
        up,
    };
    let inputs: Vec<ActionId> = behaviour
        .set_mask
        .keys()
        .chain(behaviour.clear_mask.keys())
        .copied()
        .collect();
    let imc = explore(
        &behaviour,
        St {
            truth: 0,
            violated: false,
            announced: false,
        },
        &inputs,
        &[failed, up],
        // Gates are purely reactive, so there are no rates to bind.
        &super::ParamPool::default(),
    )?;
    gates.push(Block {
        name: format!("gate{no}"),
        imc,
    });
    Ok(Child::Gate { failed, up })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BcDef, SystemDef};
    use crate::dist::Dist;
    use crate::model::test_support;

    fn signals_for(n: usize) -> (SystemDef, Alphabet, Signals) {
        let mut def = SystemDef::new("t");
        for i in 0..n {
            def.add_component(BcDef::new(format!("c{i}"), Dist::exp(0.1), Dist::exp(1.0)));
        }
        let mut ab = Alphabet::new();
        ab.intern("tau");
        let signals = test_support::signals(&def, &mut ab);
        (def, ab, signals)
    }

    #[test]
    fn tree_numbering_is_post_order() {
        let (_, mut ab, signals) = signals_for(3);
        let e = Expr::or([
            Expr::and([Expr::down("c0"), Expr::down("c1")]),
            Expr::down("c2"),
        ]);
        let gates = build_gate_tree(&e, &signals, &mut ab).unwrap();
        let names: Vec<&str> = gates.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, vec!["gate0", "gate1"]); // AND first, top OR last
    }

    #[test]
    fn bare_literal_gets_a_wrapper_gate() {
        let (_, mut ab, signals) = signals_for(1);
        let gates = build_gate_tree(&Expr::down("c0"), &signals, &mut ab).unwrap();
        assert_eq!(gates.len(), 1);
        assert_eq!(gates[0].name, "gate0");
    }

    #[test]
    fn and_gate_fires_when_both_children_down() {
        let (_, mut ab, signals) = signals_for(2);
        let e = Expr::and([Expr::down("c0"), Expr::down("c1")]);
        let gates = build_gate_tree(&e, &signals, &mut ab).unwrap();
        let imc = &gates[0].imc;
        let f0 = signals.failed_m[0][0];
        let f1 = signals.failed_m[1][0];
        let s1 = imc
            .interactive_from(imc.initial())
            .iter()
            .find(|&&(a, _)| a == f0)
            .map(|&(_, t)| t)
            .unwrap();
        assert!(!imc.is_unstable(s1)); // one child down: no announcement
        let s2 = imc
            .interactive_from(s1)
            .iter()
            .find(|&&(a, _)| a == f1)
            .map(|&(_, t)| t)
            .unwrap();
        assert!(imc.is_unstable(s2)); // both down: `gate0.failed` pending
    }

    #[test]
    fn pand_latches_on_out_of_order_failure() {
        let (_, mut ab, signals) = signals_for(2);
        let e = Expr::pand([Expr::down("c0"), Expr::down("c1")]);
        let gates = build_gate_tree(&e, &signals, &mut ab).unwrap();
        let imc = &gates[0].imc;
        let f0 = signals.failed_m[0][0];
        let f1 = signals.failed_m[1][0];
        // c1 fails first (out of order), then c0: gate must stay silent.
        let s1 = imc
            .interactive_from(imc.initial())
            .iter()
            .find(|&&(a, _)| a == f1)
            .map(|&(_, t)| t)
            .unwrap();
        let s2 = imc
            .interactive_from(s1)
            .iter()
            .find(|&&(a, _)| a == f0)
            .map(|&(_, t)| t)
            .unwrap();
        assert!(!imc.is_unstable(s2), "out-of-order PAND must not fire");
        // in-order: c0 then c1 fires.
        let t1 = imc
            .interactive_from(imc.initial())
            .iter()
            .find(|&&(a, _)| a == f0)
            .map(|&(_, t)| t)
            .unwrap();
        let t2 = imc
            .interactive_from(t1)
            .iter()
            .find(|&&(a, _)| a == f1)
            .map(|&(_, t)| t)
            .unwrap();
        assert!(imc.is_unstable(t2), "in-order PAND must fire");
    }
}
