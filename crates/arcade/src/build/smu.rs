//! The spare-management-unit automaton (paper §3.3, Figs. 8–9).
//!
//! The SMU watches the announced up/down status of its primary and spares.
//! While the primary is down it wants the first non-failed spare active;
//! otherwise it wants no spare active. Reconciliation emits `deactivate`
//! before `activate` (one urgent signal at a time), and the optional
//! failover distribution (§3.6, Fig. 9) delays each activation by a
//! phase-type timer that is cancelled if the need disappears and restarted
//! if it shifts to a different spare after a deactivation.

use ioimc::{ActionId, IoImc};
use std::collections::HashMap;

use crate::ast::{SmuDef, SystemDef};
use crate::build::{explore, Behaviour};
use crate::error::ArcadeError;
use crate::model::Signals;

/// The failover timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Fo {
    /// Not running.
    Idle,
    /// Running, in the given phase.
    Phase(u8),
    /// Completed; the activation signal is about to be emitted.
    Done,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct St {
    /// Announced-down bits: bit 0 = primary, bit `i+1` = spare `i`.
    down: u32,
    /// The spare currently told to be active.
    active: Option<u8>,
    fo: Fo,
}

struct SmuBehaviour {
    num_spares: usize,
    /// Failover phase rates (empty = instantaneous activation).
    fo_rates: Vec<f64>,
    /// Member failure signal -> member bit; `up` signal -> member bit.
    set_bit: HashMap<ActionId, u32>,
    clear_bit: HashMap<ActionId, u32>,
    activate: Vec<ActionId>,
    deactivate: Vec<ActionId>,
}

impl SmuBehaviour {
    /// The spare that should be active: the first non-failed spare while
    /// the primary is down, none otherwise.
    fn desired(&self, down: u32) -> Option<u8> {
        if down & 1 == 0 {
            return None;
        }
        (0..self.num_spares)
            .find(|&i| down & (1 << (i + 1)) == 0)
            .map(|i| i as u8)
    }

    /// Normalizes the failover timer against the current need.
    fn canon(&self, mut s: St) -> St {
        let d = self.desired(s.down);
        if d.is_none() || s.active == d || s.active.is_some() {
            // No activation pending (or a deactivation must happen first —
            // the timer restarts after it, as in the event semantics).
            s.fo = Fo::Idle;
        } else if self.fo_rates.is_empty() {
            s.fo = Fo::Idle; // instantaneous activation
        } else if s.fo == Fo::Idle {
            s.fo = Fo::Phase(0); // start the timer
        }
        s
    }
}

impl Behaviour for SmuBehaviour {
    type State = St;

    fn output(&self, s: &St) -> Option<(ActionId, St)> {
        let d = self.desired(s.down);
        if let Some(i) = s.active {
            if d != Some(i) {
                return Some((
                    self.deactivate[i as usize],
                    self.canon(St {
                        active: None,
                        ..s.clone()
                    }),
                ));
            }
            return None;
        }
        if let Some(i) = d {
            if self.fo_rates.is_empty() || s.fo == Fo::Done {
                return Some((
                    self.activate[i as usize],
                    self.canon(St {
                        active: Some(i),
                        fo: Fo::Idle,
                        ..s.clone()
                    }),
                ));
            }
        }
        None
    }

    fn on_input(&self, s: &St, a: ActionId) -> St {
        let set = self.set_bit.get(&a).copied().unwrap_or(0);
        let clear = self.clear_bit.get(&a).copied().unwrap_or(0);
        self.canon(St {
            down: (s.down | set) & !clear,
            ..s.clone()
        })
    }

    fn markovian(&self, s: &St) -> Vec<(f64, f64, St)> {
        let Fo::Phase(p) = s.fo else {
            return Vec::new();
        };
        let rate = self.fo_rates[p as usize];
        let next = if (p as usize) + 1 < self.fo_rates.len() {
            Fo::Phase(p + 1)
        } else {
            Fo::Done
        };
        vec![(
            rate,
            1.0,
            St {
                fo: next,
                ..s.clone()
            },
        )]
    }
}

/// Builds the I/O-IMC of spare management unit `smu` of `def`.
///
/// # Errors
///
/// Returns [`ArcadeError::Invalid`] for dangling component references and
/// [`ArcadeError::Build`] if the automaton fails validation.
pub fn build_smu(def: &SystemDef, smu: &SmuDef, signals: &Signals) -> Result<IoImc, ArcadeError> {
    let member_index = |name: &str| {
        signals
            .component_index(name)
            .ok_or_else(|| ArcadeError::invalid(format!("unknown component `{name}`")))
    };
    let mut set_bit: HashMap<ActionId, u32> = HashMap::new();
    let mut clear_bit: HashMap<ActionId, u32> = HashMap::new();
    let mut activate = Vec::new();
    let mut deactivate = Vec::new();
    let members: Vec<&str> = std::iter::once(smu.primary.as_str())
        .chain(smu.spares.iter().map(String::as_str))
        .collect();
    for (bit, name) in members.iter().enumerate() {
        let ci = member_index(name)?;
        for &sig in &signals.failed_m[ci] {
            *set_bit.entry(sig).or_default() |= 1 << bit;
        }
        for sig in [signals.failed_df[ci], signals.failed_na[ci]]
            .into_iter()
            .flatten()
        {
            *set_bit.entry(sig).or_default() |= 1 << bit;
        }
        *clear_bit.entry(signals.up[ci]).or_default() |= 1 << bit;
        if bit > 0 {
            let act = signals.activate[ci].ok_or_else(|| {
                ArcadeError::invalid(format!("spare `{name}` has no active/inactive group"))
            })?;
            activate.push(act);
            deactivate.push(signals.deactivate[ci].expect("paired with activate"));
        }
    }
    let behaviour = SmuBehaviour {
        num_spares: smu.spares.len(),
        fo_rates: smu
            .failover
            .as_ref()
            .map(crate::dist::Dist::phase_rates)
            .unwrap_or_default(),
        set_bit,
        clear_bit,
        activate: activate.clone(),
        deactivate: deactivate.clone(),
    };
    let inputs: Vec<ActionId> = behaviour
        .set_bit
        .keys()
        .chain(behaviour.clear_bit.keys())
        .copied()
        .collect();
    let outputs: Vec<ActionId> = activate.into_iter().chain(deactivate).collect();
    let initial = St {
        down: 0,
        active: None,
        fo: Fo::Idle,
    };
    explore(
        &behaviour,
        behaviour.canon(initial),
        &inputs,
        &outputs,
        &super::ParamPool::from_def(def),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BcDef, OmGroup};
    use crate::dist::Dist;
    use crate::model::test_support;
    use ioimc::Alphabet;

    fn smu_def(failover: Option<Dist>) -> (SystemDef, SmuDef) {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("pp", Dist::exp(0.1), Dist::exp(1.0)));
        def.add_component(
            BcDef::new("ps", Dist::exp(0.1), Dist::exp(1.0))
                .with_om_group(OmGroup::ActiveInactive)
                .with_ttf([Dist::exp(0.1), Dist::exp(0.1)]),
        );
        let mut smu = SmuDef::new("m", "pp", ["ps"]);
        if let Some(f) = failover {
            smu = smu.with_failover(f);
        }
        def.add_smu(smu.clone());
        (def, smu)
    }

    fn build(failover: Option<Dist>) -> (IoImc, Signals) {
        let (def, smu) = smu_def(failover);
        let mut ab = Alphabet::new();
        ab.intern("tau");
        let signals = test_support::signals(&def, &mut ab);
        (build_smu(&def, &smu, &signals).unwrap(), signals)
    }

    #[test]
    fn instant_smu_activates_on_primary_failure() {
        let (imc, signals) = build(None);
        let pp_failed = signals.failed_m[0][0];
        let act = signals.activate[1].unwrap();
        let after = imc
            .interactive_from(imc.initial())
            .iter()
            .find(|&&(a, _)| a == pp_failed)
            .map(|&(_, t)| t)
            .unwrap();
        assert!(imc.interactive_from(after).iter().any(|&(a, _)| a == act));
        assert!(imc.is_unstable(after));
    }

    #[test]
    fn failover_smu_delays_activation() {
        let (imc, signals) = build(Some(Dist::exp(5.0)));
        let pp_failed = signals.failed_m[0][0];
        let after = imc
            .interactive_from(imc.initial())
            .iter()
            .find(|&&(a, _)| a == pp_failed)
            .map(|&(_, t)| t)
            .unwrap();
        // not unstable: the failover timer races instead
        assert!(!imc.is_unstable(after));
        assert!((imc.exit_rate(after) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn primary_repair_deactivates_spare() {
        let (imc, signals) = build(None);
        let pp_failed = signals.failed_m[0][0];
        let pp_up = signals.up[0];
        let deact = signals.deactivate[1].unwrap();
        let mut s = imc
            .interactive_from(imc.initial())
            .iter()
            .find(|&&(a, _)| a == pp_failed)
            .map(|&(_, t)| t)
            .unwrap();
        // take the urgent activate
        s = imc
            .interactive_from(s)
            .iter()
            .find(|&&(a, _)| imc.is_urgent(a))
            .map(|&(_, t)| t)
            .unwrap();
        // primary comes back up -> deactivation pending
        s = imc
            .interactive_from(s)
            .iter()
            .find(|&&(a, _)| a == pp_up)
            .map(|&(_, t)| t)
            .unwrap();
        assert!(imc.interactive_from(s).iter().any(|&(a, _)| a == deact));
    }
}
