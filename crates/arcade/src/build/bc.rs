//! The basic-component automaton (paper §3.1, Figs. 2–5).
//!
//! A component automaton is the product of three concerns, kept in one
//! abstract state so every interleaving is explored:
//!
//! * the **operational mode**: the truth values of the trigger expressions
//!   of its OM groups (tracked by listening to the referenced components'
//!   failure/up signals) plus the active/inactive bit driven by SMU
//!   signals; mode switches preserve the failure phase (§3.1.2),
//! * the **failure model**: the phase chain of the current operational
//!   state's time-to-failure distribution; the final phase's rate is split
//!   over the inherent failure modes (Fig. 4), and a destructive
//!   functional dependency fires urgently while the component is up,
//! * the **announcement**: what the environment has been told. At most one
//!   announcement (`failed.mK`/`failed.df`/`failed.na`/`up`) is pending at
//!   a time, which keeps the composition weakly deterministic.

use ioimc::{ActionId, IoImc};
use std::collections::HashMap;

use crate::ast::{OmGroup, SystemDef};
use crate::build::{explore, Behaviour};
use crate::error::ArcadeError;
use crate::expr::{Expr, Literal};
use crate::model::Signals;

/// Where the component is in its failure/repair cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pos {
    /// Operational, in the given phase of its time-to-failure chain.
    Op(u8),
    /// The phase chain completed with inherent mode `j`; the failure
    /// signal is about to be emitted.
    EmitM(u8),
    /// Down with inherent mode `j`, waiting for the repair unit.
    FailedM(u8),
    /// Down through its destructive dependency, waiting for repair.
    FailedDf,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct St {
    /// Truth bits of the watched literals.
    truth: u32,
    /// The active/inactive bit (always `false` without such a group).
    active: bool,
    pos: Pos,
    /// Whether the environment currently believes the component is down.
    announced: bool,
}

struct BcBehaviour {
    /// Per watched input signal: literal bits it sets / clears.
    set_mask: HashMap<ActionId, u32>,
    clear_mask: HashMap<ActionId, u32>,
    watched: Vec<Literal>,
    om_groups: Vec<OmGroup>,
    /// Phase rates per operational state.
    ttf: Vec<Vec<f64>>,
    /// Failure mode probabilities.
    mode_probs: Vec<f64>,
    df: Option<Expr>,
    inaccessible_means_down: bool,
    // Signals.
    repaired: ActionId,
    activate: Option<ActionId>,
    deactivate: Option<ActionId>,
    failed_m: Vec<ActionId>,
    failed_df: Option<ActionId>,
    failed_na: Option<ActionId>,
    up: ActionId,
}

impl BcBehaviour {
    fn holds(&self, truth: u32, e: &Expr) -> bool {
        e.eval(&|l: &Literal| {
            let i = self
                .watched
                .iter()
                .position(|w| w == l)
                .expect("literal was collected");
            truth & (1 << i) != 0
        })
    }

    /// Operational-state index: one bit per OM group, in declaration order
    /// (first group is the most significant bit, matching the `ttf` layout
    /// of §3.5.1 and the Monte-Carlo simulator).
    fn op_state(&self, s: &St) -> usize {
        let mut idx = 0usize;
        for g in &self.om_groups {
            let bit = match g {
                OmGroup::ActiveInactive => usize::from(s.active),
                OmGroup::OnOff(e)
                | OmGroup::AccessibleInaccessible(e)
                | OmGroup::NormalDegraded(e) => usize::from(self.holds(s.truth, e)),
            };
            idx = idx * 2 + bit;
        }
        idx
    }

    /// Whether the component is up but environment-visibly down through an
    /// inaccessibility (`INACCESSIBLE MEANS DOWN: YES`).
    fn na_visible(&self, truth: u32) -> bool {
        self.inaccessible_means_down
            && self.om_groups.iter().any(|g| match g {
                OmGroup::AccessibleInaccessible(e) => self.holds(truth, e),
                _ => false,
            })
    }

    fn df_holds(&self, truth: u32) -> bool {
        self.df.as_ref().is_some_and(|e| self.holds(truth, e))
    }
}

impl Behaviour for BcBehaviour {
    type State = St;

    fn output(&self, s: &St) -> Option<(ActionId, St)> {
        match s.pos {
            Pos::EmitM(j) => Some((
                self.failed_m[j as usize],
                St {
                    pos: Pos::FailedM(j),
                    announced: true,
                    ..s.clone()
                },
            )),
            Pos::Op(_) => {
                if self.df_holds(s.truth) {
                    // A destructive dependency fires urgently while up —
                    // including the instant re-failure right after a repair
                    // under a still-active dependency.
                    Some((
                        self.failed_df.expect("df signal exists"),
                        St {
                            pos: Pos::FailedDf,
                            announced: true,
                            ..s.clone()
                        },
                    ))
                } else if self.na_visible(s.truth) && !s.announced {
                    Some((
                        self.failed_na.expect("na signal exists"),
                        St {
                            announced: true,
                            ..s.clone()
                        },
                    ))
                } else if !self.na_visible(s.truth) && s.announced {
                    Some((
                        self.up,
                        St {
                            announced: false,
                            ..s.clone()
                        },
                    ))
                } else {
                    None
                }
            }
            Pos::FailedM(_) | Pos::FailedDf => None,
        }
    }

    fn on_input(&self, s: &St, a: ActionId) -> St {
        let mut out = s.clone();
        if a == self.repaired {
            if matches!(s.pos, Pos::FailedM(_) | Pos::FailedDf) {
                out.pos = Pos::Op(0);
            }
            return out;
        }
        if Some(a) == self.activate {
            out.active = true;
            return out;
        }
        if Some(a) == self.deactivate {
            out.active = false;
            return out;
        }
        let set = self.set_mask.get(&a).copied().unwrap_or(0);
        let clear = self.clear_mask.get(&a).copied().unwrap_or(0);
        out.truth = (out.truth | set) & !clear;
        out
    }

    fn markovian(&self, s: &St) -> Vec<(f64, f64, St)> {
        let Pos::Op(p) = s.pos else {
            return Vec::new();
        };
        let rates = &self.ttf[self.op_state(s)];
        if rates.is_empty() {
            return Vec::new(); // Dist::Never: cannot fail in this mode
        }
        let p = p as usize;
        let rate = rates[p];
        if p + 1 < rates.len() {
            vec![(
                rate,
                1.0,
                St {
                    pos: Pos::Op((p + 1) as u8),
                    ..s.clone()
                },
            )]
        } else {
            // Final phase: split the completion rate over the inherent
            // failure modes (Fig. 4). The split probability rides as the
            // multiplier so the raw phase rate stays visible for
            // parameter binding.
            self.mode_probs
                .iter()
                .enumerate()
                .map(|(j, &q)| {
                    (
                        rate,
                        q,
                        St {
                            pos: Pos::EmitM(j as u8),
                            ..s.clone()
                        },
                    )
                })
                .collect()
        }
    }
}

/// Builds the I/O-IMC of component `idx` of `def`.
///
/// # Errors
///
/// Returns [`ArcadeError::Invalid`] for dangling references in trigger
/// expressions and [`ArcadeError::Build`] if the automaton fails
/// validation.
pub fn build_bc(def: &SystemDef, idx: usize, signals: &Signals) -> Result<IoImc, ArcadeError> {
    let bc = &def.components[idx];

    // Watched literals: everything the OM triggers and the destructive
    // dependency observe.
    let mut watched: Vec<Literal> = Vec::new();
    for e in bc
        .om_groups
        .iter()
        .filter_map(OmGroup::trigger)
        .chain(bc.df.as_ref())
    {
        for l in e.literals() {
            if !watched.contains(l) {
                watched.push(l.clone());
            }
        }
    }
    let mut set_mask: HashMap<ActionId, u32> = HashMap::new();
    let mut clear_mask: HashMap<ActionId, u32> = HashMap::new();
    for (i, lit) in watched.iter().enumerate() {
        for a in signals.down_signals(lit)? {
            *set_mask.entry(a).or_default() |= 1 << i;
        }
        for a in signals.clear_signals(lit)? {
            *clear_mask.entry(a).or_default() |= 1 << i;
        }
    }

    let behaviour = BcBehaviour {
        watched,
        om_groups: bc.om_groups.clone(),
        ttf: bc.ttf.iter().map(crate::dist::Dist::phase_rates).collect(),
        mode_probs: bc.failure_mode_probs.clone(),
        df: bc.df.clone(),
        inaccessible_means_down: bc.inaccessible_means_down,
        repaired: signals.repaired[idx],
        activate: signals.activate[idx],
        deactivate: signals.deactivate[idx],
        failed_m: signals.failed_m[idx].clone(),
        failed_df: signals.failed_df[idx],
        failed_na: signals.failed_na[idx],
        up: signals.up[idx],
        set_mask,
        clear_mask,
    };

    let mut inputs: Vec<ActionId> = behaviour
        .set_mask
        .keys()
        .chain(behaviour.clear_mask.keys())
        .copied()
        .collect();
    inputs.push(behaviour.repaired);
    inputs.extend(behaviour.activate);
    inputs.extend(behaviour.deactivate);
    let mut outputs: Vec<ActionId> = behaviour.failed_m.clone();
    outputs.extend(behaviour.failed_df);
    outputs.extend(behaviour.failed_na);
    outputs.push(behaviour.up);

    let initial = St {
        truth: 0,
        active: false, // spares start inactive ("(inactive, active)")
        pos: Pos::Op(0),
        announced: false,
    };
    explore(
        &behaviour,
        initial,
        &inputs,
        &outputs,
        &super::ParamPool::from_def(def),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BcDef;
    use crate::dist::Dist;
    use crate::model::test_support;
    use ioimc::Alphabet;

    fn build(def: &SystemDef, name: &str) -> (IoImc, Signals) {
        let mut ab = Alphabet::new();
        ab.intern("tau");
        let signals = test_support::signals(def, &mut ab);
        let idx = def.components.iter().position(|c| c.name == name).unwrap();
        (build_bc(def, idx, &signals).unwrap(), signals)
    }

    #[test]
    fn plain_component_is_four_states() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("x", Dist::exp(0.1), Dist::exp(1.0)));
        let (imc, _) = build(&def, "x");
        // up -> emit(failed) -> down -> (repaired) -> up' -> emit(up) -> up
        assert_eq!(imc.num_states(), 4);
        assert!((imc.exit_rate(imc.initial()) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn erlang_phases_chain() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("x", Dist::erlang(3, 0.5), Dist::exp(1.0)));
        let (imc, _) = build(&def, "x");
        // 3 phases + emit + down + re-up emission state
        assert_eq!(imc.num_states(), 6);
    }

    #[test]
    fn failure_modes_split_the_rate() {
        let mut def = SystemDef::new("t");
        def.add_component(
            BcDef::new("x", Dist::exp(1.0), Dist::exp(1.0))
                .with_failure_modes([0.3, 0.7], [Dist::exp(1.0), Dist::exp(2.0)]),
        );
        let (imc, _) = build(&def, "x");
        let races = imc.markovian_from(imc.initial());
        assert_eq!(races.len(), 2);
        let total: f64 = races.iter().map(|r| r.0).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(races.iter().any(|r| (r.0 - 0.3).abs() < 1e-12));
    }

    #[test]
    fn df_fires_urgently_when_trigger_holds() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("fan", Dist::exp(0.1), Dist::exp(1.0)));
        def.add_component(
            BcDef::new("cpu", Dist::exp(0.001), Dist::exp(1.0))
                .with_df(Expr::down("fan"), Dist::exp(1.0)),
        );
        let (imc, signals) = build(&def, "cpu");
        // Feed `fan.failed.m1`: the successor must urgently emit
        // `cpu.failed.df`.
        let fan_failed = signals.failed_m[0][0];
        let s1 = imc
            .interactive_from(imc.initial())
            .iter()
            .find(|&&(a, _)| a == fan_failed)
            .map(|&(_, t)| t)
            .unwrap();
        let df_sig = signals.failed_df[1].unwrap();
        assert!(imc.interactive_from(s1).iter().any(|&(a, _)| a == df_sig));
        assert!(imc.is_unstable(s1));
    }

    #[test]
    fn cold_spare_cannot_fail_inactive() {
        let mut def = SystemDef::new("t");
        def.add_component(
            BcDef::new("sp", Dist::Never, Dist::exp(1.0))
                .with_om_group(OmGroup::ActiveInactive)
                .with_ttf([Dist::Never, Dist::exp(0.2)]),
        );
        let (imc, signals) = build(&def, "sp");
        // initial (inactive): no Markovian transitions
        assert_eq!(imc.markovian_from(imc.initial()).len(), 0);
        // after activate: rate 0.2 race
        let act = signals.activate[0].unwrap();
        let active = imc
            .interactive_from(imc.initial())
            .iter()
            .find(|&&(a, _)| a == act)
            .map(|&(_, t)| t)
            .unwrap();
        assert!((imc.exit_rate(active) - 0.2).abs() < 1e-12);
    }
}
