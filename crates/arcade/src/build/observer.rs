//! The observer block: turns the top gate's signals into the CTMC label.
//!
//! The observer is the only block with non-zero state labels. Composition
//! ORs labels, reduction respects them, so the final CTMC's states carry
//! [`DOWN_BIT`] exactly when the observer half of the state is "down" —
//! which is how every dependability measure finds the down states.

use ioimc::builder::IoImcBuilder;
use ioimc::{Alphabet, StateLabel};

use crate::error::ArcadeError;
use crate::model::Block;

/// Label bit 0: "the system is down".
pub const DOWN_BIT: StateLabel = 1;

/// Builds the two-state observer listening to `{top_gate}.failed` /
/// `{top_gate}.up`.
///
/// # Errors
///
/// Returns [`ArcadeError::Build`] if the automaton fails validation
/// (cannot happen for this fixed shape).
pub fn build_observer(top_gate: &str, alphabet: &mut Alphabet) -> Result<Block, ArcadeError> {
    let failed = alphabet.intern(&format!("{top_gate}.failed"));
    let up = alphabet.intern(&format!("{top_gate}.up"));
    let mut b = IoImcBuilder::new();
    b.set_inputs([failed, up]);
    let s_up = b.add_labeled_state(0);
    let s_down = b.add_labeled_state(DOWN_BIT);
    b.interactive(s_up, failed, s_down)
        .interactive(s_down, up, s_up);
    let imc = b
        .complete_inputs()
        .build()
        .map_err(|e| ArcadeError::build(format!("observer automaton invalid: {e}")))?;
    Ok(Block {
        name: "observer".to_owned(),
        imc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_toggles_label() {
        let mut ab = Alphabet::new();
        let block = build_observer("gate7", &mut ab).unwrap();
        let imc = &block.imc;
        assert_eq!(block.name, "observer");
        assert_eq!(imc.num_states(), 2);
        assert_eq!(imc.label(0), 0);
        assert_eq!(imc.label(1), DOWN_BIT);
        let failed = ab.lookup("gate7.failed").unwrap();
        let up = ab.lookup("gate7.up").unwrap();
        assert!(imc
            .interactive_from(0)
            .iter()
            .any(|&(a, t)| a == failed && t == 1));
        assert!(imc
            .interactive_from(1)
            .iter()
            .any(|&(a, t)| a == up && t == 0));
    }
}
