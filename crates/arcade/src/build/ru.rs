//! The repair-unit automaton (paper §3.2, Figs. 6–7).
//!
//! A repair unit listens to the failure signals of its components, tracks
//! the outstanding repairs in arrival order, serves them according to its
//! strategy, advances the served repair's phase-type chain, and announces
//! each completion with the component's `repaired` signal.
//!
//! * **Dedicated/FCFS** serve the queue head;
//! * **preemptive priority** serves the highest priority at all times —
//!   an interrupted repair keeps its phase and resumes later (§3.2);
//! * **non-preemptive priority** finishes the repair in progress, then
//!   promotes the highest-priority waiting component.

use ioimc::{ActionId, IoImc};
use std::collections::HashMap;

use crate::ast::{RepairStrategy, RuDef, SystemDef};
use crate::build::{explore, Behaviour};
use crate::error::ArcadeError;
use crate::model::Signals;

/// One outstanding repair: component (unit-local index), failure mode
/// (inherent modes first, the destructive-dependency mode last) and the
/// current phase of its repair chain.
type Item = (u8, u8, u8);

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct St {
    /// Outstanding repairs in arrival order (for the priority strategies
    /// the head invariant is maintained on completion).
    queue: Vec<Item>,
    /// A completed repair whose `repaired` signal is about to be emitted.
    emit: Option<u8>,
}

struct RuBehaviour {
    strategy: RepairStrategy,
    /// Per unit-local component: priority (higher served first).
    priorities: Vec<u32>,
    /// Per unit-local component, per failure mode: repair phase rates.
    ttr: Vec<Vec<Vec<f64>>>,
    /// Failure signal -> (component, mode).
    arrival: HashMap<ActionId, (u8, u8)>,
    /// Per unit-local component: its `repaired` signal.
    repaired: Vec<ActionId>,
}

impl RuBehaviour {
    /// The queue position currently in service.
    fn served(&self, queue: &[Item]) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        match self.strategy {
            RepairStrategy::PreemptivePriority => queue
                .iter()
                .enumerate()
                .max_by_key(|(pos, it)| (self.priorities[it.0 as usize], usize::MAX - pos))
                .map(|(pos, _)| pos),
            _ => Some(0),
        }
    }

    /// Moves the highest-priority waiting item to the front (non-preemptive
    /// priority selects its next customer on completion).
    fn select_next(&self, queue: &mut Vec<Item>) {
        if self.strategy == RepairStrategy::NonPreemptivePriority && queue.len() > 1 {
            let best = queue
                .iter()
                .enumerate()
                .max_by_key(|(pos, it)| (self.priorities[it.0 as usize], usize::MAX - pos))
                .map(|(pos, _)| pos)
                .expect("non-empty");
            let item = queue.remove(best);
            queue.insert(0, item);
        }
    }
}

impl Behaviour for RuBehaviour {
    type State = St;

    fn output(&self, s: &St) -> Option<(ActionId, St)> {
        s.emit.map(|c| {
            (
                self.repaired[c as usize],
                St {
                    queue: s.queue.clone(),
                    emit: None,
                },
            )
        })
    }

    fn on_input(&self, s: &St, a: ActionId) -> St {
        let Some(&(c, m)) = self.arrival.get(&a) else {
            return s.clone();
        };
        if s.emit == Some(c) || s.queue.iter().any(|it| it.0 == c) {
            return s.clone(); // already queued or being announced (cannot
                              // happen — the component is down until it
                              // hears `repaired`)
        }
        let mut out = s.clone();
        out.queue.push((c, m, 0));
        out
    }

    fn markovian(&self, s: &St) -> Vec<(f64, f64, St)> {
        let Some(pos) = self.served(&s.queue) else {
            return Vec::new();
        };
        let (c, m, p) = s.queue[pos];
        let rates = &self.ttr[c as usize][m as usize];
        if rates.is_empty() {
            return Vec::new(); // Dist::Never: this failure is unrepairable
        }
        let rate = rates[p as usize];
        let mut out = s.clone();
        if (p as usize) + 1 < rates.len() {
            out.queue[pos].2 = p + 1;
        } else {
            out.queue.remove(pos);
            self.select_next(&mut out.queue);
            out.emit = Some(c);
        }
        vec![(rate, 1.0, out)]
    }
}

/// Builds the I/O-IMC of repair unit `ru` of `def`.
///
/// # Errors
///
/// Returns [`ArcadeError::Invalid`] for dangling component references and
/// [`ArcadeError::Build`] if the automaton fails validation.
pub fn build_ru(def: &SystemDef, ru: &RuDef, signals: &Signals) -> Result<IoImc, ArcadeError> {
    let mut arrival: HashMap<ActionId, (u8, u8)> = HashMap::new();
    let mut ttr: Vec<Vec<Vec<f64>>> = Vec::new();
    let mut repaired: Vec<ActionId> = Vec::new();
    for (k, name) in ru.components.iter().enumerate() {
        let ci = signals
            .component_index(name)
            .ok_or_else(|| ArcadeError::invalid(format!("unknown component `{name}`")))?;
        let bc = &def.components[ci];
        let mut chains: Vec<Vec<f64>> = bc.ttr.iter().map(crate::dist::Dist::phase_rates).collect();
        for (j, &sig) in signals.failed_m[ci].iter().enumerate() {
            arrival.insert(sig, (k as u8, j as u8));
        }
        if let Some(sig) = signals.failed_df[ci] {
            arrival.insert(sig, (k as u8, chains.len() as u8));
        }
        chains.push(
            bc.ttr_df
                .as_ref()
                .map(crate::dist::Dist::phase_rates)
                .unwrap_or_default(),
        );
        ttr.push(chains);
        repaired.push(signals.repaired[ci]);
    }
    let priorities = (0..ru.components.len())
        .map(|k| ru.priorities.get(k).copied().unwrap_or(0))
        .collect();

    let behaviour = RuBehaviour {
        strategy: ru.strategy,
        priorities,
        ttr,
        arrival,
        repaired,
    };
    let inputs: Vec<ActionId> = behaviour.arrival.keys().copied().collect();
    let outputs = behaviour.repaired.clone();
    explore(
        &behaviour,
        St {
            queue: Vec::new(),
            emit: None,
        },
        &inputs,
        &outputs,
        &super::ParamPool::from_def(def),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BcDef;
    use crate::dist::Dist;
    use crate::model::test_support;
    use ioimc::Alphabet;

    fn two_comp(strategy: RepairStrategy, prios: Vec<u32>) -> (IoImc, Signals) {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.1), Dist::exp(1.0)));
        def.add_component(BcDef::new("b", Dist::exp(0.1), Dist::exp(2.0)));
        let mut ru = RuDef::new("r", ["a", "b"], strategy);
        if !prios.is_empty() {
            ru = ru.with_priorities(prios);
        }
        def.add_repair_unit(ru.clone());
        let mut ab = Alphabet::new();
        ab.intern("tau");
        let signals = test_support::signals(&def, &mut ab);
        (build_ru(&def, &ru, &signals).unwrap(), signals)
    }

    #[test]
    fn fcfs_tracks_arrival_order() {
        let (imc, signals) = two_comp(RepairStrategy::Fcfs, vec![]);
        // idle, a, b, ab, ba, + 2 emission states after a solo / b solo
        // completions and the 2-deep queue completions: just check basics.
        let a_failed = signals.failed_m[0][0];
        let b_failed = signals.failed_m[1][0];
        let after_a = imc
            .interactive_from(imc.initial())
            .iter()
            .find(|&&(x, _)| x == a_failed)
            .map(|&(_, t)| t)
            .unwrap();
        // serving a at rate 1.0
        assert!((imc.exit_rate(after_a) - 1.0).abs() < 1e-12);
        let after_ab = imc
            .interactive_from(after_a)
            .iter()
            .find(|&&(x, _)| x == b_failed)
            .map(|&(_, t)| t)
            .unwrap();
        // still serving a (FCFS), not b
        assert!((imc.exit_rate(after_ab) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn preemptive_priority_switches_service() {
        let (imc, signals) = two_comp(RepairStrategy::PreemptivePriority, vec![1, 5]);
        let a_failed = signals.failed_m[0][0];
        let b_failed = signals.failed_m[1][0];
        let after_a = imc
            .interactive_from(imc.initial())
            .iter()
            .find(|&&(x, _)| x == a_failed)
            .map(|&(_, t)| t)
            .unwrap();
        let after_ab = imc
            .interactive_from(after_a)
            .iter()
            .find(|&&(x, _)| x == b_failed)
            .map(|&(_, t)| t)
            .unwrap();
        // b preempts a: service rate is b's 2.0
        assert!((imc.exit_rate(after_ab) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dedicated_unit_repairs_and_announces() {
        let mut def = SystemDef::new("t");
        def.add_component(BcDef::new("a", Dist::exp(0.1), Dist::erlang(2, 3.0)));
        let ru = RuDef::new("r", ["a"], RepairStrategy::Dedicated);
        def.add_repair_unit(ru.clone());
        let mut ab = Alphabet::new();
        ab.intern("tau");
        let signals = test_support::signals(&def, &mut ab);
        let imc = build_ru(&def, &ru, &signals).unwrap();
        // idle -> (failed) -> phase0 -> phase1 -> emit -> idle: 4 states
        assert_eq!(imc.num_states(), 4);
        assert_eq!(imc.outputs(), &[signals.repaired[0]]);
    }
}
